"""Shim for legacy editable installs (``pip install -e . --no-use-pep517``)
in environments without the ``wheel`` package or network access for build
isolation. All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
