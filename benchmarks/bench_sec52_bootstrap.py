"""Section 5.2 — cost-model bootstrapping.

Paper: phase 1 uses the optimizer's cost model as "training wheels";
phase 2 switches to true latency. "Switching the range of the reward
signal ... will cause the DRL model to assume that its performance has
suddenly decreased ... requiring the execution of poor execution
plans", fixed by scaling latency into the cost range with

    r_l = C_min + (l - L_min)/(L_max - L_min) * (C_max - C_min)

or by transfer learning. Regenerates the three switch modes on the same
seed/workload and compares (a) the post-switch quality regression and
(b) reward-scale continuity across the switch.
"""

import numpy as np
import pytest

from benchmarks.common import (
    SEC52_PHASE1,
    SEC52_PHASE2,
    get_database,
    get_training_workload,
    print_banner,
)
from repro.core.bootstrap import BootstrapConfig, BootstrapTrainer
from repro.core.reporting import ascii_table


def _run(mode: str, seed: int = 31):
    db = get_database()
    workload = get_training_workload().filter(lambda q: 4 <= q.n_relations <= 7)
    config = BootstrapConfig(
        phase1_episodes=SEC52_PHASE1,
        phase2_episodes=SEC52_PHASE2,
        calibration_episodes=30,
        mode=mode,
        batch_size=8,
        latency_budget_factor=30.0,
    )
    trainer = BootstrapTrainer(db, workload, np.random.default_rng(seed), config)
    return trainer.run()


@pytest.fixture(scope="module")
def results():
    return {mode: _run(mode) for mode in ("scaled", "naive", "transfer")}


def test_sec52_bootstrap_modes(benchmark, results):
    def analyze():
        window = max(30, SEC52_PHASE2 // 4)
        rows = []
        summary = {}
        for mode, result in results.items():
            reg = result.regression_ratio(window=window)
            p2 = result.phase2_log.relative_costs()
            final = float(np.median(p2[-window:]))
            timeouts = result.phase2_log.timeout_fraction()
            rows.append(
                (mode, f"{reg:.2f}x", f"{final:.2f}", f"{timeouts * 100:.0f}%")
            )
            summary[mode] = {"regression": reg, "final": final, "timeouts": timeouts}
        print_banner(
            "Section 5.2: cost-model bootstrapping — reward-switch modes "
            f"({SEC52_PHASE1}+{SEC52_PHASE2} episodes)"
        )
        print(
            ascii_table(
                [
                    "switch mode",
                    "post-switch regression",
                    "final median rel. cost",
                    "phase-2 catastrophic",
                ],
                rows,
            )
        )
        return summary

    s = benchmark.pedantic(analyze, rounds=1, iterations=1)

    # Phase 1 must have done its job in every mode (training wheels on a
    # cheap signal), and the scaled switch must not regress much more
    # than it gained — the paper's concern is the *naive* switch
    # destabilizing the policy.
    for mode in ("scaled", "naive", "transfer"):
        assert s[mode]["final"] < 20.0, f"{mode}: phase 2 must stay sane"
    assert s["scaled"]["regression"] <= s["naive"]["regression"] * 1.5, (
        "scaling must not be clearly worse than the naive switch"
    )


def test_sec52_reward_scale_continuity(benchmark, results):
    """The scaled mode's phase-2 rewards live on the phase-1 scale; the
    naive mode's do not — the exact §5.2 discontinuity."""

    def analyze():
        out = {}
        for mode in ("scaled", "naive"):
            result = results[mode]
            p1 = np.asarray([r.reward for r in result.phase1_log.records[-100:]])
            p2 = np.asarray([r.reward for r in result.phase2_log.records[:100]])
            jump = abs(float(np.median(p2)) - float(np.median(p1)))
            out[mode] = jump
        print_banner("Section 5.2: reward-scale jump at the phase switch")
        print(
            ascii_table(
                ["mode", "|median phase-2 reward - median phase-1 reward|"],
                [(m, f"{v:.2f}") for m, v in out.items()],
            )
        )
        return out

    jumps = benchmark.pedantic(analyze, rounds=1, iterations=1)
    assert jumps["scaled"] < jumps["naive"], (
        "scaling must shrink the reward discontinuity at the switch"
    )


def test_sec52_calibration_pairs_recorded(benchmark, results):
    """Calibration captures the (cost, latency) ranges the formula needs."""

    def analyze():
        result = results["scaled"]
        costs = [c for c, _ in result.calibration_pairs]
        lats = [l for _, l in result.calibration_pairs]
        print(
            f"\ncalibration: {len(costs)} pairs; cost range "
            f"[{min(costs):.0f}, {max(costs):.0f}], latency range "
            f"[{min(lats):.2f}, {max(lats):.2f}] ms"
        )
        return result.scaler, min(costs), max(costs)

    scaler, c_min, c_max = benchmark.pedantic(analyze, rounds=1, iterations=1)
    assert scaler is not None and scaler.fitted
    assert scaler.c_min == pytest.approx(c_min)
    assert scaler.c_max == pytest.approx(c_max)
