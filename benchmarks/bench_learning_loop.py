"""Closed-loop hands-free learning: drift recovery, poison gating, and
automatic rollback — the retraining daemon proven end to end.

The source paper's north star is an optimizer that keeps learning in
production with no human in the loop. PR 8's
:class:`repro.serving.RetrainingDaemon` closes that loop: it drains the
serving experience buffers every K requests, retrains a *shadow* copy
of the policy off the hot path, scores the candidate against the exact
bitset-DP oracle on a held-out fingerprint set, and only a candidate
that passes the regression gate is hot-swapped (atomically, versioned)
across the worker shards — with an observation window that rolls a bad
swap back automatically. This bench drives three scenarios:

- **drift** — a Zipf request stream over one JOB-lite family mix
  shifts to a disjoint mix mid-run; the loop must recover the served
  plan cost to within 10% of the exact-DP oracle on the final window
  with zero operator intervention, promoting at least one gated update
  along the way;
- **poison** — a seeded :class:`repro.serving.FaultInjector` corrupts
  the retraining batch (``replay_poison``: NaN rewards) on every
  cycle; the gate must reject every poisoned candidate (the value head
  trains straight on the NaN returns, so the weight-health check
  fires), the live weights must be bit-identical afterwards, and no
  rejected version may ever be served;
- **rollback** — a deliberately broken policy (all-NaN weights) is
  force-swapped past the gate; the post-swap watch must detect the
  degraded-serve storm and restore the previous weights within the
  observation window, versions moving only forward.

Results land in ``BENCH_learning.json`` for machines to read.

Usage::

    PYTHONPATH=src python benchmarks/bench_learning_loop.py
    PYTHONPATH=src python benchmarks/bench_learning_loop.py --smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

# Allow running as a plain script without PYTHONPATH=src.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.featurize import QueryFeaturizer
from repro.core.reporting import ascii_table
from repro.core.rewards import CostModelReward, ExpertBaseline
from repro.core.trainer import Trainer, TrainingConfig
from repro.optimizer.memo import SubPlanCostMemo
from repro.optimizer.planner import Planner
from repro.rl.ppo import PPOAgent
from repro.serving import (
    FaultConfig,
    FaultInjector,
    FrontEndConfig,
    LearningConfig,
    RetrainingDaemon,
    ServingConfig,
    ServingFrontEnd,
)
from repro.workloads import job_lite_workload, make_imdb_database

#: Disjoint JOB-lite join-graph regions (company/keyword-centric vs
#: cast/person-centric) — the same split the CLI's ``--drift`` uses.
FAMILIES_A = (1, 2, 4, 5, 11, 15)
FAMILIES_B = (6, 8, 9, 10, 17, 20)
MAX_RELATIONS = 10
BURST = 16


class Setup:
    """Shared database, exact-DP expert, and workload splits."""

    def __init__(self, scale: float) -> None:
        self.db = make_imdb_database(scale=scale, seed=42, sample_size=10_000)
        self.featurizer = QueryFeaturizer(self.db.schema, max_relations=MAX_RELATIONS)
        # geqo_threshold past the workload cap: every expert plan is the
        # exact bitset-DP optimum, i.e. the oracle the gate scores against.
        self.planner = Planner(
            self.db, geqo_threshold=MAX_RELATIONS + 2, cost_memo=SubPlanCostMemo()
        )
        self.baseline = ExpertBaseline(self.db, self.planner)
        self.workload_a = self._workload(FAMILIES_A)
        self.workload_b = self._workload(FAMILIES_B)

    def _workload(self, families):
        names = {f"{f}{v}" for f in families for v in ("a", "b", "c")}
        return [
            q
            for q in job_lite_workload(variants=("a", "b", "c"))
            if q.name in names and q.n_relations <= MAX_RELATIONS
        ]

    def loop(self, seed=3, fault_injector=None, **config_kwargs):
        """A fresh 2-shard front end + daemon around a fresh agent."""
        agent = PPOAgent(
            self.featurizer.state_dim,
            self.featurizer.n_pair_actions,
            np.random.default_rng(seed),
        )
        frontend = ServingFrontEnd.build(
            self.db,
            agent,
            featurizer=self.featurizer,
            serving_config=ServingConfig(regression_threshold=1.5),
            config=FrontEndConfig(n_shards=2, max_batch=BURST, max_delay_ms=2.0),
            planner_factory=lambda: Planner(
                self.db,
                geqo_threshold=MAX_RELATIONS + 2,
                cost_memo=SubPlanCostMemo(),
            ),
            reward_source=CostModelReward(self.db, "relative", self.baseline),
        )
        trainer = Trainer(
            None,
            agent,
            self.baseline,
            np.random.default_rng(seed + 1),
            TrainingConfig(batch_size=8),
        )
        config_kwargs.setdefault("gate_slack", 1.05)
        config_kwargs.setdefault("min_trajectories", 4)
        config_kwargs.setdefault("latency_probes_per_cycle", 4)
        config_kwargs.setdefault("probe_budget_ms", 250.0)
        config_kwargs.setdefault("min_latency_pairs", 12)
        daemon = RetrainingDaemon(
            frontend,
            trainer,
            self.workload_a[:4] + self.workload_b[:4],
            config=LearningConfig(**config_kwargs),
            fault_injector=fault_injector,
        )
        return frontend, daemon, agent


def clear_caches(frontend) -> None:
    """Cold-cache the shards so the next burst exercises the live
    policy (cached plans would insulate a bad policy from traffic)."""
    for service in frontend.services:
        service.cache.clear()
        service.router.invalidate()


# ----------------------------------------------------------------------
# Scenario 1: drift recovery
# ----------------------------------------------------------------------
def run_drift(setup: Setup, n_requests: int, retrain_every: int) -> dict:
    frontend, daemon, _agent = setup.loop(retrain_every=retrain_every)
    rng = np.random.default_rng(7)
    shift_after = n_requests // 2

    def stream(workload, size):
        return [
            workload[int((rank - 1) % len(workload))]
            for rank in rng.zipf(1.3, size=size)
        ]

    requests = stream(setup.workload_a, shift_after) + stream(
        setup.workload_b, n_requests - shift_after
    )
    served_versions = set()
    post_shift_rel = []
    start = time.perf_counter()
    try:
        for offset in range(0, len(requests), BURST):
            burst = requests[offset:offset + BURST]
            plans = frontend.optimize_batch(burst, timeout=120.0)
            for query, plan in zip(burst, plans):
                served_versions.add(plan.policy_version)
                oracle = setup.baseline.cost(query)
                if offset >= shift_after and oracle > 0:
                    post_shift_rel.append(plan.cost / oracle)
            daemon.maybe_run()
        loop = daemon.as_dict()
    finally:
        daemon.stop()
        frontend.close()
    window = min(32, max(BURST, len(post_shift_rel) // 4))
    return {
        "requests": n_requests,
        "shift_after": shift_after,
        "retrain_every": retrain_every,
        "elapsed_s": round(time.perf_counter() - start, 2),
        "cycles": loop["cycles"],
        "promotions": loop["promotions"],
        "rejections": loop["rejections"],
        "rollbacks": loop["rollbacks"],
        "policy_version": loop["policy_version"],
        "guardrail_threshold": loop["guardrail_threshold"],
        "served_versions": sorted(served_versions),
        "promoted_versions": loop["promoted_versions"],
        "post_shift_first_window_rel_cost": float(np.mean(post_shift_rel[:window])),
        "post_shift_final_window_rel_cost": float(np.mean(post_shift_rel[-window:])),
    }


# ----------------------------------------------------------------------
# Scenario 2: poisoned retraining batch
# ----------------------------------------------------------------------
def run_poison(setup: Setup, cycles: int) -> dict:
    injector = FaultInjector(FaultConfig(replay_poison_rate=1.0, seed=1))
    frontend, daemon, agent = setup.loop(
        retrain_every=BURST, fault_injector=injector
    )
    before = {k: v.copy() for k, v in agent.policy_net.net.params.items()}
    statuses = []
    served_versions = set()
    try:
        for i in range(cycles):
            clear_caches(frontend)
            plans = frontend.optimize_batch(
                setup.workload_a[: BURST], timeout=120.0
            )
            served_versions.update(p.policy_version for p in plans)
            status = daemon.maybe_run()
            if status is not None:
                statuses.append(
                    {k: status[k] for k in ("action", "poisoned", "reason")
                     if k in status}
                )
        weights_identical = all(
            np.array_equal(v, before[k])
            for k, v in agent.policy_net.net.params.items()
        )
        loop = daemon.as_dict()
    finally:
        daemon.stop()
        frontend.close()
    return {
        "cycles_driven": cycles,
        "poisoned_cycles": loop["poisoned_cycles"],
        "rejections": loop["rejections"],
        "promotions": loop["promotions"],
        "policy_version": loop["policy_version"],
        "weights_identical_after": weights_identical,
        "served_versions": sorted(served_versions),
        "promoted_versions": loop["promoted_versions"],
        "statuses": statuses,
    }


# ----------------------------------------------------------------------
# Scenario 3: forced bad swap rolls back
# ----------------------------------------------------------------------
def run_rollback(setup: Setup) -> dict:
    window = 24
    frontend, daemon, agent = setup.loop(
        retrain_every=10_000, rollback_window=window
    )
    try:
        clear_caches(frontend)
        frontend.optimize_batch(setup.workload_a[:BURST], timeout=120.0)
        good = {k: v.copy() for k, v in agent.policy_net.net.params.items()}
        bad = agent.policy_net.clone(np.random.default_rng(9))
        for param in bad.net.params.values():
            param[...] = np.nan
        daemon.force_swap(bad)
        bad_version = daemon.version
        rolled = None
        serves_until_rollback = 0
        for _ in range(10):
            clear_caches(frontend)
            frontend.optimize_batch(setup.workload_a[:BURST], timeout=120.0)
            serves_until_rollback += BURST
            rolled = daemon.check_rollback()
            if rolled:
                break
        weights_restored = all(
            np.allclose(v, good[k])
            for k, v in agent.policy_net.net.params.items()
        )
        loop = daemon.as_dict()
    finally:
        daemon.stop()
        frontend.close()
    return {
        "rollback_window": window,
        "bad_version": bad_version,
        "rolled_back": rolled is not None,
        "rollback": rolled,
        "serves_until_rollback": serves_until_rollback,
        "weights_restored": weights_restored,
        "rollbacks": loop["rollbacks"],
        "policy_version": loop["policy_version"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI preset: seconds-scale stream, same "
                        "assertions")
    parser.add_argument("--requests", type=int, default=0,
                        help="drift-stream length (default 256, smoke 96)")
    parser.add_argument("--scale", type=float, default=0.0,
                        help="database scale (default 0.05, smoke 0.02)")
    parser.add_argument("--retrain-every", type=int, default=0,
                        help="cycle cadence (default 32, smoke 16)")
    parser.add_argument("--out", default="BENCH_learning.json")
    args = parser.parse_args(argv)

    n_requests = args.requests or (96 if args.smoke else 256)
    scale = args.scale or (0.02 if args.smoke else 0.05)
    retrain_every = args.retrain_every or (16 if args.smoke else 32)

    print(f"building JOB-lite database (scale={scale})...")
    setup = Setup(scale)

    print(f"\n[1/3] drift: {n_requests} requests, shift at "
          f"{n_requests // 2}, retrain every {retrain_every}...")
    drift = run_drift(setup, n_requests, retrain_every)
    print(f"\n[2/3] poison: every retraining batch NaN-corrupted...")
    poison = run_poison(setup, cycles=3)
    print(f"\n[3/3] rollback: all-NaN policy force-swapped past the gate...")
    rollback = run_rollback(setup)

    print("\n== hands-free learning loop ==")
    print(ascii_table(
        ["metric", "value"],
        [
            ("drift: cycles / promoted / rejected / rolled back",
             f"{drift['cycles']} / {drift['promotions']} / "
             f"{drift['rejections']} / {drift['rollbacks']}"),
            ("drift: final policy version", f"{drift['policy_version']}"),
            ("drift: guardrail threshold",
             "unfitted" if drift["guardrail_threshold"] is None
             else f"{drift['guardrail_threshold']:.3f}"),
            ("drift: rel cost first post-shift window",
             f"{drift['post_shift_first_window_rel_cost']:.3f}"),
            ("drift: rel cost final post-shift window",
             f"{drift['post_shift_final_window_rel_cost']:.3f}"),
            ("poison: poisoned / rejected",
             f"{poison['poisoned_cycles']} / {poison['rejections']}"),
            ("poison: live weights bit-identical",
             f"{poison['weights_identical_after']}"),
            ("rollback: detected within window",
             f"{rollback['rolled_back']}"),
            ("rollback: weights restored",
             f"{rollback['weights_restored']}"),
        ],
    ))

    payload = {
        "bench": "learning_loop",
        "mode": "smoke" if args.smoke else "full",
        "scale": scale,
        "drift": drift,
        "poison": poison,
        "rollback": rollback,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2, default=str))
    print(f"\nwrote {args.out}")

    # -- assertions: the closed loop's contract ------------------------
    failures = []
    if drift["promotions"] < 1:
        failures.append("drift made no gated promotion")
    if drift["post_shift_final_window_rel_cost"] > 1.10:
        failures.append(
            "drift did not recover: final-window rel cost "
            f"{drift['post_shift_final_window_rel_cost']:.3f} > 1.10"
        )
    bad_served = set(drift["served_versions"]) - set(drift["promoted_versions"])
    if bad_served:
        failures.append(f"drift served unpromoted versions {sorted(bad_served)}")

    if poison["poisoned_cycles"] < 1:
        failures.append("poison scenario injected no poisoned cycle")
    if poison["promotions"] != 0:
        failures.append(
            f"{poison['promotions']} poisoned candidate(s) were PROMOTED"
        )
    if poison["rejections"] != poison["poisoned_cycles"]:
        failures.append(
            f"only {poison['rejections']} of {poison['poisoned_cycles']} "
            "poisoned cycles were rejected"
        )
    if not poison["weights_identical_after"]:
        failures.append("poisoned retraining leaked into the live weights")
    if poison["policy_version"] != 1 or poison["served_versions"] != [1]:
        failures.append("a rejected update received or served a version")

    if not rollback["rolled_back"]:
        failures.append("forced bad swap was never rolled back")
    elif rollback["rollback"]["served_since_swap"] > rollback["rollback_window"]:
        failures.append(
            "rollback exceeded the observation window: "
            f"{rollback['rollback']['served_since_swap']} serves > "
            f"{rollback['rollback_window']}"
        )
    if not rollback["weights_restored"]:
        failures.append("rollback did not restore the pre-swap weights")
    if rollback["rolled_back"] and (
        rollback["policy_version"] <= rollback["bad_version"]
    ):
        failures.append("rollback moved the version backwards")

    if failures:
        for failure in failures:
            print(f"FAILED: {failure}", file=sys.stderr)
        return 1
    print("\nall learning-loop assertions passed: gated promotion under "
          "drift, poisoned updates rejected, bad swap rolled back")
    return 0


if __name__ == "__main__":
    sys.exit(main())
