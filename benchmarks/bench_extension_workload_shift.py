"""Extension — workload shift (paper §5.2, closing remark).

The paper notes its reward-scaling solution "would likely need to be
adjusted to handle workload shifts, changes in hardware, changes in
physical design" — and §1's promise is an optimizer that "tightly
incorporates feedback ... to improve the performance of query execution
plans generated in the future". This extension experiment measures the
adaptation behaviour the paper gestures at:

1. train ReJOIN on workload A (one region of the schema),
2. switch to a disjoint workload B,
3. compare: (a) quality drop at the switch, (b) recovery with continued
   learning, versus (c) a frozen agent that stops learning at the
   switch — the "fire and forget" failure mode of §1.
"""

import numpy as np
import pytest

from benchmarks.common import (
    get_baseline,
    get_database,
    get_expert_planner,
    print_banner,
)
from repro.core import JoinOrderEnv, Trainer, TrainingConfig, make_agent
from repro.core.reporting import ascii_table
from repro.core.rewards import CostModelReward
from repro.rl.ppo import PPOConfig
from repro.workloads import job_lite_workload

PHASE_EPISODES = 400

#: Workload A: company/keyword-centric families; workload B:
#: cast/person-centric families — disjoint join-graph regions.
FAMILIES_A = (1, 2, 4, 5, 11, 15)
FAMILIES_B = (6, 8, 9, 10, 17, 20)


def _workload(families, variants=("a", "b", "c")):
    wl = job_lite_workload(variants=variants)
    names = {f"{f}{v}" for f in families for v in variants}
    return wl.filter(lambda q: q.name in names)


def _run(adapt: bool, seed: int = 61):
    db = get_database()
    baseline = get_baseline()
    rng = np.random.default_rng(seed)
    workload_a = _workload(FAMILIES_A)
    workload_b = _workload(FAMILIES_B)
    env = JoinOrderEnv(
        db,
        workload_a,
        reward_source=CostModelReward(db, "relative", baseline),
        planner=get_expert_planner(),
        rng=rng,
        forbid_cross_products=False,
    )
    agent = make_agent(env, rng, "ppo", PPOConfig(lr=1e-3, entropy_coef=3e-3))
    trainer = Trainer(env, agent, baseline, rng, TrainingConfig(batch_size=8))
    log_a = trainer.run(PHASE_EPISODES)
    env.workload = workload_b  # the shift
    log_b = trainer.run(PHASE_EPISODES, update=adapt)
    return log_a, log_b


def test_extension_workload_shift(benchmark):
    def run():
        log_a, log_b_adapt = _run(adapt=True)
        _, log_b_frozen = _run(adapt=False)

        tail = PHASE_EPISODES // 4
        rel_a = log_a.relative_costs()
        rel_adapt = log_b_adapt.relative_costs()
        rel_frozen = log_b_frozen.relative_costs()
        summary = {
            "workload A, end of training": float(np.median(rel_a[-tail:])),
            "workload B, right after shift": float(np.median(rel_adapt[:tail])),
            "workload B, adapted (end)": float(np.median(rel_adapt[-tail:])),
            "workload B, frozen agent (end)": float(np.median(rel_frozen[-tail:])),
        }
        print_banner(
            f"Extension: workload shift ({PHASE_EPISODES} episodes per phase)"
        )
        print(
            ascii_table(
                ["phase", "median rel. cost"],
                [(k, f"{v:.2f}") for k, v in summary.items()],
            )
        )
        return summary

    s = benchmark.pedantic(run, rounds=1, iterations=1)

    # Learning on A transfers imperfectly to B, and continued learning
    # must recover what a frozen ("fire and forget") agent cannot.
    assert s["workload A, end of training"] < 3.0
    assert s["workload B, adapted (end)"] <= s["workload B, right after shift"]
    assert s["workload B, adapted (end)"] <= s["workload B, frozen agent (end)"] * 1.1
