"""Substrate microbenchmarks — executor and planner components.

pytest-benchmark timings for the moving parts every experiment leans
on: scans, the three join operators, aggregation, cardinality
estimation, and full expert planning. Also sanity-asserts the simulated
clock's operator ordering (nested loops must be charged more virtual
time than hash joins on the same inputs — the §4 "catastrophic plan"
premise).
"""

import numpy as np
import pytest

from benchmarks.common import get_database, get_expert_planner
from repro.db.plans import HashAggregate, HashJoin, MergeJoin, NestedLoopJoin, SeqScan
from repro.db.query import AggregateSpec, parse_query
from repro.workloads.job import job_lite_query


@pytest.fixture(scope="module")
def db():
    return get_database()


@pytest.fixture(scope="module")
def join_query(db):
    q = parse_query(
        "SELECT * FROM cast_info AS ci, title AS t WHERE ci.movie_id = t.id",
        name="ci-t",
    )
    q.validate_against(db.schema)
    return q


def scan(alias, table):
    return SeqScan(alias, table)


class TestExecutorMicro:
    def test_seq_scan(self, benchmark, db, join_query):
        plan = scan("t", "title")
        benchmark(lambda: db.execute_plan(plan, join_query))

    def test_hash_join(self, benchmark, db, join_query):
        plan = HashJoin(
            scan("t", "title"), scan("ci", "cast_info"), tuple(join_query.joins)
        )
        benchmark(lambda: db.execute_plan(plan, join_query))

    def test_merge_join(self, benchmark, db, join_query):
        plan = MergeJoin(
            scan("t", "title"), scan("ci", "cast_info"), tuple(join_query.joins)
        )
        benchmark(lambda: db.execute_plan(plan, join_query))

    def test_nested_loop_join(self, benchmark, db, join_query):
        plan = NestedLoopJoin(
            scan("t", "title"), scan("ci", "cast_info"), tuple(join_query.joins)
        )
        benchmark(lambda: db.execute_plan(plan, join_query, budget_ms=1e12))

    def test_aggregate(self, benchmark, db):
        q = parse_query(
            "SELECT t.kind_id, COUNT(*) FROM title AS t GROUP BY t.kind_id",
            name="agg",
        )
        plan = HashAggregate(
            scan("t", "title"), tuple(q.group_by), tuple(q.aggregates)
        )
        benchmark(lambda: db.execute_plan(plan, q))

    def test_simulated_clock_orders_operators(self, benchmark, db, join_query):
        """NL joins must cost far more virtual time than hash joins."""
        hash_plan = HashJoin(
            scan("t", "title"), scan("ci", "cast_info"), tuple(join_query.joins)
        )
        nl_plan = NestedLoopJoin(
            scan("t", "title"), scan("ci", "cast_info"), tuple(join_query.joins)
        )

        def measure():
            t_hash = db.execute_plan(hash_plan, join_query).latency_ms
            t_nl = db.execute_plan(nl_plan, join_query, budget_ms=1e12).latency_ms
            return t_hash, t_nl

        t_hash, t_nl = benchmark.pedantic(measure, rounds=1, iterations=1)
        assert t_nl > 50 * t_hash


class TestPlannerMicro:
    def test_cardinality_estimation(self, benchmark, db):
        query = job_lite_query("13c")
        cards = db.cardinalities(query)

        def estimate():
            return cards.rows_for_aliases(frozenset(query.relations))

        benchmark(estimate)

    def test_expert_optimize_small(self, benchmark):
        query = job_lite_query("1a")
        planner = get_expert_planner()
        benchmark(lambda: planner.optimize(query))

    def test_expert_optimize_large(self, benchmark):
        query = job_lite_query("22c")
        planner = get_expert_planner()
        benchmark(lambda: planner.optimize(query))

    def test_analyze_statistics(self, benchmark, db):
        from repro.db.statistics import analyze_table

        table = db.tables["movie_info"]
        rng = np.random.default_rng(0)
        benchmark(lambda: analyze_table(table, rng, sample_size=5000))
