"""Benchmark-suite conftest.

Every bench prints the paper-figure tables it regenerates; pytest's
default capture would swallow them unless ``-s`` is passed. This
autouse fixture re-emits each bench's captured stdout after the test,
so ``pytest benchmarks/ --benchmark-only`` records the full
figure-by-figure report.
"""

import pytest


@pytest.fixture(autouse=True)
def show_bench_output(capsys):
    yield
    out, _err = capsys.readouterr()
    if out.strip():
        with capsys.disabled():
            print(out, end="" if out.endswith("\n") else "\n")
