"""Serving-path throughput: synchronous loop vs the concurrent front end.

The ROADMAP north star is an optimizer that "serves heavy traffic from
millions of users"; PR 1's micro-batch engine only amortizes inference
when callers arrive pre-batched. This bench drives the same cold
request stream two ways and measures what the concurrent front end
(:class:`repro.serving.ServingFrontEnd`) buys:

- **synchronous** — the call-and-return serving path: one caller
  invoking ``OptimizerService.optimize(query)`` per request, each a
  micro-batch of one (batch-1 forward passes every join step);
- **concurrent** — 16 open-loop client threads submitting through the
  front end, whose batch-or-timeout flusher (plus worker-side
  coalescing) manufactures micro-batches out of the unbatched traffic
  and dispatches them to fingerprint-sharded workers.

Both paths serve the identical query set on a cold plan cache with the
guardrail disabled, so the measured gap is pure batching-plus-sharding:
no cache hits, no expert fallbacks, same rollouts. The served policy is
a production-representative network (hidden layers 512/256 — the size
class Neo and Bao deploy; the seed's 128/128 PPO default is a
deliberately small *training* net) because batched inference is what
the front end amortizes and a toy net understates every serving stack.
Each path is timed ``--repeats`` times (default 3) and the best run
counts — one process hiccup must not decide a throughput claim.

The bench asserts

- **>= 2x served-queries/sec** for the best concurrent configuration
  over the synchronous loop at concurrency 16, and
- **plan parity per request/fingerprint**: every request receives an
  operator-for-operator identical physical plan on both paths
  (batching and sharding change the schedule, never the answer).

A guardrail-enabled configuration is also measured and reported
(unasserted): the expert fallback path adds identical per-fingerprint
expert optimizations to both sides, so it dilutes — but must not
invert — the win.

A **multiprocess lane** re-runs the front end with ``executor=
"process"`` — one spawned worker process per shard, BLAS/OpenMP pinned
to one thread per worker, features and weights crossing via the
shared-memory transport — and asserts **>= 3x over thread mode** at the
same shard count and concurrency 16, *gated on >= 4 visible CPU cores*
(thread shards serialize on the GIL; the escape only shows where the
workers can actually run in parallel). Plan parity is asserted
unconditionally: each worker rebuilds its planner from the same kwargs
and its statistics from the same pickled database, so process shards
must return operator-identical plans.

A **telemetry overhead lane** then re-runs the 2-shard front end twice
— once with full tracing (``sample_rate=1.0``, every request traced and
retained) and once with telemetry disabled entirely — and asserts the
traced side keeps **>= 95% of the untraced throughput**: observability
that taxes the hot path more than 5% is a bug, not a feature. The
traced run's per-stage latency breakdown is recorded in the JSON
payload under ``"telemetry"``.

Results land in ``BENCH_serving.json`` for machines to read.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving_concurrency.py
    PYTHONPATH=src python benchmarks/bench_serving_concurrency.py --smoke

``--smoke`` runs a seconds-scale configuration and skips the speedup
assertion (CI boxes make lousy stopwatches) while still exercising
every code path — including plan parity — and emitting the JSON
artifact, so the perf harness itself cannot silently rot.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

# Allow running as a plain script without PYTHONPATH=src.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.featurize import QueryFeaturizer
from repro.core.reporting import ascii_table
from repro.obs import Telemetry, TelemetryConfig
from repro.db.plans import HashJoin, MergeJoin, NestedLoopJoin
from repro.optimizer.memo import SubPlanCostMemo
from repro.optimizer.planner import Planner
from repro.rl.ppo import PPOAgent, PPOConfig
from repro.serving import (
    FrontEndConfig,
    OptimizerService,
    ServingConfig,
    ServingFrontEnd,
)
from repro.workloads import make_imdb_database
from repro.workloads.generator import RandomQueryGenerator

CONCURRENCY = 16
MAX_BATCH = 128
MAX_DELAY_MS = 2.0
GEQO_THRESHOLD = 8
#: Serving-scale policy (Neo/Bao-class layer widths), not the training toy.
POLICY_HIDDEN = (512, 256)


def plan_signature(plan) -> tuple:
    """Operator-for-operator plan identity, with each equi-join
    predicate compared as an *unordered* equality.

    The sub-plan cost memo may serve a structurally identical fragment
    first costed for a query that wrote the same predicate with its
    sides swapped (``a.x = b.y`` vs ``b.y = a.x``) — same join, same
    operators, same cost, different rendering — so textual EXPLAIN
    comparison is too strict for parity across serving paths.
    """
    if isinstance(plan, (HashJoin, MergeJoin, NestedLoopJoin)):
        extra = frozenset(
            tuple(sorted((
                f"{p.left.alias}.{p.left.column}",
                f"{p.right.alias}.{p.right.column}",
            )))
            for p in plan.predicates
        )
    else:
        extra = plan.label()
    return (type(plan).__name__, extra) + tuple(
        plan_signature(child) for child in plan.children
    )


class Setup:
    """Shared database/policy; fresh query objects per timed run.

    Queries are regenerated (same seed, new objects) for every run so
    each path pays identical cold cardinality-estimation work — the
    identity-keyed per-query caches never leak warmth across paths.
    """

    def __init__(self, scale: float, n_requests: int) -> None:
        self.n_requests = n_requests
        self.db = make_imdb_database(scale=scale, seed=42, sample_size=10_000)
        self.featurizer = QueryFeaturizer(self.db.schema, max_relations=10)
        # Inference cost does not depend on the *values* of the weights,
        # so an untrained policy of serving-representative size times
        # the same as a trained one.
        self.agent = PPOAgent(
            self.featurizer.state_dim,
            self.featurizer.n_pair_actions,
            np.random.default_rng(0),
            PPOConfig(hidden=POLICY_HIDDEN),
        )
        self.generator = RandomQueryGenerator(self.db)
        # First-touch warmup (numpy buffers, estimator code paths).
        service = self.service(guardrail=False)
        service.optimize_batch(self.queries()[:16])

    def queries(self):
        rng = np.random.default_rng(123)
        return [
            self.generator.generate(rng, int(rng.integers(5, 9)), name=f"req-{i}")
            for i in range(self.n_requests)
        ]

    def serving_config(self, guardrail: bool) -> ServingConfig:
        return ServingConfig(
            regression_threshold=1.5 if guardrail else None,
            max_batch_size=MAX_BATCH,
            collect_experience=False,
        )

    def service(self, guardrail: bool) -> OptimizerService:
        return OptimizerService(
            self.db,
            self.agent,
            planner=Planner(
                self.db, geqo_threshold=GEQO_THRESHOLD, cost_memo=SubPlanCostMemo()
            ),
            featurizer=self.featurizer,
            config=self.serving_config(guardrail),
        )

    def frontend(
        self,
        guardrail: bool,
        shards: int,
        telemetry: Telemetry | None = None,
        executor: str = "thread",
        max_attempts: int | None = None,
    ) -> ServingFrontEnd:
        config = FrontEndConfig(
            n_shards=shards,
            max_batch=MAX_BATCH,
            max_delay_ms=MAX_DELAY_MS,
            executor=executor,
        )
        if max_attempts is not None:
            config = replace(config, max_attempts=max_attempts)
        return ServingFrontEnd.build(
            self.db,
            self.agent,
            featurizer=self.featurizer,
            serving_config=self.serving_config(guardrail),
            config=config,
            # The kwargs recipe pickles across the spawn boundary in
            # process mode and builds the identical planner in thread
            # mode, so both executors share one construction path.
            planner_kwargs={"geqo_threshold": GEQO_THRESHOLD},
            telemetry=telemetry,
        )


def run_synchronous(setup: Setup, guardrail: bool):
    """The call-and-return path: one optimize() call per request."""
    queries = setup.queries()
    service = setup.service(guardrail)
    start = time.perf_counter()
    served = [service.optimize(query) for query in queries]
    elapsed = time.perf_counter() - start
    latency = service.latency_summary()
    return {
        "throughput_qps": len(queries) / elapsed,
        "p50_ms": latency["p50_ms"],
        "p95_ms": latency["p95_ms"],
        "wall_s": elapsed,
    }, {plan.query_name: plan_signature(plan.plan) for plan in served}


def run_concurrent(
    setup: Setup,
    guardrail: bool,
    shards: int,
    telemetry: Telemetry | None = None,
    executor: str = "thread",
):
    """16 open-loop clients submitting through the front end."""
    queries = setup.queries()
    frontend = setup.frontend(guardrail, shards, telemetry=telemetry,
                              executor=executor)
    futures = [None] * len(queries)

    def client(offset: int) -> None:
        for i in range(offset, len(queries), CONCURRENCY):
            futures[i] = frontend.submit(queries[i])

    threads = [
        threading.Thread(target=client, args=(k,)) for k in range(CONCURRENCY)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    served = [future.result(timeout=120) for future in futures]
    elapsed = time.perf_counter() - start
    latency = frontend.latency_summary()
    counters = frontend.counters()
    frontend.close()
    result_extra = {}
    if executor == "process":
        result_extra = {
            key: counters[key]
            for key in counters
            if key.startswith("transport_")
        }
    return {
        "executor": executor,
        **result_extra,
        "shards": shards,
        "max_batch": MAX_BATCH,
        "max_delay_ms": MAX_DELAY_MS,
        "throughput_qps": len(queries) / elapsed,
        "p50_ms": latency["p50_ms"],
        "p95_ms": latency["p95_ms"],
        "wall_s": elapsed,
        "batch_occupancy_mean": counters["frontend_served_occupancy_mean"],
        "flush_occupancy_mean": counters["frontend_batch_occupancy_mean"],
        "flushes": counters["frontend_flushes"],
        "flushes_size": counters["frontend_flushes_size"],
        "flushes_deadline": counters["frontend_flushes_deadline"],
        "shard_requests": [
            counters[f"shard{k}_requests"] for k in range(shards)
        ],
    }, {plan.query_name: plan_signature(plan.plan) for plan in served}


def best_of(repeats: int, run):
    """Best throughput over ``repeats`` runs (plans from the last run —
    they are identical across runs by construction, which the caller
    asserts against the other path anyway)."""
    best, plans = run()
    for _ in range(repeats - 1):
        result, plans = run()
        if result["throughput_qps"] > best["throughput_qps"]:
            best = result
    return best, plans


def run_telemetry_lane(setup: Setup, repeats: int):
    """The observability tax, measured: the 2-shard front end with every
    request traced (``sample_rate=1.0``, worst case — production samples
    a few percent) versus telemetry disabled outright. Both sides get
    best-of-``repeats`` so one scheduler hiccup cannot fake an overhead.
    Returns (enabled, disabled, plans_enabled, plans_disabled); the
    enabled result carries the traced run's per-stage breakdown.
    """

    def with_telemetry():
        telemetry = Telemetry(
            TelemetryConfig(
                sample_rate=1.0,
                trace_capacity=max(512, setup.n_requests),
            )
        )
        result, plans = run_concurrent(setup, False, shards=2, telemetry=telemetry)
        result["stage_breakdown_ms"] = telemetry.stage_summary()
        result["traces_retained"] = len(telemetry.store.all())
        return result, plans

    on, on_plans = best_of(repeats, with_telemetry)
    off, off_plans = best_of(
        repeats, lambda: run_concurrent(setup, False, shards=2)
    )
    return on, off, on_plans, off_plans


def assert_parity(reference: dict, other: dict, label: str) -> None:
    """Same request => operator-for-operator identical plan."""
    assert reference.keys() == other.keys(), f"{label}: request sets differ"
    mismatched = [name for name in reference if reference[name] != other[name]]
    assert not mismatched, (
        f"{label}: {len(mismatched)} requests served different plans, "
        f"first: {mismatched[0]}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-scale run; skip the speedup assertion")
    parser.add_argument("--requests", type=int, default=None,
                        help="request-stream length (default 256, smoke 64)")
    parser.add_argument("--scale", type=float, default=None,
                        help="database scale (default 0.05, smoke 0.02)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed runs per path, best counts "
                        "(default 3, smoke 1)")
    parser.add_argument("--out", default="BENCH_serving.json")
    args = parser.parse_args(argv)
    n_requests = args.requests or (64 if args.smoke else 256)
    scale = args.scale or (0.02 if args.smoke else 0.05)
    repeats = args.repeats or (1 if args.smoke else 3)
    shard_sweep = (1, 2) if args.smoke else (1, 2, 4)

    print(f"building database (scale={scale}) and {n_requests} cold queries...")
    setup = Setup(scale, n_requests)

    print(f"synchronous optimize() loop (guardrail off, best of {repeats})...")
    sync, sync_plans = best_of(repeats, lambda: run_synchronous(setup, False))

    concurrent = []
    for shards in shard_sweep:
        print(f"concurrent front end, {CONCURRENCY} clients, {shards} shard(s), "
              f"best of {repeats}...")
        result, plans = best_of(
            repeats, lambda: run_concurrent(setup, False, shards)
        )
        assert_parity(sync_plans, plans, f"shards={shards}")
        result["speedup_vs_sync"] = result["throughput_qps"] / sync["throughput_qps"]
        concurrent.append(result)

    # -- multiprocess lane: the GIL escape, measured -------------------
    from repro.serving.procpool import worker_blas_threads

    proc_shards = 2 if args.smoke else 4
    thread_ref = next(r for r in concurrent if r["shards"] == proc_shards)
    print(f"multiprocess front end ({proc_shards} worker processes, "
          f"{CONCURRENCY} clients, BLAS pinned to {worker_blas_threads()} "
          f"thread(s)/worker, best of {repeats})...")
    multiproc, multiproc_plans = best_of(
        repeats,
        lambda: run_concurrent(setup, False, proc_shards, executor="process"),
    )
    assert_parity(sync_plans, multiproc_plans, f"process shards={proc_shards}")
    multiproc["speedup_vs_sync"] = (
        multiproc["throughput_qps"] / sync["throughput_qps"]
    )
    multiproc["speedup_vs_thread"] = (
        multiproc["throughput_qps"] / thread_ref["throughput_qps"]
    )
    multiproc["cpu_count"] = os.cpu_count()
    multiproc["blas_threads_per_worker"] = worker_blas_threads()

    print("guardrail-enabled comparison (reported, not asserted)...")
    gsync, gsync_plans = run_synchronous(setup, True)
    gconc, gconc_plans = run_concurrent(setup, True, shards=2)
    assert_parity(gsync_plans, gconc_plans, "guardrail shards=2")

    # Timing assertions need repeats even in smoke: best-of-1 on a CI
    # box measures the scheduler, not the telemetry.
    lane_repeats = max(repeats, 3)
    print(f"telemetry overhead lane (2 shards, 100% sampling vs disabled, "
          f"best of {lane_repeats})...")
    tel_on, tel_off, tel_on_plans, tel_off_plans = run_telemetry_lane(
        setup, lane_repeats
    )
    assert_parity(tel_off_plans, tel_on_plans, "telemetry lane")
    telemetry_qps_ratio = tel_on["throughput_qps"] / tel_off["throughput_qps"]

    best = max(concurrent, key=lambda r: r["throughput_qps"])
    speedup = best["throughput_qps"] / sync["throughput_qps"]

    rows = [("sync optimize() loop", f"{sync['throughput_qps']:.0f}",
             f"{sync['p50_ms']:.2f}", f"{sync['p95_ms']:.2f}", "-", "-")]
    for result in concurrent:
        rows.append((
            f"front end, {result['shards']} shard(s)",
            f"{result['throughput_qps']:.0f}",
            f"{result['p50_ms']:.2f}",
            f"{result['p95_ms']:.2f}",
            f"{result['batch_occupancy_mean']:.1f}",
            f"{result['speedup_vs_sync']:.2f}x",
        ))
    print()
    print(ascii_table(
        ["path", "req/s", "p50 ms", "p95 ms", "batch occ.", "speedup"], rows
    ))
    print(f"\nmultiprocess ({proc_shards} worker processes): "
          f"{multiproc['throughput_qps']:.0f} req/s — "
          f"{multiproc['speedup_vs_thread']:.2f}x over thread mode at the "
          f"same shard count, {multiproc['speedup_vs_sync']:.2f}x over "
          f"sync ({os.cpu_count()} CPU core(s) visible)")
    print(f"\nguardrail on: sync {gsync['throughput_qps']:.0f} req/s, "
          f"front end (2 shards) {gconc['throughput_qps']:.0f} req/s "
          f"({gconc['throughput_qps'] / gsync['throughput_qps']:.2f}x)")
    print(f"\ntelemetry overhead (2 shards): traced "
          f"{tel_on['throughput_qps']:.0f} req/s vs disabled "
          f"{tel_off['throughput_qps']:.0f} req/s "
          f"({telemetry_qps_ratio:.3f}x, {tel_on['traces_retained']} "
          f"traces retained)")
    print(f"\nbest concurrent speedup: {speedup:.2f}x "
          f"({best['shards']} shard(s)); plan parity held on "
          f"{len(sync_plans)} requests")

    payload = {
        "mode": "smoke" if args.smoke else "full",
        "requests": n_requests,
        "concurrency": CONCURRENCY,
        "db_scale": scale,
        "repeats": repeats,
        "policy_hidden": list(POLICY_HIDDEN),
        "sync": sync,
        "concurrent": concurrent,
        "multiprocess": multiproc,
        "guardrail_on": {
            "sync": gsync,
            "concurrent": gconc,
        },
        "telemetry": {
            "sample_rate": 1.0,
            "shards": 2,
            "repeats": lane_repeats,
            "enabled": tel_on,
            "disabled": tel_off,
            "qps_ratio": telemetry_qps_ratio,
        },
        "best_speedup": speedup,
        "plan_parity_requests": len(sync_plans),
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    assert telemetry_qps_ratio >= 0.95, (
        f"full tracing cost {(1 - telemetry_qps_ratio) * 100:.1f}% of "
        f"throughput (budget: 5%)"
    )
    if not args.smoke:
        assert speedup >= 2.0, (
            f"concurrent front end managed only {speedup:.2f}x over the "
            f"synchronous loop (need >= 2x)"
        )
        # The GIL-escape claim needs actual cores to stand on: thread
        # shards serialize on the interpreter lock, process shards only
        # beat them when the box can run the workers in parallel.
        if (os.cpu_count() or 1) >= 4:
            assert multiproc["speedup_vs_thread"] >= 3.0, (
                f"process executor managed only "
                f"{multiproc['speedup_vs_thread']:.2f}x over thread shards "
                f"at concurrency {CONCURRENCY} (need >= 3x on "
                f"{os.cpu_count()} cores)"
            )
        else:
            print(f"multiproc speedup assertion skipped: "
                  f"{os.cpu_count()} CPU core(s) < 4")
    return 0


if __name__ == "__main__":
    sys.exit(main())
