"""Section 5.3 — incremental learning curricula.

Paper: decompose query optimization along two axes (pipeline stages ×
relation count, Figure 6) and train in phases of growing complexity.
Three decompositions (Figure 7): pipeline (§5.3.1), relations (§5.3.2),
hybrid (§5.3.3) — measured here against flat full-search-space training
with the same total episode budget.

Regenerates the comparison table: per-curriculum final plan quality
(median relative cost over the last phase's tail) plus the per-phase
trajectory, and asserts the shape: every curriculum completes its
phases, reaches sane quality, and the curricula beat or match flat
training on the full search space.
"""

import numpy as np
import pytest

from benchmarks.common import (
    SEC53_EPISODES_PER_PHASE,
    get_database,
    print_banner,
)
from repro.core.incremental import (
    IncrementalTrainer,
    flat_curriculum,
    hybrid_curriculum,
    pipeline_curriculum,
    relations_curriculum,
)
from repro.core.reporting import ascii_table
from repro.rl.reinforce import ReinforceConfig

MAX_RELATIONS = 6


def _curricula():
    per_phase = SEC53_EPISODES_PER_PHASE
    pipeline = pipeline_curriculum(per_phase, max_relations=MAX_RELATIONS)
    relations = relations_curriculum(
        per_phase, relation_steps=(2, 3, 4, MAX_RELATIONS)
    )
    hybrid = hybrid_curriculum(per_phase, final_relations=MAX_RELATIONS)
    # flat gets the same total episode budget as the pipeline curriculum
    flat = flat_curriculum(per_phase * 4, max_relations=MAX_RELATIONS)
    return {
        "pipeline (§5.3.1)": pipeline,
        "relations (§5.3.2)": relations,
        "hybrid (§5.3.3)": hybrid,
        "flat (no curriculum)": flat,
    }


def _run(curriculum, seed):
    trainer = IncrementalTrainer(
        get_database(),
        np.random.default_rng(seed),
        queries_per_phase=40,
        batch_size=8,
        agent_config=ReinforceConfig(lr=1e-3, entropy_coef=3e-3),
    )
    results = trainer.run(curriculum)
    tail = max(20, SEC53_EPISODES_PER_PHASE // 2)
    return results, trainer.final_quality(results, tail=tail)


def test_sec53_curriculum_comparison(benchmark):
    def run():
        summary = {}
        trajectories = {}
        for name, curriculum in _curricula().items():
            results, quality = _run(curriculum, seed=41)
            summary[name] = quality
            trajectories[name] = [
                (r.phase.name, float(np.median(r.log.relative_costs())))
                for r in results
            ]
        print_banner(
            "Section 5.3: incremental curricula vs flat training "
            f"({SEC53_EPISODES_PER_PHASE} episodes/phase)"
        )
        print(
            ascii_table(
                ["curriculum", "final median rel. cost"],
                [(k, f"{v:.2f}") for k, v in summary.items()],
            )
        )
        print("\nper-phase median relative cost:")
        for name, phases in trajectories.items():
            steps = ", ".join(f"{p}: {v:.2f}" for p, v in phases)
            print(f"  {name}: {steps}")
        return summary

    s = benchmark.pedantic(run, rounds=1, iterations=1)

    flat = s["flat (no curriculum)"]
    for name, quality in s.items():
        assert quality < 50.0, f"{name} must reach sane final quality"
    # The §5.3 premise: breaking up the search space keeps learning
    # manageable — the best curriculum beats flat training.
    assert min(v for k, v in s.items() if k != "flat (no curriculum)") <= flat * 1.1


def test_sec53_pipeline_smoother_than_flat(benchmark):
    """The pipeline curriculum's first phase is the small join-order
    space — it must be much better than flat training's first phase at
    the same episode count (the 'manageable growth' argument)."""

    def run():
        pipeline_results, _ = _run(
            pipeline_curriculum(SEC53_EPISODES_PER_PHASE, MAX_RELATIONS), seed=43
        )
        flat_results, _ = _run(
            flat_curriculum(SEC53_EPISODES_PER_PHASE * 4, MAX_RELATIONS), seed=43
        )
        pipeline_first = float(
            np.median(pipeline_results[0].log.relative_costs())
        )
        flat_rel = flat_results[0].log.relative_costs()
        flat_first = float(np.median(flat_rel[: SEC53_EPISODES_PER_PHASE]))
        print(
            f"\nfirst-phase median rel. cost — pipeline: {pipeline_first:.2f}, "
            f"flat: {flat_first:.2f}"
        )
        return pipeline_first, flat_first

    pipeline_first, flat_first = benchmark.pedantic(run, rounds=1, iterations=1)
    assert pipeline_first <= flat_first
