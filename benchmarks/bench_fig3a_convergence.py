"""Figure 3a — ReJOIN convergence.

Paper: "the average performance of ReJOIN compared to PostgreSQL during
training ... ReJOIN has the ability to learn join orderings that lead
to query execution plans with latency close [to] and even better than
the ones of PostgreSQL. However, converging to a good model takes time"
(~9000 episodes in the paper; the episode budget here is scaled down,
shape preserved — set REPRO_FULL=1 for the larger run).

Regenerates the series: episode bucket -> mean plan cost relative to
the expert optimizer (the paper's y-axis, "Plan Cost (rel. to
Postgres)"), and asserts the shape: early plans are catastrophically
worse than the expert; late plans approach parity.
"""

import numpy as np
import pytest

from benchmarks.common import FIG3A_EPISODES, get_trained_rejoin, print_banner
from repro.core.reporting import ascii_table


@pytest.fixture(scope="module")
def trained():
    return get_trained_rejoin()


def test_fig3a_convergence_series(benchmark, trained):
    def analyze():
        log = trained.log
        rel = log.relative_costs()
        bucket = max(1, FIG3A_EPISODES // 10)
        series = log.relative_cost_series(bucket_size=bucket)

        print_banner("Figure 3a: ReJOIN convergence (plan cost relative to expert)")
        rows = [
            (
                end,
                f"{mean * 100:.0f}%",
                f"{np.median(rel[max(0, end - bucket):end]) * 100:.0f}%",
            )
            for end, mean in series
        ]
        print(ascii_table(["episodes", "mean rel. cost", "median rel. cost"], rows))

        early = float(rel[:bucket].mean())
        late = rel[-bucket:]
        print(
            f"\nearly mean: {early * 100:.0f}%   late mean: "
            f"{late.mean() * 100:.0f}%   late median: {np.median(late) * 100:.0f}%"
        )
        return early, float(late.mean()), float(np.median(late))

    early, late_mean, late_median = benchmark.pedantic(analyze, rounds=1, iterations=1)

    # Shape assertions: the paper's curve starts far above the expert
    # (~800%+ on its clipped axis) and converges toward parity.
    assert early > 3.0, "early training should be far worse than the expert"
    assert late_mean < early / 2, "training must improve substantially"
    assert late_median < 1.8, "converged median should approach expert parity"


def test_fig3a_convergence_point_exists(benchmark, trained):
    """The curve crosses a 'competitive' threshold at some episode.

    The paper's competitiveness bar is its clipped y-axis (~900%); we
    use trailing-median <= 300% of the expert, far below the early
    phase's four-plus orders of magnitude.
    """

    def converged():
        import numpy as np

        rel = trained.log.relative_costs()
        window = 200
        for end in range(window, len(rel) + 1):
            if np.median(rel[end - window : end]) <= 3.0:
                return end
        return None

    episode = benchmark.pedantic(converged, rounds=1, iterations=1)
    print(f"\nfirst episode with trailing-200 median relative cost <= 3.0: {episode}")
    assert episode is not None


def test_fig3a_training_throughput(benchmark, trained):
    """Episodes/second of the training loop (16-episode bursts)."""

    def burst():
        trained.trainer.run(16, update=False)

    benchmark(burst)
