"""Expert planning time vs. relation count: seed DP vs the bitset lane.

The paper's Figure 3c contrasts the expert optimizer's steeply growing
planning time with the learned policy's cheap forward pass — and in
this repro the expert is not just a baseline: it is the guardrail
fallback on the serving path, the demonstration source for LfD
bootstrap, and the reference in every parity run. This bench sweeps
randomly generated connected queries at 6/9/12/15 relations and times
three expert lanes on identical inputs:

- **seed-dp** — the legacy ``selinger_dp`` enumerator, kept verbatim as
  the parity oracle (frozenset-keyed cardinalities, per-pair
  connectivity re-derivation);
- **bitset-dp** — ``selinger_dp_bitset`` with pruning off: mask-keyed
  memoized cardinalities, cached join-graph derivations, split
  enumeration over ints;
- **bitset-dp+prune** — the same with branch-and-bound pruning seeded
  from a greedy bottom-up bound (exact mode: only provably dominated
  entries are discarded).

For every query the bench asserts **plan-cost parity**: in exact mode
both bitset lanes must return a join tree whose cost — measured by the
*legacy* lane's own cost context — equals the seed DP's to within float
noise (in practice the trees are identical). The headline assertion is
**>= 5x** median planning-time speedup for the pruned bitset lane at 12
relations in the planner-default (left-deep) mode. A ReJOIN-style
greedy policy rollout is timed alongside for the Figure-3c contrast.

Results land in ``BENCH_planner.json`` for machines to read.

Usage::

    PYTHONPATH=src python benchmarks/bench_planner.py
    PYTHONPATH=src python benchmarks/bench_planner.py --smoke

``--smoke`` runs a seconds-scale configuration (fewer/smaller queries)
and skips the speedup assertion (CI boxes make lousy stopwatches) while
still exercising every lane — including the parity checks — and
emitting the JSON artifact, so the perf harness itself cannot rot.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

import numpy as np

# Allow running as a plain script without PYTHONPATH=src.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.featurize import QueryFeaturizer, SlotState
from repro.optimizer.bitset_dp import DPStats, selinger_dp_bitset
from repro.optimizer.join_search import _SearchContext, selinger_dp
from repro.rl.ppo import PPOAgent
from repro.workloads import make_imdb_database
from repro.workloads.generator import RandomQueryGenerator


def _legacy_tree_cost(ctx: _SearchContext, tree) -> float:
    """Score a tree with the legacy lane's own cost measure (the parity
    oracle: both lanes are judged by the same yardstick)."""
    if tree.is_leaf:
        return ctx.scan_cost(tree.alias)
    return (
        _legacy_tree_cost(ctx, tree.left)
        + _legacy_tree_cost(ctx, tree.right)
        + ctx.join_cost(ctx.mask_of(tree.left), ctx.mask_of(tree.right))
    )


def _time_lane(db, query, bushy, lane, repeats):
    """Best-of-``repeats`` wall time and the tree for one lane.

    Every repetition gets a fresh ``QueryCardinalities`` so no lane
    inherits another's (or its own earlier run's) memoized estimates —
    the timed quantity is a cold expert optimization, exactly what a
    guardrail miss pays.
    """
    best = float("inf")
    tree = None
    stats = DPStats()
    for _ in range(repeats):
        cards = db.estimator().for_query(query)
        # Fresh stats per repetition: every repeat does identical work,
        # so the last repetition's counters ARE the per-query numbers
        # (accumulating would inflate them by the repeats factor).
        stats = DPStats()
        start = time.perf_counter()
        if lane == "seed-dp":
            tree = selinger_dp(query, cards, db.cost_params, bushy=bushy)
        elif lane == "bitset-dp":
            tree = selinger_dp_bitset(
                query, cards, db.cost_params, bushy=bushy, prune=False
            )
        else:  # bitset-dp+prune
            tree = selinger_dp_bitset(
                query, cards, db.cost_params, bushy=bushy,
                prune=True, exact=True, stats=stats,
            )
        best = min(best, time.perf_counter() - start)
    return best * 1000.0, tree, stats


def _time_policy(db, query, featurizer, agent, rng, repeats):
    """A greedy ReJOIN rollout (the Figure-3c learned-policy contrast)."""
    best = float("inf")
    for _ in range(repeats):
        cards = db.estimator().for_query(query)
        start = time.perf_counter()
        state = SlotState(query, featurizer.max_relations)
        encoder = featurizer.encoder(state, cards)
        while not state.done:
            vec = encoder.vector()
            mask = encoder.pair_mask(False)
            action, _ = agent.act(vec, mask, rng, greedy=True)
            encoder.join(*featurizer.decode_pair(action))
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


LANES = ("seed-dp", "bitset-dp", "bitset-dp+prune")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--relations", type=int, nargs="+",
                        default=[6, 9, 12, 15])
    parser.add_argument("--queries", type=int, default=3,
                        help="random queries per relation count")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per query (best counts)")
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--bushy", action="store_true",
                        help="sweep bushy DP instead of the planner-default "
                        "left-deep mode")
    parser.add_argument("--out", default="BENCH_planner.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-scale run; skip the speedup assertion",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.relations = [n for n in args.relations if n <= 9] or [6]
        args.queries = min(args.queries, 2)
        args.repeats = min(args.repeats, 2)

    print(f"building database (scale={args.scale})...")
    db = make_imdb_database(scale=args.scale, seed=42, sample_size=10_000)
    gen = RandomQueryGenerator(db)
    rng = np.random.default_rng(args.seed)
    max_rel = max(args.relations)
    featurizer = QueryFeaturizer(db.schema, max_relations=max(max_rel, 2))
    agent = PPOAgent(
        featurizer.state_dim, featurizer.n_pair_actions, np.random.default_rng(0)
    )

    bushy = bool(args.bushy)
    curve = []
    parity_ok = True
    for n in args.relations:
        lane_ms = {lane: [] for lane in LANES}
        policy_ms = []
        pruned = subsets = 0
        for rep in range(args.queries):
            query = gen.generate(rng, n, name=f"bench-{n}-{rep}")
            trees = {}
            for lane in LANES:
                ms, tree, stats = _time_lane(db, query, bushy, lane, args.repeats)
                lane_ms[lane].append(ms)
                trees[lane] = tree
                if lane == "bitset-dp+prune":
                    pruned += stats.entries_pruned
                    subsets += stats.subsets_enumerated
            policy_ms.append(
                _time_policy(db, query, featurizer, agent, rng, args.repeats)
            )
            # Plan-cost parity, judged by the legacy lane's own measure.
            ctx = _SearchContext(query, db.estimator().for_query(query),
                                 db.cost_params)
            ref = _legacy_tree_cost(ctx, trees["seed-dp"])
            for lane in LANES[1:]:
                cost = _legacy_tree_cost(ctx, trees[lane])
                if not (abs(cost - ref) <= 1e-9 * max(abs(ref), 1.0)):
                    parity_ok = False
                    print(f"PARITY VIOLATION n={n} rep={rep} lane={lane}: "
                          f"{cost} vs seed {ref}")
        row = {
            "relations": n,
            "queries": args.queries,
            "dp_subsets_enumerated": subsets,
            "dp_pruned": pruned,
            "policy_ms_median": round(statistics.median(policy_ms), 3),
        }
        for lane in LANES:
            row[f"{lane}_ms_median"] = round(statistics.median(lane_ms[lane]), 3)
        row["speedup_bitset"] = round(
            row["seed-dp_ms_median"] / max(row["bitset-dp_ms_median"], 1e-9), 2
        )
        row["speedup_bitset_prune"] = round(
            row["seed-dp_ms_median"]
            / max(row["bitset-dp+prune_ms_median"], 1e-9),
            2,
        )
        curve.append(row)
        print(
            f"n={n:2d}: seed {row['seed-dp_ms_median']:8.2f}ms  "
            f"bitset {row['bitset-dp_ms_median']:7.2f}ms  "
            f"bitset+prune {row['bitset-dp+prune_ms_median']:7.2f}ms  "
            f"policy {row['policy_ms_median']:6.2f}ms  "
            f"speedup {row['speedup_bitset_prune']:5.1f}x  "
            f"pruned {pruned}/{subsets}"
        )

    assert parity_ok, "bitset DP diverged from the seed DP in exact mode"
    print(f"plan-cost parity: all lanes identical across "
          f"{sum(r['queries'] for r in curve)} queries")

    payload = {
        "bench": "planner",
        "smoke": args.smoke,
        "bushy": bushy,
        "repeats": args.repeats,
        "plan_cost_parity": parity_ok,
        "curve": curve,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not args.smoke:
        at12 = next((r for r in curve if r["relations"] == 12), None)
        if at12 is not None:
            assert at12["speedup_bitset_prune"] >= 5.0, (
                f"bitset+prune only {at12['speedup_bitset_prune']:.2f}x faster "
                f"than the seed DP at 12 relations; tentpole target is >=5x"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
