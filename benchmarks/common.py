"""Shared fixtures for the benchmark harness.

Every figure bench runs against the same JOB-lite database and training
workload; building them (and training the shared ReJOIN agent used by
Figures 3a/3b) is cached at module level so one training run feeds all
the benches that need a trained agent.

Scale knobs: set ``REPRO_FULL=1`` for paper-scale episode counts
(slower, closer to the published curves); the default is laptop scale,
which preserves every claimed *shape*.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core import (
    ExpertBaseline,
    JoinOrderEnv,
    Trainer,
    TrainingConfig,
    TrainingLog,
    make_agent,
)
from repro.core.rewards import CostModelReward
from repro.db.engine import Database
from repro.optimizer.memo import SubPlanCostMemo
from repro.optimizer.planner import Planner
from repro.rl.ppo import PPOConfig
from repro.workloads import job_lite_workload, make_imdb_database
from repro.workloads.generator import RandomQueryGenerator, Workload

FULL_SCALE = bool(int(os.environ.get("REPRO_FULL", "0")))

#: Database scale factor for benches (kept small so latency-phase
#: experiments execute thousands of plans in seconds).
DB_SCALE = 0.25 if FULL_SCALE else 0.05
DB_SEED = 42

#: Training episode budgets.
FIG3A_EPISODES = 9000 if FULL_SCALE else 4000
SEC4_EPISODES = 2000 if FULL_SCALE else 700
SEC51_EPISODES = 600 if FULL_SCALE else 150
SEC52_PHASE1 = 1500 if FULL_SCALE else 500
SEC52_PHASE2 = 600 if FULL_SCALE else 200
SEC53_EPISODES_PER_PHASE = 400 if FULL_SCALE else 80


@lru_cache(maxsize=1)
def get_database() -> Database:
    return make_imdb_database(scale=DB_SCALE, seed=DB_SEED, sample_size=10_000)


#: Relation-count cap for the training mix; 11 covers every Figure 3b
#: query (22c is the largest at 11 relations).
MAX_TRAIN_RELATIONS = 11


@lru_cache(maxsize=1)
def get_training_workload() -> Workload:
    """JOB-lite variants a/b/c for training."""
    wl = job_lite_workload(variants=("a", "b", "c"))
    return wl.filter(lambda q: q.n_relations <= MAX_TRAIN_RELATIONS)


@lru_cache(maxsize=1)
def get_eval_workload() -> Workload:
    """Held-out variant d."""
    wl = job_lite_workload(variants=("d",))
    return wl.filter(lambda q: q.n_relations <= MAX_TRAIN_RELATIONS)


#: The expert's GEQO threshold for experiments. PostgreSQL defaults to
#: 12; like a DBA tuning planner knobs to the installation (the paper's
#: §1 point), we scale it with our 10-100x smaller database so the
#: genetic-search regime — where a learned optimizer has headroom and
#: planning time keeps growing — covers the larger workload queries.
EXPERT_GEQO_THRESHOLD = 8


@lru_cache(maxsize=1)
def get_expert_planner() -> Planner:
    return Planner(
        get_database(),
        geqo_threshold=EXPERT_GEQO_THRESHOLD,
        cost_memo=SubPlanCostMemo(),
    )


@lru_cache(maxsize=1)
def get_baseline() -> ExpertBaseline:
    return ExpertBaseline(get_database(), planner=get_expert_planner())


@dataclass
class TrainedReJoin:
    env: JoinOrderEnv
    agent: object
    trainer: Trainer
    log: TrainingLog


@lru_cache(maxsize=1)
def get_trained_rejoin() -> TrainedReJoin:
    """Train ReJOIN once (cost-model reward, cross products allowed —
    the paper's setting) and share it across Figure 3 benches."""
    db = get_database()
    workload = get_training_workload()
    baseline = get_baseline()
    rng = np.random.default_rng(7)
    env = JoinOrderEnv(
        db,
        workload,
        reward_source=CostModelReward(db, "relative", baseline),
        planner=get_expert_planner(),
        rng=rng,
        forbid_cross_products=False,
    )
    agent = make_agent(env, rng, "ppo", PPOConfig(lr=1e-3, entropy_coef=3e-3))
    trainer = Trainer(env, agent, baseline, rng, TrainingConfig(batch_size=8))
    log = trainer.run(FIG3A_EPISODES)
    return TrainedReJoin(env=env, agent=agent, trainer=trainer, log=log)


@lru_cache(maxsize=1)
def get_generator() -> RandomQueryGenerator:
    return RandomQueryGenerator(get_database())


def get_planner() -> Planner:
    """Alias kept for readability in benches."""
    return get_expert_planner()


def print_banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def best_of_k_plan_cost(env, agent, query, k: int = 16, seed: int = 0) -> float:
    """Plan ``query`` with the trained policy and return the best cost
    among the greedy plan plus ``k`` sampled plans.

    Inference-time sampling is how learned optimizers are actually
    deployed (ReJOIN's successors use beam/sample search); no execution
    happens here — candidate plans are ranked by the cost model, the
    same signal the agent was trained on.
    """
    rng = np.random.default_rng(seed)
    best = None
    for attempt in range(k + 1):
        state, mask = env.reset(query)
        while True:
            action, _ = agent.act(state, mask, rng, greedy=(attempt == 0))
            result = env.step(action)
            state, mask = result.state, result.mask
            if result.done:
                break
        cost = result.info["outcome"].cost
        best = cost if best is None else min(best, cost)
    return best
