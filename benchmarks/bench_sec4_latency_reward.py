"""Section 4, footnote 2 — latency as a tabula-rasa reward signal.

Paper: "We confirmed this experimentally by using query latency as the
reward signal in ReJOIN. The initial query plans produced could not be
executed in any reasonable amount of time." And §4's point that reward
evaluation is not constant-time: "poor execution plans can take
significantly longer to evaluate than good execution plans".

Regenerates both observations with a fresh agent whose reward is true
executed latency under a per-query budget:

- a large fraction of early episodes hit the execution budget
  (catastrophic plans),
- the simulated execution time spent on early episodes dwarfs what the
  expert's plans would need for the same queries.
"""

import numpy as np
import pytest

from benchmarks.common import (
    get_baseline,
    get_database,
    get_expert_planner,
    get_training_workload,
    print_banner,
)
from repro.core import JoinOrderEnv, Trainer, TrainingConfig, make_agent
from repro.core.reporting import ascii_table
from repro.core.rewards import LatencyReward
from repro.rl.ppo import PPOConfig

EPISODES = 120
BUDGET_FACTOR = 30.0


def test_sec4_latency_reward_from_scratch(benchmark):
    def run():
        db = get_database()
        baseline = get_baseline()
        workload = get_training_workload().filter(lambda q: 4 <= q.n_relations <= 8)
        rng = np.random.default_rng(3)
        env = JoinOrderEnv(
            db,
            workload,
            reward_source=LatencyReward(
                db, shaping="relative", baseline=baseline,
                budget_factor=BUDGET_FACTOR,
            ),
            planner=get_expert_planner(),
            rng=rng,
            forbid_cross_products=False,
        )
        agent = make_agent(env, rng, "ppo", PPOConfig(lr=1e-3))
        trainer = Trainer(env, agent, baseline, rng, TrainingConfig(batch_size=8))
        log = trainer.run(EPISODES)

        timeout_frac = log.timeout_fraction()
        agent_ms = float(np.sum([r.latency_ms for r in log.records]))
        expert_ms = float(np.sum([r.expert_latency_ms for r in log.records]))
        rows = [
            ("episodes", EPISODES),
            ("execution budget", f"{BUDGET_FACTOR:.0f}x expert latency"),
            ("episodes hitting the budget", f"{timeout_frac * 100:.0f}%"),
            ("total simulated execution time", f"{agent_ms / 1e3:.1f}s"),
            ("same queries, expert plans", f"{expert_ms / 1e3:.1f}s"),
            ("evaluation overhead ratio", f"{agent_ms / expert_ms:.0f}x"),
        ]
        print_banner("Section 4 footnote 2: latency reward from scratch")
        print(ascii_table(["quantity", "value"], rows))
        return timeout_frac, agent_ms / expert_ms

    timeout_frac, overhead = benchmark.pedantic(run, rounds=1, iterations=1)

    # Shape: early tabula-rasa plans are regularly catastrophic, and
    # evaluating them costs an order of magnitude more execution time
    # than the queries are worth.
    assert timeout_frac > 0.25, "early latency-reward training must hit budgets"
    assert overhead > 5.0, "reward evaluation must dominate execution time"
