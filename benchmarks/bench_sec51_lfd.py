"""Section 5.1 — learning from demonstration.

Paper: "By leveraging learning from demonstration, one can train a
query optimization model that learns with small overhead, without
having to execute a large number of bad plans, therefore massively
accelerating learning", with re-training on the expert when
"performance begins to slip".

Regenerates the comparison between:

- an LfD agent: phase-1 imitation of the expert's recorded episode
  histories (reward-prediction on expert latencies), then phase-2
  latency fine-tuning with slip-retraining, and
- a tabula-rasa agent with the same architecture fine-tuned on latency
  from scratch (no demonstrations),

tracking the §4 safety metric — how many catastrophic (budget-hitting)
plans each one *executes* — and final relative latency.
"""

import numpy as np
import pytest

from benchmarks.common import (
    SEC51_EPISODES,
    get_baseline,
    get_database,
    get_expert_planner,
    get_training_workload,
    print_banner,
)
from repro.core import DemonstrationSet, JoinOrderEnv, LfDAgent, LfDConfig, LfDTrainer
from repro.core.reporting import ascii_table
from repro.core.rewards import LatencyReward


def _make_env(rng):
    db = get_database()
    baseline = get_baseline()
    workload = get_training_workload().filter(lambda q: 4 <= q.n_relations <= 8)
    return JoinOrderEnv(
        db,
        workload,
        reward_source=LatencyReward(
            db, shaping="relative", baseline=baseline, budget_factor=30.0
        ),
        planner=get_expert_planner(),
        rng=rng,
        forbid_cross_products=False,
    )


def _run(imitate: bool, seed: int):
    rng = np.random.default_rng(seed)
    env = _make_env(rng)
    baseline = get_baseline()
    demos = DemonstrationSet.collect(env, list(env.workload))
    agent = LfDAgent(
        env.state_dim,
        env.n_actions,
        rng,
        LfDConfig(imitation_epochs=40, epsilon=0.05),
    )
    trainer = LfDTrainer(env, agent, demos, baseline, rng)
    if imitate:
        trainer.imitation_phase()
    log = trainer.fine_tune(SEC51_EPISODES)
    return log, trainer


def test_sec51_learning_from_demonstration(benchmark):
    def run():
        lfd_log, lfd_trainer = _run(imitate=True, seed=21)
        raw_log, _ = _run(imitate=False, seed=21)

        lfd_rel = lfd_log.relative_latencies()
        raw_rel = raw_log.relative_latencies()
        rows = [
            (
                "LfD (imitation first)",
                f"{lfd_log.timeout_fraction() * 100:.0f}%",
                f"{np.median(lfd_rel[: len(lfd_rel) // 3]):.2f}",
                f"{np.median(lfd_rel[-len(lfd_rel) // 3 :]):.2f}",
                lfd_trainer.retrain_count,
            ),
            (
                "tabula rasa",
                f"{raw_log.timeout_fraction() * 100:.0f}%",
                f"{np.median(raw_rel[: len(raw_rel) // 3]):.2f}",
                f"{np.median(raw_rel[-len(raw_rel) // 3 :]):.2f}",
                "-",
            ),
        ]
        print_banner(
            f"Section 5.1: learning from demonstration ({SEC51_EPISODES} "
            "fine-tuning episodes each)"
        )
        print(
            ascii_table(
                [
                    "agent",
                    "catastrophic plans executed",
                    "early median rel. latency",
                    "final median rel. latency",
                    "slip retrains",
                ],
                rows,
            )
        )
        return {
            "lfd_timeouts": lfd_log.timeout_fraction(),
            "raw_timeouts": raw_log.timeout_fraction(),
            "lfd_early": float(np.median(lfd_rel[: len(lfd_rel) // 3])),
            "lfd_final": float(np.median(lfd_rel[-len(lfd_rel) // 3 :])),
            "raw_final": float(np.median(raw_rel[-len(raw_rel) // 3 :])),
        }

    s = benchmark.pedantic(run, rounds=1, iterations=1)

    # §5.1's claims: demonstrations mean (a) essentially no catastrophic
    # plans ever get executed, unlike tabula rasa, and (b) the agent is
    # competitive from the start ("the initial behavior of the model may
    # [match] the traditional query optimizer").
    assert s["lfd_timeouts"] <= 0.05
    assert s["raw_timeouts"] > s["lfd_timeouts"] + 0.05
    assert s["lfd_early"] < 5.0, "imitated agent must start near expert latency"
    assert s["lfd_final"] < 5.0


def test_sec51_demonstrations_collected_safely(benchmark):
    """Collecting demonstrations only ever executes *expert* plans —
    none of them catastrophic (the §4 overhead never materializes)."""

    def collect():
        rng = np.random.default_rng(5)
        env = _make_env(rng)
        demos = DemonstrationSet.collect(env, list(env.workload))
        return sum(d.timed_out for d in demos), len(demos)

    timeouts, total = benchmark.pedantic(collect, rounds=1, iterations=1)
    print(f"\ndemonstrations: {total}, catastrophic: {timeouts}")
    assert timeouts == 0
    assert total > 0
