"""Cardinality lanes head-to-head: q-error vs executor truth + plan impact.

The pluggable estimator substrate claims three things, and this bench
measures all of them on the Figure 3b workload:

1. **histogram** — the seed lane's independence/uniformity assumptions
   underestimate skewed multi-join cardinalities (the Leis et al. shape
   the paper's Section 4 argument needs);
2. **learned** — an MSCN-light residual net trained on executor truth
   (sub-plan observed row counts from executed expert plans) must beat
   the histogram lane's median q-error on the same workload;
3. **pessimistic** — the MCV upper-bound lane must never underestimate
   executor truth. Statistics are taken from a *full* table scan here
   (no ANALYZE sampling), so the lane's per-class bounds are exact and
   the zero-underestimate claim is checkable, not probabilistic.

Per lane the bench reports sub-plan q-error percentiles (p50/p90/max)
against executor-observed row counts, a held-out split for the learned
lane (trained on half the queries, scored on the other half), and the
end-to-end plan impact: each lane plans every query, the chosen plans
are costed under the shared histogram reference cost model and actually
executed, and the totals are compared against the histogram lane's.

Results land in ``BENCH_cardinality.json`` for machines to read.

Usage::

    PYTHONPATH=src python benchmarks/bench_cardinality.py
    PYTHONPATH=src python benchmarks/bench_cardinality.py --smoke

``--smoke`` runs a seconds-scale configuration (smaller database, the
four 5-6 relation Figure 3b families, fewer training epochs) while
keeping every assertion live, so the lane guarantees cannot rot.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

# Allow running as a plain script without PYTHONPATH=src.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.db import (
    HistogramEstimator,
    LearnedEstimator,
    PessimisticEstimator,
    harvest_training_pairs,
    q_error,
)
from repro.db.cardinality import q_error as _q  # noqa: F401 (re-export check)
from repro.optimizer import Planner, SubPlanCostMemo
from repro.workloads import make_imdb_database
from repro.workloads.job import FIGURE_3B_QUERIES, job_lite_query

LANES = ("histogram", "pessimistic", "learned")


def _percentiles(qerrors):
    arr = np.asarray(qerrors, dtype=np.float64)
    return {
        "n": int(arr.size),
        "p50": round(float(np.median(arr)), 3),
        "p90": round(float(np.percentile(arr, 90)), 3),
        "max": round(float(arr.max()), 3),
    }


def _lane_qerrors(db, pairs):
    """Q-errors of the database's *active* lane over harvested pairs.

    Returns (all q-errors, hard-join q-errors, underestimate count).
    Single-scan pairs are near-exact for every lane (both sides clamp
    at one row), and join pairs whose true result is empty or one row
    are exact for *every* lane after the >=1-row clamp. The lanes are
    therefore *compared* on the hard joins — multi-alias sub-plans with
    at least two observed rows, where the independence assumption
    actually compounds."""
    out = []
    joins = []
    under = 0
    for query, aliases, actual in pairs:
        est = db.cardinalities(query).rows_for_aliases(aliases)
        qe = q_error(est, actual)
        out.append(qe)
        if len(aliases) >= 2 and actual >= 2:
            joins.append(qe)
        if est < float(actual) * (1.0 - 1e-9):
            under += 1
    return out, joins, under


def _plan_pass(db, queries, label):
    """Plan every query under the active lane; execute the chosen plans."""
    planner = Planner(db, cost_memo=SubPlanCostMemo())
    chosen = []
    latency_total = 0.0
    for query in queries:
        result = planner.optimize(query)
        exec_result = db.execute_plan(result.plan, query, budget_ms=1e9)
        latency_total += exec_result.latency_ms
        chosen.append((query, result.plan))
    print(f"  {label:11s} planned {len(queries)} queries, "
          f"executed latency {latency_total:.1f}ms")
    return chosen, latency_total


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--epochs", type=int, default=300,
                        help="learned-lane training epochs")
    parser.add_argument("--queries", type=int, default=len(FIGURE_3B_QUERIES),
                        help="how many Figure 3b queries to benchmark")
    parser.add_argument("--out", default="BENCH_cardinality.json")
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-scale CI run; all assertions stay live")
    args = parser.parse_args(argv)
    if args.smoke:
        args.scale = min(args.scale, 0.02)
        args.queries = min(args.queries, 4)
        args.epochs = min(args.epochs, 120)

    print(f"building database (scale={args.scale}, full-scan statistics)...")
    # sample_size > any table: ANALYZE sees every row, so the pessimistic
    # lane's upper bounds are exact rather than sampled.
    db = make_imdb_database(
        scale=args.scale, seed=args.seed, sample_size=10**9
    )
    if args.smoke:
        # A hardness spread, not the four (easy) family-1 variants: the
        # comparison needs joins where the independence assumption is
        # actually wrong.
        names = ("1a", "8c", "12b", "16b")[: args.queries]
    else:
        names = FIGURE_3B_QUERIES[: args.queries]
    queries = [job_lite_query(name) for name in names]
    print(f"workload: {', '.join(names)}")

    # Executor truth: one expert plan per query, every sub-plan's
    # observed row count. These pairs are both the training signal and
    # the evaluation points.
    print("harvesting executor truth (expert plans, full execution)...")
    pairs = harvest_training_pairs(db, queries)
    by_query = {q.name: [p for p in pairs if p[0] is q] for q in queries}
    print(f"harvested {len(pairs)} sub-plan truth pairs")

    report = {"lanes": {}}

    # -- histogram lane (the active default) ---------------------------
    hist_q, hist_joins, _ = _lane_qerrors(db, pairs)
    report["lanes"]["histogram"] = _percentiles(hist_q)
    report["lanes"]["histogram"]["p50_hard_joins"] = round(
        float(np.median(hist_joins)), 3
    )

    # -- pessimistic lane ----------------------------------------------
    db.use_estimator(PessimisticEstimator)
    pess_q, pess_joins, pess_under = _lane_qerrors(db, pairs)
    report["lanes"]["pessimistic"] = _percentiles(pess_q)
    report["lanes"]["pessimistic"]["p50_hard_joins"] = round(
        float(np.median(pess_joins)), 3
    )
    report["lanes"]["pessimistic"]["underestimates"] = pess_under

    # -- learned lane: held-out split first ----------------------------
    train_queries = queries[0::2]
    heldout_queries = queries[1::2]
    holdout_stats = None
    if heldout_queries:
        est = db.use_estimator(LearnedEstimator(db.schema, db.stats, seed=0))
        train_pairs = [p for q in train_queries for p in by_query[q.name]]
        est.fit(db, train_pairs, epochs=args.epochs)
        heldout_pairs = [p for q in heldout_queries for p in by_query[q.name]]
        holdout_q, holdout_joins, _ = _lane_qerrors(db, heldout_pairs)
        holdout_stats = _percentiles(holdout_q)
        holdout_stats["p50_hard_joins"] = round(float(np.median(holdout_joins)), 3)
        holdout_stats["trained_on"] = [q.name for q in train_queries]
        report["lanes"]["learned_holdout"] = holdout_stats

    # -- learned lane: trained on the full workload --------------------
    est = db.use_estimator(LearnedEstimator(db.schema, db.stats, seed=0))
    diag = est.fit(db, pairs, epochs=args.epochs)
    learned_q, learned_joins, _ = _lane_qerrors(db, pairs)
    report["lanes"]["learned"] = _percentiles(learned_q)
    report["lanes"]["learned"]["p50_hard_joins"] = round(
        float(np.median(learned_joins)), 3
    )
    report["lanes"]["learned"]["final_loss"] = round(diag["final_loss"], 5)

    print("\nsub-plan q-error vs executor truth:")
    for lane, stats in report["lanes"].items():
        extra = ""
        if "underestimates" in stats:
            extra = f"  underestimates={stats['underestimates']}"
        print(f"  {lane:16s} p50={stats['p50']:8.2f}  "
              f"p50(hard joins)={stats['p50_hard_joins']:8.2f}  "
              f"p90={stats['p90']:9.2f}  max={stats['max']:10.1f}{extra}")

    # -- end-to-end plan impact ----------------------------------------
    # Each lane plans the workload; chosen plans are executed (latency is
    # estimator-independent truth) and costed under the shared histogram
    # reference model, so the deltas isolate the estimates' plan impact.
    print("\nend-to-end plan impact:")
    plans = {}
    latencies = {}
    db.use_estimator(HistogramEstimator)
    plans["histogram"], latencies["histogram"] = _plan_pass(
        db, queries, "histogram"
    )
    db.use_estimator(PessimisticEstimator)
    plans["pessimistic"], latencies["pessimistic"] = _plan_pass(
        db, queries, "pessimistic"
    )
    est = db.use_estimator(LearnedEstimator(db.schema, db.stats, seed=0))
    est.fit(db, pairs, epochs=args.epochs)
    plans["learned"], latencies["learned"] = _plan_pass(db, queries, "learned")

    db.use_estimator(HistogramEstimator)  # the shared reference cost model
    plan_report = {}
    for lane in LANES:
        ref_cost = sum(
            db.plan_cost(plan, query).total for query, plan in plans[lane]
        )
        plan_report[lane] = {
            "reference_cost_total": round(ref_cost, 1),
            "executed_latency_ms": round(latencies[lane], 2),
            "latency_vs_histogram": round(
                latencies[lane] / max(latencies["histogram"], 1e-9), 3
            ),
        }
    report["plan_impact"] = plan_report
    for lane, row in plan_report.items():
        print(f"  {lane:11s} ref-cost {row['reference_cost_total']:14.1f}  "
              f"latency {row['executed_latency_ms']:9.2f}ms  "
              f"({row['latency_vs_histogram']:.2f}x histogram)")

    payload = {
        "bench": "cardinality",
        "smoke": args.smoke,
        "scale": args.scale,
        "queries": list(names),
        "pairs": len(pairs),
        **report,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    # -- the lane guarantees (live in smoke mode too) -------------------
    # Compared on the join pairs with unrounded medians: single-scan
    # pairs are near-exact for every lane, so the honest comparison is
    # where estimation is actually hard.
    hist_p50 = float(np.median(hist_joins))
    learned_p50 = float(np.median(learned_joins))
    assert learned_p50 < hist_p50, (
        f"learned lane median join q-error {learned_p50:.4f} is not below "
        f"the histogram lane's {hist_p50:.4f} on the skewed workload"
    )
    assert pess_under == 0, (
        f"pessimistic lane underestimated executor truth on {pess_under} "
        f"of {len(pairs)} benchmarked sub-plans"
    )
    print("lane guarantees hold: learned join p50 "
          f"{learned_p50:.3f} < histogram join p50 {hist_p50:.3f}; "
          "pessimistic underestimates = 0")
    return 0


if __name__ == "__main__":
    sys.exit(main())
