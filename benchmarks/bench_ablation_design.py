"""Ablations for the reproduction's own design choices.

DESIGN.md documents three decisions that shape the core results; each
gets an ablation here so the choice is measured, not asserted:

1. **Reward shaping** — the paper's reward is the cost reciprocal
   ``1/M(t)``; we default to log-scale shapings. All are monotone in
   cost (same induced plan ordering), but their variance differs by
   orders of magnitude, which dominates convergence speed at small
   episode budgets.
2. **Cardinality features** — we add an estimated log-cardinality per
   subtree to ReJOIN's structural encoding; the ablation reverts to the
   original encoding.
3. **Cross-product masking** — PostgreSQL never considers cross
   products when a connected pair exists; ReJOIN left them reachable.
   Masking shrinks the effective search space dramatically.
"""

import numpy as np
import pytest

from benchmarks.common import (
    get_baseline,
    get_database,
    get_expert_planner,
    get_training_workload,
    print_banner,
)
from repro.core import JoinOrderEnv, QueryFeaturizer, Trainer, TrainingConfig, make_agent
from repro.core.reporting import ascii_table
from repro.core.rewards import CostModelReward
from repro.rl.ppo import PPOConfig

EPISODES = 500


def _train(shaping="relative", include_cardinality=True, forbid_cross=False, seed=51):
    db = get_database()
    baseline = get_baseline()
    workload = get_training_workload().filter(lambda q: 4 <= q.n_relations <= 8)
    rng = np.random.default_rng(seed)
    featurizer = QueryFeaturizer(
        db.schema,
        max_relations=max(q.n_relations for q in workload),
        include_cardinality=include_cardinality,
    )
    env = JoinOrderEnv(
        db,
        workload,
        reward_source=CostModelReward(
            db, shaping, baseline if shaping == "relative" else None
        ),
        featurizer=featurizer,
        planner=get_expert_planner(),
        rng=rng,
        forbid_cross_products=forbid_cross,
    )
    agent = make_agent(env, rng, "ppo", PPOConfig(lr=1e-3, entropy_coef=3e-3))
    trainer = Trainer(env, agent, baseline, rng, TrainingConfig(batch_size=8))
    log = trainer.run(EPISODES)
    rel = log.relative_costs()
    tail = EPISODES // 4
    return float(np.median(rel[-tail:]))


def test_ablation_reward_shaping(benchmark):
    def run():
        results = {
            "reciprocal 1/M(t) (paper)": _train(shaping="reciprocal"),
            "neg_log": _train(shaping="neg_log"),
            "relative to expert (default)": _train(shaping="relative"),
        }
        print_banner(f"Ablation: reward shaping ({EPISODES} episodes)")
        print(
            ascii_table(
                ["shaping", "final median rel. cost"],
                [(k, f"{v:.2f}") for k, v in results.items()],
            )
        )
        return results

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    # All shapings must learn (improve well past random-choice levels);
    # the log-scale shapings should not be worse than raw reciprocal,
    # whose tiny terminal rewards (1/cost ~ 1e-5) starve the gradient.
    assert all(v < 100.0 for v in r.values())
    best_log = min(r["neg_log"], r["relative to expert (default)"])
    assert best_log <= r["reciprocal 1/M(t) (paper)"] * 1.2


def test_ablation_cardinality_features(benchmark):
    def run():
        results = {
            "structure + cardinality (default)": _train(include_cardinality=True),
            "structure only (original ReJOIN)": _train(include_cardinality=False),
        }
        print_banner(f"Ablation: subtree cardinality feature ({EPISODES} episodes)")
        print(
            ascii_table(
                ["featurization", "final median rel. cost"],
                [(k, f"{v:.2f}") for k, v in results.items()],
            )
        )
        return results

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(v < 100.0 for v in r.values())
    # The cardinality feature should never hurt at this budget.
    assert (
        r["structure + cardinality (default)"]
        <= r["structure only (original ReJOIN)"] * 1.25
    )


def test_ablation_cross_product_masking(benchmark):
    def run():
        results = {
            "cross products reachable (ReJOIN)": _train(forbid_cross=False),
            "cross products masked (PostgreSQL-like)": _train(forbid_cross=True),
        }
        print_banner(f"Ablation: cross-product masking ({EPISODES} episodes)")
        print(
            ascii_table(
                ["action space", "final median rel. cost"],
                [(k, f"{v:.2f}") for k, v in results.items()],
            )
        )
        return results

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    # Masking removes the catastrophic region entirely, so it should be
    # at least as good after the same budget.
    assert (
        r["cross products masked (PostgreSQL-like)"]
        <= r["cross products reachable (ReJOIN)"] * 1.1
    )
