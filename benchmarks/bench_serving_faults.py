"""Fault-tolerant serving under seeded chaos: success rate, plan
parity, and tail-latency cost of absorbing injected failures.

The ROADMAP north star is an optimizer serving heavy production
traffic, and production means partial failure: worker crashes, latency
spikes, NaN forward passes, statistics changing under a running batch.
This bench drives the concurrent front end
(:class:`repro.serving.ServingFrontEnd`) with 16 open-loop clients two
ways:

- **baseline** — the no-fault stream, exactly as
  ``bench_serving_concurrency`` runs it;
- **chaos** — the same stream with a seeded
  :class:`repro.serving.FaultInjector` firing each of its four fault
  kinds (worker exceptions, latency spikes, policy NaNs, stats-epoch
  races) at 5% per request, so the retry/backoff, degradation-ladder,
  and breaker machinery is live on the hot path.

The bench asserts

- **>= 99.5% success**: injected faults are absorbed by retries and
  degradation, not surfaced to clients;
- **zero unresolved futures**: every accepted request resolves — the
  future-lifecycle audit, measured;
- **plan parity on non-faulted requests**: a request that was never
  retried and never degraded receives the operator-for-operator same
  plan as the no-fault baseline (chaos changes the schedule, never the
  answer for untouched traffic);
- **p95 <= 1.5x the no-fault baseline** (full mode only — smoke skips
  the timing assertion like the other serving bench, because CI boxes
  make lousy stopwatches).

Results merge into ``BENCH_serving.json`` under a ``"faults"`` section
(read-modify-write: the concurrency bench's sections are preserved).

Usage::

    PYTHONPATH=src python benchmarks/bench_serving_faults.py
    PYTHONPATH=src python benchmarks/bench_serving_faults.py --smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

# Allow running as a plain script without PYTHONPATH=src.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_serving_concurrency import (
    CONCURRENCY,
    Setup,
    best_of,
    plan_signature,
    run_concurrent,
)

from repro.core.reporting import ascii_table
from repro.serving import FaultConfig, FaultInjector

FAULT_RATE = 0.05
CHAOS_SEED = 1


def run_chaos(setup: Setup, shards: int, rate: float, seed: int):
    """The baseline stream with every fault kind firing at ``rate``."""
    queries = setup.queries()
    frontend = setup.frontend(False, shards)
    frontend.install_fault_injector(FaultInjector(FaultConfig(
        worker_fault_rate=rate,
        latency_spike_rate=rate,
        policy_nan_rate=rate,
        stats_race_rate=rate,
        seed=seed,
    )))
    futures = [None] * len(queries)

    def client(offset: int) -> None:
        for i in range(offset, len(queries), CONCURRENCY):
            futures[i] = frontend.submit(queries[i])

    threads = [
        threading.Thread(target=client, args=(k,)) for k in range(CONCURRENCY)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    served, failures = [], []
    for future in futures:
        try:
            served.append(future.result(timeout=180))
        except Exception as exc:  # chaos: failure is a statistic here
            failures.append(repr(exc))
    elapsed = time.perf_counter() - start
    outstanding = len(frontend._outstanding)
    latency = frontend.latency_summary()
    stats = frontend.stats
    injected = frontend.fault_injector.fired_counts()
    breakers_open = sum(1 for b in frontend.breakers if b.state != "closed")
    frontend.close()

    clean_plans = {
        plan.query_name: plan_signature(plan.plan)
        for plan in served
        if plan.attempts == 1 and not plan.source.startswith("degraded_")
    }
    degraded = sum(
        1 for plan in served if plan.source.startswith("degraded_")
    )
    retried = sum(1 for plan in served if plan.attempts > 1)
    result = {
        "shards": shards,
        "fault_rate": rate,
        "seed": seed,
        "throughput_qps": len(queries) / elapsed,
        "p50_ms": latency["p50_ms"],
        "p95_ms": latency["p95_ms"],
        "wall_s": elapsed,
        "requests": len(queries),
        "succeeded": len(served),
        "failed": len(failures),
        "failure_samples": failures[:5],
        "success_rate": len(served) / max(1, len(queries)),
        "unresolved_futures": outstanding,
        "injected": injected,
        "total_injected": sum(injected.values()),
        "served_degraded": degraded,
        "served_retried": retried,
        "clean_requests": len(clean_plans),
        "frontend_retries": stats.retries,
        "frontend_retries_exhausted": stats.retries_exhausted,
        "frontend_worker_restarts": stats.worker_restarts,
        "frontend_circuit_opens": stats.circuit_opens,
        "breakers_open_at_end": breakers_open,
    }
    return result, clean_plans


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-scale run; skip the p95 assertion")
    parser.add_argument("--requests", type=int, default=None,
                        help="request-stream length (default 256, smoke 64)")
    parser.add_argument("--scale", type=float, default=None,
                        help="database scale (default 0.05, smoke 0.02)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed runs per path, best counts "
                        "(default 3, smoke 1)")
    parser.add_argument("--rate", type=float, default=FAULT_RATE,
                        help="per-request probability of each fault kind")
    parser.add_argument("--seed", type=int, default=CHAOS_SEED,
                        help="fault-injection seed")
    parser.add_argument("--out", default="BENCH_serving.json")
    args = parser.parse_args(argv)
    n_requests = args.requests or (64 if args.smoke else 256)
    scale = args.scale or (0.02 if args.smoke else 0.05)
    repeats = args.repeats or (1 if args.smoke else 3)

    print(f"building database (scale={scale}) and {n_requests} cold queries...")
    setup = Setup(scale, n_requests)

    print(f"no-fault baseline: front end, {CONCURRENCY} clients, 2 shards, "
          f"best of {repeats}...")
    baseline, baseline_plans = best_of(
        repeats, lambda: run_concurrent(setup, False, shards=2)
    )

    print(f"chaos: same stream, every fault kind at {args.rate:.0%} "
          f"(seed {args.seed}), best of {repeats}...")
    chaos, clean_plans = best_of(
        repeats, lambda: run_chaos(setup, 2, args.rate, args.seed)
    )

    # Plan parity on untouched traffic: never retried, never degraded.
    mismatched = [
        name for name, sig in clean_plans.items()
        if baseline_plans.get(name) != sig
    ]
    p95_ratio = chaos["p95_ms"] / max(1e-9, baseline["p95_ms"])

    print()
    print(ascii_table(
        ["path", "req/s", "p50 ms", "p95 ms", "success", "injected"],
        [
            ("no faults", f"{baseline['throughput_qps']:.0f}",
             f"{baseline['p50_ms']:.2f}", f"{baseline['p95_ms']:.2f}",
             "100.0%", "0"),
            (f"chaos @ {args.rate:.0%}", f"{chaos['throughput_qps']:.0f}",
             f"{chaos['p50_ms']:.2f}", f"{chaos['p95_ms']:.2f}",
             f"{chaos['success_rate'] * 100:.1f}%",
             f"{chaos['total_injected']}"),
        ],
    ))
    print(f"\ninjected by kind: {chaos['injected']}")
    print(f"absorbed: {chaos['frontend_retries']} retries, "
          f"{chaos['served_degraded']} degraded serves, "
          f"{chaos['served_retried']} requests served on a later attempt")
    print(f"plan parity held on {len(clean_plans)} non-faulted requests; "
          f"p95 ratio {p95_ratio:.2f}x (budget 1.5x)")

    section = {
        "mode": "smoke" if args.smoke else "full",
        "baseline": baseline,
        "chaos": chaos,
        "p95_ratio_vs_baseline": p95_ratio,
        "plan_parity_clean_requests": len(clean_plans),
        "plan_parity_mismatches": len(mismatched),
    }
    out = Path(args.out)
    payload = json.loads(out.read_text()) if out.exists() else {}
    payload["faults"] = section
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"merged 'faults' section into {args.out}")

    assert chaos["success_rate"] >= 0.995, (
        f"chaos success rate {chaos['success_rate']:.2%} below the 99.5% "
        f"floor ({chaos['failed']} failures: {chaos['failure_samples']})"
    )
    assert chaos["unresolved_futures"] == 0, (
        f"{chaos['unresolved_futures']} futures left unresolved"
    )
    assert not mismatched, (
        f"{len(mismatched)} non-faulted requests served different plans "
        f"under chaos, first: {mismatched[0]}"
    )
    assert chaos["total_injected"] >= 1, (
        "the chaos run injected nothing — the harness is not wired in"
    )
    if not args.smoke:
        assert p95_ratio <= 1.5, (
            f"chaos p95 {chaos['p95_ms']:.2f}ms is {p95_ratio:.2f}x the "
            f"no-fault baseline {baseline['p95_ms']:.2f}ms (budget: 1.5x)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
