"""Fault-tolerant serving under seeded chaos: success rate, plan
parity, and tail-latency cost of absorbing injected failures.

The ROADMAP north star is an optimizer serving heavy production
traffic, and production means partial failure: worker crashes, latency
spikes, NaN forward passes, statistics changing under a running batch.
This bench drives the concurrent front end
(:class:`repro.serving.ServingFrontEnd`) with 16 open-loop clients two
ways:

- **baseline** — the no-fault stream, exactly as
  ``bench_serving_concurrency`` runs it;
- **chaos** — the same stream with a seeded
  :class:`repro.serving.FaultInjector` firing each of its four fault
  kinds (worker exceptions, latency spikes, policy NaNs, stats-epoch
  races) at 5% per request, so the retry/backoff, degradation-ladder,
  and breaker machinery is live on the hot path.

The bench asserts

- **>= 99.5% success**: injected faults are absorbed by retries and
  degradation, not surfaced to clients;
- **zero unresolved futures**: every accepted request resolves — the
  future-lifecycle audit, measured;
- **plan parity on non-faulted requests**: a request that was never
  retried and never degraded receives the operator-for-operator same
  plan as the no-fault baseline (chaos changes the schedule, never the
  answer for untouched traffic);
- **p95 <= 1.5x the no-fault baseline** (full mode only — smoke skips
  the timing assertion like the other serving bench, because CI boxes
  make lousy stopwatches).

A **process-chaos lane** then re-runs the stream with
``executor="process"`` and ``worker_kill`` armed: real SIGKILLs against
spawned shard processes. It asserts at least one kill fired, the same
>= 99.5% success / zero-unresolved-futures floor, plan parity on
untouched traffic, and — after broadcasting a simulated promotion to
version 2 before the stream — that every worker standing at the end
(including any supervisor respawn) serves at that live version.

Results merge into ``BENCH_serving.json`` under a ``"faults"`` section
(read-modify-write: the concurrency bench's sections are preserved).

Usage::

    PYTHONPATH=src python benchmarks/bench_serving_faults.py
    PYTHONPATH=src python benchmarks/bench_serving_faults.py --smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

import numpy as np

# Allow running as a plain script without PYTHONPATH=src.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_serving_concurrency import (
    CONCURRENCY,
    Setup,
    best_of,
    plan_signature,
    run_concurrent,
)

from repro.core.reporting import ascii_table
from repro.serving import FaultConfig, FaultInjector

FAULT_RATE = 0.05
CHAOS_SEED = 1
#: SIGKILL probability per request routed to a process shard — low
#: enough that the stream survives, high enough that a 64-request smoke
#: deterministically fires at least one kill.
PROC_KILL_RATE = 0.03
#: The "promoted" policy version broadcast before the process-chaos
#: stream; a respawned worker must rejoin at this version.
LIVE_VERSION = 2
#: Retry budget for the process-chaos lane (front-end default is 3):
#: a SIGKILL fails the dead worker's whole in-flight batch, so a
#: single request can burn attempts on several independent hazards.
PROC_MAX_ATTEMPTS = 5


def run_chaos(
    setup: Setup,
    shards: int,
    rate: float,
    seed: int,
    executor: str = "thread",
    kill_rate: float = 0.0,
    max_attempts: int | None = None,
):
    """The baseline stream with every fault kind firing at ``rate``."""
    queries = setup.queries()
    frontend = setup.frontend(
        False, shards, executor=executor, max_attempts=max_attempts
    )
    frontend.install_fault_injector(FaultInjector(FaultConfig(
        worker_fault_rate=rate,
        latency_spike_rate=rate,
        policy_nan_rate=rate,
        stats_race_rate=rate,
        worker_kill_rate=kill_rate,
        seed=seed,
    )))
    if executor == "process":
        # Simulate a prior hot-swap: broadcast the live weights at
        # LIVE_VERSION so a SIGKILL'd shard's respawn has something to
        # rejoin (its spec would otherwise rebuild at version 1).
        params = {
            name: np.copy(arr)
            for name, arr in setup.agent.policy.net.net.params.items()
        }
        for service in frontend.services:
            service.apply_policy_weights(params, LIVE_VERSION)
    futures = [None] * len(queries)

    def client(offset: int) -> None:
        for i in range(offset, len(queries), CONCURRENCY):
            futures[i] = frontend.submit(queries[i])

    threads = [
        threading.Thread(target=client, args=(k,)) for k in range(CONCURRENCY)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    served, failures = [], []
    for future in futures:
        try:
            served.append(future.result(timeout=180))
        except Exception as exc:  # chaos: failure is a statistic here
            failures.append(repr(exc))
    elapsed = time.perf_counter() - start
    outstanding = len(frontend._outstanding)
    latency = frontend.latency_summary()
    stats = frontend.stats
    # Merged across the process boundary: parent-side draws plus each
    # worker's own (disjoint sites, plain sum). Identical to the
    # injector's counts in thread mode.
    injected = frontend.fault_fired_counts()
    breakers_open = sum(1 for b in frontend.breakers if b.state != "closed")
    process_state = None
    if executor == "process":
        # Give the supervisor a beat to finish respawning a worker
        # killed by the tail of the stream before auditing liveness.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and not all(
            s.is_alive() for s in frontend.services
        ):
            time.sleep(0.05)
        process_state = {
            "worker_kills": injected.get("worker_kill", 0),
            "worker_respawns": stats.worker_restarts,
            "live_version": LIVE_VERSION,
            "policy_versions_at_end": [
                s.policy_version for s in frontend.services
            ],
            "workers_alive_at_end": [
                s.is_alive() for s in frontend.services
            ],
        }
    frontend.close()

    clean_plans = {
        plan.query_name: plan_signature(plan.plan)
        for plan in served
        if plan.attempts == 1 and not plan.source.startswith("degraded_")
    }
    degraded = sum(
        1 for plan in served if plan.source.startswith("degraded_")
    )
    retried = sum(1 for plan in served if plan.attempts > 1)
    result = {
        "shards": shards,
        "executor": executor,
        "fault_rate": rate,
        "kill_rate": kill_rate,
        "seed": seed,
        "throughput_qps": len(queries) / elapsed,
        "p50_ms": latency["p50_ms"],
        "p95_ms": latency["p95_ms"],
        "wall_s": elapsed,
        "requests": len(queries),
        "succeeded": len(served),
        "failed": len(failures),
        "failure_samples": failures[:5],
        "success_rate": len(served) / max(1, len(queries)),
        "unresolved_futures": outstanding,
        "injected": injected,
        "total_injected": sum(injected.values()),
        "served_degraded": degraded,
        "served_retried": retried,
        "clean_requests": len(clean_plans),
        "frontend_retries": stats.retries,
        "frontend_retries_exhausted": stats.retries_exhausted,
        "frontend_worker_restarts": stats.worker_restarts,
        "frontend_circuit_opens": stats.circuit_opens,
        "breakers_open_at_end": breakers_open,
    }
    if process_state is not None:
        result.update(process_state)
    return result, clean_plans


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-scale run; skip the p95 assertion")
    parser.add_argument("--requests", type=int, default=None,
                        help="request-stream length (default 256, smoke 64)")
    parser.add_argument("--scale", type=float, default=None,
                        help="database scale (default 0.05, smoke 0.02)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed runs per path, best counts "
                        "(default 3, smoke 1)")
    parser.add_argument("--rate", type=float, default=FAULT_RATE,
                        help="per-request probability of each fault kind")
    parser.add_argument("--seed", type=int, default=CHAOS_SEED,
                        help="fault-injection seed")
    parser.add_argument("--out", default="BENCH_serving.json")
    args = parser.parse_args(argv)
    n_requests = args.requests or (64 if args.smoke else 256)
    scale = args.scale or (0.02 if args.smoke else 0.05)
    repeats = args.repeats or (1 if args.smoke else 3)

    print(f"building database (scale={scale}) and {n_requests} cold queries...")
    setup = Setup(scale, n_requests)

    print(f"no-fault baseline: front end, {CONCURRENCY} clients, 2 shards, "
          f"best of {repeats}...")
    baseline, baseline_plans = best_of(
        repeats, lambda: run_concurrent(setup, False, shards=2)
    )

    print(f"chaos: same stream, every fault kind at {args.rate:.0%} "
          f"(seed {args.seed}), best of {repeats}...")
    chaos, clean_plans = best_of(
        repeats, lambda: run_chaos(setup, 2, args.rate, args.seed)
    )

    print(f"process chaos: 2 worker processes, every fault kind at "
          f"{args.rate:.0%} plus SIGKILL at {PROC_KILL_RATE:.0%} "
          f"(seed {args.seed})...")
    # A SIGKILL burns a retry attempt for every request the dead worker
    # held (a whole batch, not one victim), so the process lane layers a
    # much harsher hazard mix on the same stream — give it the deeper
    # retry budget an operator running kill-prone workers would.
    proc_chaos, proc_clean_plans = run_chaos(
        setup, 2, args.rate, args.seed,
        executor="process", kill_rate=PROC_KILL_RATE,
        max_attempts=PROC_MAX_ATTEMPTS,
    )

    # Plan parity on untouched traffic: never retried, never degraded.
    mismatched = [
        name for name, sig in clean_plans.items()
        if baseline_plans.get(name) != sig
    ]
    proc_mismatched = [
        name for name, sig in proc_clean_plans.items()
        if baseline_plans.get(name) != sig
    ]
    p95_ratio = chaos["p95_ms"] / max(1e-9, baseline["p95_ms"])

    print()
    print(ascii_table(
        ["path", "req/s", "p50 ms", "p95 ms", "success", "injected"],
        [
            ("no faults", f"{baseline['throughput_qps']:.0f}",
             f"{baseline['p50_ms']:.2f}", f"{baseline['p95_ms']:.2f}",
             "100.0%", "0"),
            (f"chaos @ {args.rate:.0%}", f"{chaos['throughput_qps']:.0f}",
             f"{chaos['p50_ms']:.2f}", f"{chaos['p95_ms']:.2f}",
             f"{chaos['success_rate'] * 100:.1f}%",
             f"{chaos['total_injected']}"),
        ],
    ))
    print(f"\ninjected by kind: {chaos['injected']}")
    print(f"absorbed: {chaos['frontend_retries']} retries, "
          f"{chaos['served_degraded']} degraded serves, "
          f"{chaos['served_retried']} requests served on a later attempt")
    print(f"plan parity held on {len(clean_plans)} non-faulted requests; "
          f"p95 ratio {p95_ratio:.2f}x (budget 1.5x)")
    print(f"\nprocess chaos: {proc_chaos['success_rate'] * 100:.1f}% success, "
          f"{proc_chaos['worker_kills']} SIGKILL(s), "
          f"{proc_chaos['worker_respawns']} respawn(s), versions at end "
          f"{proc_chaos['policy_versions_at_end']} "
          f"(live {proc_chaos['live_version']}), injected "
          f"{proc_chaos['injected']}")

    section = {
        "mode": "smoke" if args.smoke else "full",
        "baseline": baseline,
        "chaos": chaos,
        "process_chaos": proc_chaos,
        "p95_ratio_vs_baseline": p95_ratio,
        "plan_parity_clean_requests": len(clean_plans),
        "plan_parity_mismatches": len(mismatched),
        "process_plan_parity_clean_requests": len(proc_clean_plans),
        "process_plan_parity_mismatches": len(proc_mismatched),
    }
    out = Path(args.out)
    payload = json.loads(out.read_text()) if out.exists() else {}
    payload["faults"] = section
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"merged 'faults' section into {args.out}")

    assert chaos["success_rate"] >= 0.995, (
        f"chaos success rate {chaos['success_rate']:.2%} below the 99.5% "
        f"floor ({chaos['failed']} failures: {chaos['failure_samples']})"
    )
    assert chaos["unresolved_futures"] == 0, (
        f"{chaos['unresolved_futures']} futures left unresolved"
    )
    assert not mismatched, (
        f"{len(mismatched)} non-faulted requests served different plans "
        f"under chaos, first: {mismatched[0]}"
    )
    assert chaos["total_injected"] >= 1, (
        "the chaos run injected nothing — the harness is not wired in"
    )
    # Process-executor chaos: SIGKILL is survivable, futures resolve,
    # and the supervisor's respawn rejoins at the live policy version.
    assert proc_chaos["worker_kills"] >= 1, (
        "process chaos fired no worker_kill — raise PROC_KILL_RATE or "
        "check the injector wiring"
    )
    assert proc_chaos["success_rate"] >= 0.995, (
        f"process chaos success rate {proc_chaos['success_rate']:.2%} "
        f"below the 99.5% floor ({proc_chaos['failed']} failures: "
        f"{proc_chaos['failure_samples']})"
    )
    assert proc_chaos["unresolved_futures"] == 0, (
        f"{proc_chaos['unresolved_futures']} futures left unresolved "
        f"under process chaos"
    )
    assert all(proc_chaos["workers_alive_at_end"]), (
        f"dead worker process(es) at end: "
        f"{proc_chaos['workers_alive_at_end']}"
    )
    assert all(
        v == proc_chaos["live_version"]
        for v in proc_chaos["policy_versions_at_end"]
    ), (
        f"respawned worker did not rejoin at the live policy version: "
        f"{proc_chaos['policy_versions_at_end']} vs "
        f"{proc_chaos['live_version']}"
    )
    assert not proc_mismatched, (
        f"{len(proc_mismatched)} non-faulted requests served different "
        f"plans under process chaos, first: {proc_mismatched[0]}"
    )
    if not args.smoke:
        assert p95_ratio <= 1.5, (
            f"chaos p95 {chaos['p95_ms']:.2f}ms is {p95_ratio:.2f}x the "
            f"no-fault baseline {baseline['p95_ms']:.2f}ms (budget: 1.5x)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
