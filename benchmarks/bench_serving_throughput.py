"""Serving-layer throughput: cold vs cached vs batched optimization.

The ROADMAP north star is an optimizer that "serves heavy traffic ...
as fast as the hardware allows". This bench measures the three serving
paths of :class:`repro.serving.OptimizerService` and asserts the two
properties the serving layer exists to provide:

- a **cache hit** answers at least 10x faster than a cold optimize
  (fingerprint lookup vs rollout + guardrail);
- a **micro-batched** 64-request burst finishes faster than the same 64
  requests inferred one by one (stacked forward passes vs per-query
  batch-1 passes).

Inference cost does not depend on the policy's weights, so an untrained
agent gives the same timings as a trained one.
"""

import time

import numpy as np
import pytest

from benchmarks.common import get_database, get_generator, print_banner
from repro.core.featurize import QueryFeaturizer
from repro.core.reporting import ascii_table
from repro.optimizer.planner import Planner
from repro.rl.ppo import PPOAgent
from repro.serving import MicroBatchEngine, OptimizerService, ServingConfig

BURST = 64
COLD_QUERIES = 12


@pytest.fixture(scope="module")
def serving_setup():
    db = get_database()
    featurizer = QueryFeaturizer(db.schema, max_relations=10)
    agent = PPOAgent(
        featurizer.state_dim, featurizer.n_pair_actions, np.random.default_rng(0)
    )
    gen = get_generator()
    rng = np.random.default_rng(123)
    burst_queries = [
        gen.generate(rng, int(rng.integers(5, 9)), name=f"burst-{i}")
        for i in range(BURST)
    ]
    cold_queries = [
        gen.generate(rng, int(rng.integers(5, 9)), name=f"cold-{i}")
        for i in range(COLD_QUERIES)
    ]
    return db, featurizer, agent, burst_queries, cold_queries


def test_cache_hit_vs_cold_optimize(benchmark, serving_setup):
    db, featurizer, agent, _, cold_queries = serving_setup
    service = OptimizerService(
        db,
        agent,
        planner=Planner(db, geqo_threshold=8),
        featurizer=featurizer,
        config=ServingConfig(regression_threshold=1.5),
    )

    def measure():
        cold_ms, hit_ms = [], []
        for query in cold_queries:
            t0 = time.perf_counter()
            first = service.optimize(query)
            cold_ms.append((time.perf_counter() - t0) * 1e3)
            t0 = time.perf_counter()
            second = service.optimize(query)
            hit_ms.append((time.perf_counter() - t0) * 1e3)
            assert first.source in ("policy", "fallback")
            assert second.source == "cache"
        return float(np.mean(cold_ms)), float(np.mean(hit_ms))

    cold, hit = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = cold / hit
    print_banner("Serving: cold optimize vs plan-cache hit")
    print(ascii_table(
        ["path", "mean latency (ms)"],
        [("cold (rollout + guardrail)", f"{cold:.3f}"),
         ("cache hit", f"{hit:.3f}"),
         ("speedup", f"{speedup:.0f}x")],
    ))
    assert speedup >= 10.0


def test_batched_beats_per_query_inference(benchmark, serving_setup):
    db, featurizer, agent, burst_queries, _ = serving_setup
    engine = MicroBatchEngine(agent.policy, featurizer, db, max_batch_size=BURST)
    # Warm the cardinality/estimator paths once so neither side pays
    # first-touch costs inside the timed region.
    engine.rollout(burst_queries[:2])

    def measure():
        t0 = time.perf_counter()
        sequential = [engine.rollout([q])[0] for q in burst_queries]
        seq_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        batched = engine.rollout(burst_queries)
        batch_s = time.perf_counter() - t0
        # Same plans either way: batching changes the schedule, not the policy.
        for solo, together in zip(sequential, batched):
            assert solo.tree.render() == together.tree.render()
        return seq_s, batch_s

    seq_s, batch_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_banner(f"Serving: {BURST}-request burst, per-query vs micro-batched")
    print(ascii_table(
        ["path", "wall time (s)", "req/s"],
        [("per-query inference", f"{seq_s:.3f}", f"{BURST / seq_s:.0f}"),
         ("micro-batched", f"{batch_s:.3f}", f"{BURST / batch_s:.0f}"),
         ("speedup", f"{seq_s / batch_s:.2f}x", "")],
    ))
    assert batch_s < seq_s


def test_service_burst_throughput(benchmark, serving_setup):
    """pytest-benchmark timing: a full service burst (cache + rollout +
    guardrail + experience) at steady state."""
    db, featurizer, agent, burst_queries, _ = serving_setup
    service = OptimizerService(
        db,
        agent,
        planner=Planner(db, geqo_threshold=8),
        featurizer=featurizer,
        config=ServingConfig(regression_threshold=1.5, max_batch_size=BURST),
    )
    service.optimize_batch(burst_queries)  # warm the cache and guardrail
    benchmark(lambda: service.optimize_batch(burst_queries))
