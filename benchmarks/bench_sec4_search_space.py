"""Section 4, "Search Space Size" — the naive full-plan agent fails.

Paper: "a naive extension of ReJOIN to cover the entire execution plan
search space yielded a model that did not out-perform random choice
even with 72 hours of training time", while join-order-only learning
converges with the same machinery.

Regenerates the comparison at a fixed episode budget:

- join-order-only agent (ReJOIN's setting),
- full-plan agent (join order + access paths + join operators +
  aggregate operators),
- a random policy in the full-plan environment (the paper's baseline).

Reproduction note (recorded in EXPERIMENTS.md): our full-plan
environment is *structured* — action masking and decision-phase
features are built in, which is closer to the paper's §5 proposals than
to its fully naive flat extension. The structured agent therefore does
eventually converge; what survives, and what this bench asserts, is the
search-space-size mechanism itself: the full-plan agent starts an order
of magnitude worse and needs substantially longer to reach any given
quality than the join-order-only agent (Kearns & Singh's convergence
scaling, the paper's [14]), while random full-plan choice stays
catastrophic throughout.
"""

import numpy as np
import pytest

from benchmarks.common import (
    SEC4_EPISODES,
    get_baseline,
    get_database,
    get_expert_planner,
    get_training_workload,
    print_banner,
)
from repro.core import JoinOrderEnv, Trainer, TrainingConfig, make_agent
from repro.core.envs import FullPlanEnv
from repro.core.reporting import ascii_table
from repro.core.rewards import CostModelReward
from repro.rl.env import rollout
from repro.rl.ppo import PPOConfig


def _workload():
    return get_training_workload().filter(lambda q: 4 <= q.n_relations <= 8)


def _train(env_cls, episodes, seed, **env_kwargs):
    db = get_database()
    baseline = get_baseline()
    rng = np.random.default_rng(seed)
    env = env_cls(
        db,
        _workload(),
        reward_source=CostModelReward(db, "relative", baseline),
        planner=get_expert_planner(),
        rng=rng,
        forbid_cross_products=False,
        **env_kwargs,
    )
    agent = make_agent(env, rng, "ppo", PPOConfig(lr=1e-3, entropy_coef=3e-3))
    trainer = Trainer(env, agent, baseline, rng, TrainingConfig(batch_size=8))
    log = trainer.run(episodes)
    return log


def _random_full_plan(episodes, seed):
    db = get_database()
    baseline = get_baseline()
    rng = np.random.default_rng(seed)
    env = FullPlanEnv(
        db,
        _workload(),
        reward_source=CostModelReward(db, "relative", baseline),
        planner=get_expert_planner(),
        rng=rng,
        forbid_cross_products=False,
    )
    relatives = []
    for _ in range(episodes):
        def random_act(state, mask, rng_, greedy):
            return int(rng_.choice(np.nonzero(mask)[0])), 0.0

        trajectory = rollout(env, random_act, rng)
        outcome = trajectory.info["outcome"]
        query = trajectory.info["query"]
        relatives.append(outcome.cost / baseline.cost(query))
    return np.asarray(relatives)


def _episodes_to_threshold(rel, threshold: float, window: int = 100):
    """First episode whose trailing-window median reaches the threshold."""
    for end in range(window, len(rel) + 1):
        if np.median(rel[end - window : end]) <= threshold:
            return end
    return None


def test_sec4_search_space_comparison(benchmark):
    def run():
        episodes = SEC4_EPISODES
        join_log = _train(JoinOrderEnv, episodes, seed=11)
        full_log = _train(FullPlanEnv, episodes, seed=11)
        random_rel = _random_full_plan(max(100, episodes // 4), seed=12)

        tail = max(50, episodes // 5)
        join_rel = join_log.relative_costs()
        full_rel = full_log.relative_costs()
        threshold = 2.5
        join_conv = _episodes_to_threshold(join_rel, threshold)
        full_conv = _episodes_to_threshold(full_rel, threshold)
        summary = {
            "join-order agent (early)": float(np.median(join_rel[:tail])),
            "join-order agent (final)": float(np.median(join_rel[-tail:])),
            "full-plan agent (early)": float(np.median(full_rel[:tail])),
            "full-plan agent (final)": float(np.median(full_rel[-tail:])),
            "random full-plan choice": float(np.median(random_rel)),
        }
        print_banner(
            "Section 4: search-space size — join-order-only vs full plan"
            f" ({episodes} episodes each)"
        )
        print(
            ascii_table(
                ["configuration", "median rel. cost"],
                [(k, f"{v:.2f}") for k, v in summary.items()],
            )
        )
        print(
            f"\nepisodes until trailing-100 median rel. cost <= {threshold}: "
            f"join-order {join_conv}, full-plan {full_conv}"
        )
        summary["join_conv"] = join_conv
        summary["full_conv"] = full_conv
        return summary

    s = benchmark.pedantic(run, rounds=1, iterations=1)

    # Random choice over the full plan space is catastrophic.
    assert s["random full-plan choice"] > 20.0
    # The full space starts an order of magnitude worse than the
    # join-order-only space with identical machinery...
    assert s["full-plan agent (early)"] > 4 * s["join-order agent (early)"]
    # ...and takes longer to reach the same quality bar (when the
    # budget suffices for the join-order agent at all).
    assert s["join_conv"] is not None
    assert s["full_conv"] is None or s["full_conv"] > s["join_conv"]
