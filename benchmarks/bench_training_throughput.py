"""Training-loop throughput: the seed's episode loop vs the vectorized engine.

The paper's optimizer only gets good over thousands of episodes, so
episodes/sec bounds every experiment. This bench trains the same agent
three ways on a 12-relation synthetic workload:

- **legacy** — the pre-vectorization baseline, reconstructed exactly:
  one episode at a time, the whole state vector re-featurized and the
  pair mask re-derived every step, cardinalities re-estimated every
  reset, and terminal plans completed and costed with no caching of any
  kind;
- **sequential** — today's env (incremental featurization, shared
  estimates, per-build cost cache) still collecting one episode at a
  time with batch-1 forward passes and no cost memo;
- **vectorized** — lockstep batched collection
  (:class:`~repro.rl.vector_env.VectorRolloutEngine`) plus the
  sub-plan cost memo shared across episodes.

It asserts the tentpole's two claims: vectorized >= 3x the legacy
baseline, and seed-matched greedy plan parity (all three paths evaluate
to bit-identical plan costs and rewards). Results land in
``BENCH_training.json`` for machines to read.

Usage::

    PYTHONPATH=src python benchmarks/bench_training_throughput.py
    PYTHONPATH=src python benchmarks/bench_training_throughput.py --smoke

``--smoke`` runs a seconds-scale configuration and skips the speedup
assertion (CI boxes make lousy stopwatches) while still exercising
every code path and emitting the JSON artifact — so the perf harness
itself cannot silently rot.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

# Allow running as a plain script without PYTHONPATH=src.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import ExpertBaseline, JoinOrderEnv, Trainer, TrainingConfig, make_agent
from repro.core.featurize import QueryFeaturizer, SlotState
from repro.core.rewards import CostModelReward
from repro.optimizer.memo import SubPlanCostMemo
from repro.optimizer.physical import (
    choose_access_path,
    choose_aggregate_operator,
    choose_join_operator,
)
from repro.optimizer.planner import Planner
from repro.rl.env import StepResult
from repro.rl.ppo import PPOConfig
from repro.workloads import make_imdb_database
from repro.workloads.generator import RandomQueryGenerator


class LegacyJoinOrderEnv(JoinOrderEnv):
    """The seed's episode loop, preserved verbatim as the baseline.

    Stateless featurization and mask derivation every step, fresh
    cardinality estimation every reset, and uncached plan completion and
    costing at the terminal — the exact work profile the vectorized
    engine was built to eliminate. Greedy behaviour is identical to the
    current env (the parity check below asserts it), only slower.
    """

    def reset(self, query=None):
        query = query or self.workload.sample(self.rng)
        self._state = SlotState(query, self.featurizer.max_relations)
        self._cards = self.db.estimator().for_query(query)
        return self._observe()

    def _observe(self):
        return (
            self.featurizer.featurize(self._state, self._cards),
            self.featurizer.pair_mask(self._state, self.forbid_cross_products),
        )

    def step(self, action):
        i, j = self.featurizer.decode_pair(action)
        self._state.join(i, j)
        if not self._state.done:
            state_vec, mask = self._observe()
            return StepResult(state_vec, mask, 0.0, False)
        tree = self._state.tree()
        query = self.query
        cost_model = self.db.cost_model()
        cards = self.db.estimator().for_query(query)

        def build(node):  # uncached cost-based completion (the seed path)
            if node.is_leaf:
                return choose_access_path(node.alias, query, self.db, cost_model, cards)
            left, right = build(node.left), build(node.right)
            preds = tuple(query.joins_between(tuple(left.aliases), tuple(right.aliases)))
            return choose_join_operator(left, right, preds, cost_model, cards)

        plan = choose_aggregate_operator(build(tree), query, cost_model, cards)
        outcome = self.reward_source._outcome_for_cost(
            cost_model.cost(plan, cards).total, query
        )
        state_vec, _ = self._observe()
        mask = np.zeros(self.n_actions, dtype=bool)
        mask[0] = True
        return StepResult(
            state_vec, mask, outcome.reward, True,
            info={"outcome": outcome, "tree": tree, "plan": plan, "query": query},
        )


def _setup(args, mode: str, db, workload, baseline):
    """A fresh (env, agent, trainer) with identical seeds for each mode."""
    rng = np.random.default_rng(args.seed)
    env_cls = LegacyJoinOrderEnv if mode == "legacy" else JoinOrderEnv
    env = env_cls(
        db,
        workload,
        reward_source=CostModelReward(db, "relative", baseline),
        featurizer=QueryFeaturizer(db.schema, max_relations=args.relations),
        planner=Planner(
            db,
            geqo_threshold=8,
            cost_memo=SubPlanCostMemo() if mode == "vectorized" else None,
        ),
        rng=rng,
        forbid_cross_products=False,
    )
    agent = make_agent(env, rng, "ppo", PPOConfig(lr=1e-3, entropy_coef=3e-3))
    config = TrainingConfig(batch_size=args.batch, vectorized=(mode == "vectorized"))
    return env, agent, Trainer(env, agent, baseline, rng, config)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--episodes", type=int, default=384)
    parser.add_argument("--batch", type=int, default=16)
    parser.add_argument("--relations", type=int, default=12)
    parser.add_argument("--queries", type=int, default=16)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="BENCH_training.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-scale run; skip the speedup assertion",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.episodes = min(args.episodes, 24)
        args.relations = min(args.relations, 6)
        args.queries = min(args.queries, 6)
        args.scale = min(args.scale, 0.02)

    print(f"building database (scale={args.scale})...")
    db = make_imdb_database(scale=args.scale, seed=42, sample_size=10_000)
    gen = RandomQueryGenerator(db)
    workload = gen.workload(
        np.random.default_rng(args.seed),
        size=args.queries,
        relation_range=(args.relations, args.relations),
        name="throughput",
    )
    baseline = ExpertBaseline(db, Planner(db, geqo_threshold=8))
    print(f"warming the expert baseline on {len(workload)} "
          f"{args.relations}-relation queries...")
    for query in workload:
        baseline.cost(query)

    # --- greedy plan parity (seed-matched, untrained agents) ----------
    queries = list(workload)
    evaluations = {
        mode: _setup(args, mode, db, workload, baseline)[2].evaluate(
            queries, greedy=True
        )
        for mode in ("legacy", "sequential", "vectorized")
    }
    reference = evaluations["legacy"]
    parity = all(
        evaluation[q.name].cost == reference[q.name].cost
        and evaluation[q.name].reward == reference[q.name].reward
        for evaluation in evaluations.values()
        for q in queries
    )
    assert parity, "greedy rollouts diverged between collection paths"
    print(f"greedy parity: {len(queries)} queries, plan costs and terminal "
          f"rewards identical across legacy/sequential/vectorized")

    # --- throughput ---------------------------------------------------
    # Episode *collection* is what the engine vectorizes, so the
    # headline episodes/sec excludes policy updates (update=False);
    # end-to-end training time — where both arms pay the identical
    # gradient work — is reported alongside for context.
    results = {}
    for mode in ("legacy", "sequential", "vectorized"):
        env, _, trainer = _setup(args, mode, db, workload, baseline)
        start = time.perf_counter()
        trainer.run(args.episodes, update=False)
        collect_s = time.perf_counter() - start
        env, _, trainer = _setup(args, mode, db, workload, baseline)
        start = time.perf_counter()
        trainer.run(args.episodes)
        train_s = time.perf_counter() - start
        results[mode] = {
            "episodes": args.episodes,
            "collect_wall_s": round(collect_s, 3),
            "episodes_per_sec": round(args.episodes / collect_s, 2),
            "train_wall_s": round(train_s, 3),
            "train_episodes_per_sec": round(args.episodes / train_s, 2),
        }
        memo = env.planner.cost_memo
        if memo is not None:
            results[mode]["cost_memo"] = memo.as_dict()
        print(f"{mode:10s}: collect {args.episodes} eps in {collect_s:.2f}s "
              f"({args.episodes / collect_s:.1f} eps/s); "
              f"train in {train_s:.2f}s ({args.episodes / train_s:.1f} eps/s)")

    speedup = (
        results["vectorized"]["episodes_per_sec"]
        / results["legacy"]["episodes_per_sec"]
    )
    train_speedup = (
        results["vectorized"]["train_episodes_per_sec"]
        / results["legacy"]["train_episodes_per_sec"]
    )
    memo_stats = results["vectorized"].get("cost_memo", {})
    print(f"collection speedup over the seed loop: {speedup:.2f}x "
          f"(end-to-end incl. identical PPO updates: {train_speedup:.2f}x; "
          f"cost-memo hit rate {memo_stats.get('costmemo_hit_rate', 0.0):.0%})")

    payload = {
        "bench": "training_throughput",
        "smoke": args.smoke,
        "relations": args.relations,
        "workload_queries": args.queries,
        "batch_size": args.batch,
        "greedy_plan_parity": parity,
        "collection_speedup": round(speedup, 2),
        "train_speedup": round(train_speedup, 2),
        "results": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not args.smoke:
        assert speedup >= 3.0, (
            f"vectorized collection only {speedup:.2f}x faster than the "
            f"seed loop; tentpole target is >=3x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
