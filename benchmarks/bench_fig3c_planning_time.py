"""Figure 3c — optimization (planning) time vs relation count.

Paper: "Counter-intuitively, ReJOIN's deep reinforcement learning
algorithm (after training) is faster than PostgreSQL's built-in join
order enumerator in many cases. Notably, the bottom-up nature of
ReJOIN's algorithm is O(n)" — Figure 3c sweeps 4-17 relations.

Regenerates the table: relations -> expert planning time (exhaustive DP
below the GEQO threshold, genetic search above) vs ReJOIN inference
time (one featurize+forward per join), and asserts the shape: the
expert's time grows steeply with the relation count while ReJOIN's
grows mildly, so ReJOIN is faster at high relation counts.
"""

import time

import numpy as np
import pytest

from benchmarks.common import (
    get_database,
    get_generator,
    get_planner,
    print_banner,
)
from repro.core.featurize import QueryFeaturizer, SlotState
from repro.core.reporting import ascii_table
from repro.rl.ppo import PPOAgent

RELATION_COUNTS = (4, 5, 6, 7, 8, 9, 10, 11, 12, 14, 17)
QUERIES_PER_COUNT = 3


@pytest.fixture(scope="module")
def sweep_queries():
    gen = get_generator()
    rng = np.random.default_rng(99)
    return {
        n: [gen.generate(rng, n, name=f"sweep-{n}-{i}") for i in range(QUERIES_PER_COUNT)]
        for n in RELATION_COUNTS
    }


@pytest.fixture(scope="module")
def inference_agent():
    """An (untrained) agent sized for 17-relation queries; inference
    cost does not depend on the weights."""
    db = get_database()
    featurizer = QueryFeaturizer(db.schema, max_relations=17)
    agent = PPOAgent(
        featurizer.state_dim, featurizer.n_pair_actions, np.random.default_rng(0)
    )
    return featurizer, agent


def _rejoin_select_join_order(featurizer, agent, db, query):
    """Pure join-order inference: featurize + forward per join step."""
    state = SlotState(query, featurizer.max_relations)
    cards = db.cardinalities(query)
    rng = np.random.default_rng(0)
    while not state.done:
        vec = featurizer.featurize(state, cards)
        mask = featurizer.pair_mask(state, forbid_cross_products=True)
        action, _ = agent.act(vec, mask, rng, greedy=True)
        i, j = featurizer.decode_pair(action)
        state.join(i, j)
    return state.tree()


def test_fig3c_planning_time_table(benchmark, sweep_queries, inference_agent):
    featurizer, agent = inference_agent
    db = get_database()
    planner = get_planner()

    def sweep():
        rows = []
        expert_ms = {}
        rejoin_ms = {}
        for n, queries in sweep_queries.items():
            expert_times = []
            rejoin_times = []
            for query in queries:
                t0 = time.perf_counter()
                planner.choose_join_order(query)
                expert_times.append((time.perf_counter() - t0) * 1e3)
                t0 = time.perf_counter()
                _rejoin_select_join_order(featurizer, agent, db, query)
                rejoin_times.append((time.perf_counter() - t0) * 1e3)
            expert_ms[n] = float(np.median(expert_times))
            rejoin_ms[n] = float(np.median(rejoin_times))
            rows.append((n, f"{expert_ms[n]:.2f}", f"{rejoin_ms[n]:.2f}"))
        print_banner("Figure 3c: join-order selection time (ms) by #relations")
        print(ascii_table(["relations", "expert (ms)", "rejoin (ms)"], rows))
        return expert_ms, rejoin_ms

    expert_ms, rejoin_ms = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lo, hi = min(RELATION_COUNTS), max(RELATION_COUNTS)
    expert_growth = expert_ms[hi] / expert_ms[lo]
    rejoin_growth = rejoin_ms[hi] / rejoin_ms[lo]
    print(
        f"\nexpert growth {lo}->{hi} relations: {expert_growth:.1f}x;"
        f" rejoin growth: {rejoin_growth:.1f}x"
    )
    # Shape: expert time grows much faster than ReJOIN inference, and
    # ReJOIN is the faster planner for the largest queries.
    assert expert_growth > 4 * rejoin_growth
    assert rejoin_ms[hi] < expert_ms[hi]


def test_fig3c_expert_planning_large_query(benchmark, sweep_queries):
    """pytest-benchmark timing: expert join search at 12 relations."""
    planner = get_planner()
    query = sweep_queries[12][0]
    benchmark(lambda: planner.choose_join_order(query))


def test_fig3c_rejoin_inference_large_query(benchmark, sweep_queries, inference_agent):
    """pytest-benchmark timing: ReJOIN inference at 12 relations."""
    featurizer, agent = inference_agent
    db = get_database()
    query = sweep_queries[12][0]
    benchmark(lambda: _rejoin_select_join_order(featurizer, agent, db, query))
