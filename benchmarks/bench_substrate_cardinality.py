"""Substrate validation — the Leis et al. [17] premise.

The paper's Section 4 argument rests on two properties of traditional
optimizers (citing "How Good Are Query Optimizers, Really?"):

1. cardinality estimates degrade as queries join more relations
   (errors compound under the independence assumption), and
2. the cost model's opinion of a plan does not always order plans the
   way true latency does ("a query with a high optimizer cost might
   outperform a query with lower optimizer cost").

This bench verifies our substrate actually exhibits both, i.e. that the
reproduction's expert is flawed in the same ways PostgreSQL is.
"""

import numpy as np
import pytest

from benchmarks.common import (
    get_database,
    get_expert_planner,
    get_generator,
    print_banner,
)
from repro.core.reporting import ascii_table
from repro.optimizer.join_search import random_join_tree
from repro.optimizer.physical import build_physical_plan


def _true_rows(db, query):
    """Execute an expert plan to get the true result cardinality."""
    planner = get_expert_planner()
    plan = planner.complete_plan(
        planner.choose_join_order(query), query, include_aggregate=False
    )
    result = db.execute_plan(plan, query, budget_ms=1e9)
    return result.rows


def test_substrate_qerror_grows_with_join_count(benchmark):
    def run():
        db = get_database()
        gen = get_generator()
        rng = np.random.default_rng(17)
        rows = []
        stats = {}
        for n in (1, 2, 3, 4, 5, 6):
            qerrors = []
            for i in range(10):
                query = gen.generate(
                    rng, n, name=f"card-{n}-{i}", aggregate_prob=0.0
                )
                cards = db.cardinalities(query)
                est = cards.rows_for_aliases(frozenset(query.relations))
                true = max(1, _true_rows(db, query))
                qerrors.append(max(est / true, true / est))
            stats[n] = {
                "median": float(np.median(qerrors)),
                "p90": float(np.percentile(qerrors, 90)),
                "max": float(np.max(qerrors)),
            }
            rows.append(
                (
                    n,
                    f"{stats[n]['median']:.1f}",
                    f"{stats[n]['p90']:.1f}",
                    f"{stats[n]['max']:.0f}",
                )
            )
        print_banner(
            "Substrate: cardinality q-error by join count (Leis et al. shape)"
        )
        print(
            ascii_table(
                ["relations", "median q-error", "p90 q-error", "max q-error"], rows
            )
        )
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    # Single-table estimates are near-exact; multi-join tails explode —
    # the signature shape of Figure 3 in Leis et al.
    assert stats[1]["median"] < 3.0
    assert max(stats[n]["p90"] for n in (4, 5, 6)) > 10 * stats[1]["p90"]
    assert max(stats[n]["max"] for n in (5, 6)) > 100


def test_substrate_cost_latency_disagreement(benchmark):
    """Among plans of *comparable* cost, the cost model sometimes orders
    them opposite to their true latency (estimates vs actuals)."""

    def run():
        db = get_database()
        gen = get_generator()
        rng = np.random.default_rng(23)
        disagreements = 0
        comparisons = 0
        for i in range(20):
            query = gen.generate(
                rng, int(rng.integers(3, 7)), name=f"dis-{i}", aggregate_prob=0.0
            )
            plans = []
            for k in range(6):
                tree = random_join_tree(query, rng)
                plan = build_physical_plan(tree, query, db)
                cost = db.plan_cost(plan, query).total
                latency = db.execute_plan(plan, query, budget_ms=1e9).latency_ms
                plans.append((cost, latency))
            for a in range(len(plans)):
                for b in range(a + 1, len(plans)):
                    ca, la = plans[a]
                    cb, lb = plans[b]
                    ratio = max(ca, cb) / min(ca, cb)
                    if ratio < 1.05 or ratio > 3.0:
                        continue  # ties and blowouts are uninformative
                    comparisons += 1
                    if (ca < cb) != (la < lb):
                        disagreements += 1
        frac = disagreements / max(comparisons, 1)
        print_banner("Substrate: cost model vs latency plan ordering")
        print(
            f"comparable plan pairs (cost within 3x): {comparisons}; ordered "
            f"differently by cost and latency: {disagreements} ({frac * 100:.0f}%)"
        )
        return frac, comparisons, disagreements

    frac, comparisons, disagreements = benchmark.pedantic(run, rounds=1, iterations=1)
    assert comparisons > 50
    # Imperfect, but far better than a coin flip.
    assert disagreements >= 1
    assert frac < 0.3
