"""Figure 3b — cost of the final plans on named JOB queries.

Paper: "the final join orderings selected by ReJOIN (after training)
are superior to PostgreSQL according to the optimizer's cost model"
for queries 1a 1b 1c 1d 8c 12b 13c 15a 16b 22c. Note the paper's broken
y-axis: on one query PostgreSQL's plan costs ~750 000-850 000 while the
others sit below 50 000 — the expert's search occasionally produces a
far-off plan on larger queries, and the learned optimizer's wins
concentrate exactly there.

Regenerates the per-query table (expert cost vs trained-ReJOIN cost).
ReJOIN plans are selected as the best of the greedy plan plus sampled
plans ranked by the cost model (inference-time sampling, standard for
learned optimizers; no execution involved). Asserts the shape: ReJOIN
is near expert cost overall and beats it outright on some queries —
including by a large factor where the expert's GEQO search went wrong.
"""

import pytest

from benchmarks.common import (
    best_of_k_plan_cost,
    get_baseline,
    get_trained_rejoin,
    print_banner,
)
from repro.core.reporting import ascii_table, geometric_mean
from repro.workloads.job import FIGURE_3B_QUERIES, job_lite_query

SAMPLES_PER_QUERY = 32


@pytest.fixture(scope="module")
def trained():
    return get_trained_rejoin()


def _eligible_queries(trained):
    max_rel = trained.env.featurizer.max_relations
    queries = [job_lite_query(name) for name in FIGURE_3B_QUERIES]
    return [q for q in queries if q.n_relations <= max_rel]


@pytest.fixture(scope="module")
def fig3b_results(trained):
    baseline = get_baseline()
    results = {}
    for query in _eligible_queries(trained):
        cost = best_of_k_plan_cost(
            trained.env, trained.agent, query, k=SAMPLES_PER_QUERY
        )
        results[query.name] = (baseline.cost(query), cost)
    return results


def test_fig3b_plan_cost_table(benchmark, fig3b_results):
    def analyze():
        rows = []
        ratios = []
        for name, (expert_cost, rejoin_cost) in fig3b_results.items():
            ratio = rejoin_cost / expert_cost
            ratios.append(ratio)
            rows.append(
                (name, f"{expert_cost:.0f}", f"{rejoin_cost:.0f}", f"{ratio:.2f}x")
            )
        print_banner("Figure 3b: cost of final plans (expert vs trained ReJOIN)")
        print(
            ascii_table(["query", "expert cost", "rejoin cost", "rejoin/expert"], rows)
        )
        gmean = geometric_mean(ratios)
        wins = sum(1 for r in ratios if r <= 1.0 + 1e-9)
        print(
            f"\ngeometric-mean ratio: {gmean:.2f}   queries at-or-below expert: "
            f"{wins}/{len(ratios)}"
        )
        return gmean, wins, len(ratios)

    gmean, wins, total = benchmark.pedantic(analyze, rounds=1, iterations=1)
    assert gmean < 1.3, "trained agent should be near expert cost overall"
    assert wins >= 1, "should beat the expert outright on at least one query"


def test_fig3b_outright_win_exists(benchmark, fig3b_results):
    """The paper's headline: on some queries the learned optimizer's
    plan costs strictly less than the expert's own choice.

    (The paper's broken-axis outlier — PostgreSQL catastrophically worse
    on one query — depends on how badly the expert's randomized search
    can miss; our GEQO is usually only mildly suboptimal at this scale,
    so the asserted shape is the outright win itself, not its size.)"""

    def best_ratio():
        return min(r / e for e, r in fig3b_results.values())

    best = benchmark.pedantic(best_ratio, rounds=1, iterations=1)
    print(f"\nbest rejoin/expert ratio across Figure 3b queries: {best:.3f}")
    assert best < 1.0, "expected an outright win on at least one query"


def test_fig3b_inference_cost(benchmark, trained):
    """Plan-selection latency (greedy + sampled candidates) per query."""
    query = _eligible_queries(trained)[0]

    def plan_one():
        best_of_k_plan_cost(trained.env, trained.agent, query, k=SAMPLES_PER_QUERY)

    benchmark.pedantic(plan_one, rounds=3, iterations=1)
