"""The JOB-lite database: an IMDB-shaped schema with synthetic data.

Seventeen relations mirroring the IMDB snapshot used by the Join Order
Benchmark: a central ``title`` fact table, satellite fact tables
(``cast_info``, ``movie_info``, ``movie_companies``, ``movie_keyword``,
``movie_info_idx``, ``movie_link``, ``aka_name``) and small dimension
tables (``kind_type``, ``info_type``, ``company_type``, ``role_type``,
``link_type``, ``keyword``, ``company_name``, ``name``, ``char_name``).

The data distributions carry the properties that make IMDB a hard
optimization target:

- Zipf-skewed foreign keys (a few famous movies/people attract most
  facts),
- correlated columns (``title.votes`` tracks ``production_year``;
  ``movie_info.info_val`` tracks ``info_type_id``), which break the
  estimator's independence assumption,
- occasional NULLs (``cast_info.person_role_id``), matching IMDB.

String-typed IMDB attributes are dictionary-encoded integers here (the
workloads only ever compare them for equality/membership, so encoding
preserves all query semantics).
"""

from __future__ import annotations

from typing import List

from repro.db.datagen import ColumnSpec, TableSpec
from repro.db.engine import Database
from repro.db.schema import DataType, ForeignKey

__all__ = ["imdb_specs", "imdb_foreign_keys", "make_imdb_database", "TABLE_ALIASES"]

#: Conventional JOB aliases for each table (used by templates and docs).
TABLE_ALIASES = {
    "title": "t",
    "kind_type": "kt",
    "info_type": "it",
    "company_type": "ct",
    "role_type": "rt",
    "link_type": "lt",
    "keyword": "k",
    "company_name": "cn",
    "name": "n",
    "char_name": "chn",
    "aka_name": "an",
    "cast_info": "ci",
    "movie_companies": "mc",
    "movie_info": "mi",
    "movie_info_idx": "mi_idx",
    "movie_keyword": "mk",
    "movie_link": "ml",
}


def imdb_specs(scale: float = 1.0) -> List[TableSpec]:
    """Table specs for the JOB-lite database at the given scale factor.

    ``scale=1.0`` is roughly 1/100 of real IMDB row counts — large enough
    for meaningful skew and real index/seq-scan tradeoffs, small enough
    that latency-reward experiments run in seconds.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")

    def rows(n: int) -> int:
        return max(20, int(n * scale))

    return [
        # --- dimensions (fixed size: genuinely tiny lookup tables) -----
        TableSpec(
            "kind_type",
            n_rows=7,
            columns=[ColumnSpec("id", primary_key=True), ColumnSpec("kind", distinct=7)],
        ),
        TableSpec(
            "info_type",
            n_rows=40,
            columns=[ColumnSpec("id", primary_key=True), ColumnSpec("info", distinct=40)],
        ),
        TableSpec(
            "company_type",
            n_rows=4,
            columns=[ColumnSpec("id", primary_key=True), ColumnSpec("kind", distinct=4)],
        ),
        TableSpec(
            "role_type",
            n_rows=12,
            columns=[ColumnSpec("id", primary_key=True), ColumnSpec("role", distinct=12)],
        ),
        TableSpec(
            "link_type",
            n_rows=18,
            columns=[ColumnSpec("id", primary_key=True), ColumnSpec("link", distinct=18)],
        ),
        TableSpec(
            "keyword",
            n_rows=rows(8000),
            columns=[
                ColumnSpec("id", primary_key=True),
                ColumnSpec("keyword", dtype=DataType.STR, distinct=rows(8000)),
                ColumnSpec("phonetic_code", distinct=300, skew=0.8),
            ],
        ),
        TableSpec(
            "company_name",
            n_rows=rows(6000),
            columns=[
                ColumnSpec("id", primary_key=True),
                ColumnSpec("name", dtype=DataType.STR, distinct=rows(6000)),
                ColumnSpec("country_code", distinct=120, skew=1.4),
            ],
        ),
        TableSpec(
            "name",
            n_rows=rows(30000),
            columns=[
                ColumnSpec("id", primary_key=True),
                ColumnSpec("name", dtype=DataType.STR, distinct=rows(30000)),
                ColumnSpec("gender", distinct=3, skew=0.6),
            ],
        ),
        TableSpec(
            "char_name",
            n_rows=rows(15000),
            columns=[
                ColumnSpec("id", primary_key=True),
                ColumnSpec("name", dtype=DataType.STR, distinct=rows(15000)),
            ],
        ),
        # --- facts ------------------------------------------------------
        TableSpec(
            "title",
            n_rows=rows(25000),
            columns=[
                ColumnSpec("id", primary_key=True),
                ColumnSpec("kind_id", fk_to="kind_type.id", skew=1.2),
                ColumnSpec("production_year", distinct=140, skew=0.9),
                # votes correlates with production_year: recent movies get
                # more votes — an independence-assumption trap.
                ColumnSpec(
                    "votes", distinct=1000, correlated_with="production_year",
                    noise_frac=0.15,
                ),
                ColumnSpec("episode_nr", distinct=100, skew=1.5, null_frac=0.4),
            ],
        ),
        TableSpec(
            "aka_name",
            n_rows=rows(10000),
            columns=[
                ColumnSpec("id", primary_key=True),
                ColumnSpec("person_id", fk_to="name.id", skew=0.9),
                ColumnSpec("name", dtype=DataType.STR, distinct=rows(10000)),
            ],
        ),
        TableSpec(
            "cast_info",
            n_rows=rows(90000),
            columns=[
                ColumnSpec("id", primary_key=True),
                ColumnSpec("person_id", fk_to="name.id", skew=1.0),
                ColumnSpec("movie_id", fk_to="title.id", skew=1.1),
                ColumnSpec(
                    "person_role_id", fk_to="char_name.id", skew=0.8, null_frac=0.3
                ),
                ColumnSpec("role_id", fk_to="role_type.id", skew=1.3),
                ColumnSpec("nr_order", distinct=50, skew=1.0, null_frac=0.2),
            ],
        ),
        TableSpec(
            "movie_companies",
            n_rows=rows(30000),
            columns=[
                ColumnSpec("id", primary_key=True),
                ColumnSpec("movie_id", fk_to="title.id", skew=0.9),
                ColumnSpec("company_id", fk_to="company_name.id", skew=1.2),
                ColumnSpec("company_type_id", fk_to="company_type.id", skew=0.7),
            ],
        ),
        TableSpec(
            "movie_info",
            n_rows=rows(50000),
            columns=[
                ColumnSpec("id", primary_key=True),
                ColumnSpec("movie_id", fk_to="title.id", skew=1.0),
                ColumnSpec("info_type_id", fk_to="info_type.id", skew=1.1),
                # info values depend on the info type (runtime vs genre vs
                # rating all live in one column in IMDB) — correlated.
                ColumnSpec(
                    "info_val", distinct=500, correlated_with="info_type_id",
                    noise_frac=0.2,
                ),
            ],
        ),
        TableSpec(
            "movie_info_idx",
            n_rows=rows(15000),
            columns=[
                ColumnSpec("id", primary_key=True),
                ColumnSpec("movie_id", fk_to="title.id", skew=0.8),
                ColumnSpec("info_type_id", fk_to="info_type.id", skew=1.4),
                ColumnSpec("info_val", distinct=100, skew=0.5),
            ],
        ),
        TableSpec(
            "movie_keyword",
            n_rows=rows(40000),
            columns=[
                ColumnSpec("id", primary_key=True),
                ColumnSpec("movie_id", fk_to="title.id", skew=1.2),
                ColumnSpec("keyword_id", fk_to="keyword.id", skew=1.3),
            ],
        ),
        TableSpec(
            "movie_link",
            n_rows=rows(3000),
            columns=[
                ColumnSpec("id", primary_key=True),
                ColumnSpec("movie_id", fk_to="title.id", skew=0.7),
                ColumnSpec("linked_movie_id", fk_to="title.id", skew=0.7),
                ColumnSpec("link_type_id", fk_to="link_type.id", skew=0.8),
            ],
        ),
    ]


def imdb_foreign_keys() -> List[ForeignKey]:
    """All FK edges of the JOB-lite join graph."""
    edges = [
        ("title", "kind_id", "kind_type", "id"),
        ("aka_name", "person_id", "name", "id"),
        ("cast_info", "person_id", "name", "id"),
        ("cast_info", "movie_id", "title", "id"),
        ("cast_info", "person_role_id", "char_name", "id"),
        ("cast_info", "role_id", "role_type", "id"),
        ("movie_companies", "movie_id", "title", "id"),
        ("movie_companies", "company_id", "company_name", "id"),
        ("movie_companies", "company_type_id", "company_type", "id"),
        ("movie_info", "movie_id", "title", "id"),
        ("movie_info", "info_type_id", "info_type", "id"),
        ("movie_info_idx", "movie_id", "title", "id"),
        ("movie_info_idx", "info_type_id", "info_type", "id"),
        ("movie_keyword", "movie_id", "title", "id"),
        ("movie_keyword", "keyword_id", "keyword", "id"),
        ("movie_link", "movie_id", "title", "id"),
        ("movie_link", "linked_movie_id", "title", "id"),
        ("movie_link", "link_type_id", "link_type", "id"),
    ]
    return [ForeignKey(*edge) for edge in edges]


def make_imdb_database(
    scale: float = 1.0,
    seed: int = 42,
    sample_size: int = 30_000,
) -> Database:
    """Generate, analyze, and index the JOB-lite database."""
    return Database.from_specs(
        imdb_specs(scale),
        imdb_foreign_keys(),
        seed=seed,
        sample_size=sample_size,
    )
