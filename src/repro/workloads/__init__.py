"""Workloads: the JOB-lite benchmark and random query generation.

The paper evaluates on the Join Order Benchmark (JOB) over IMDB — chosen
because IMDB's skew and cross-column correlations make cardinality
estimation genuinely hard (Leis et al. [17]). This package reproduces
the *structural* properties of that setup at laptop scale:

- :mod:`repro.workloads.imdb` — an IMDB-shaped 17-relation schema with
  FK-consistent, Zipf-skewed, correlated synthetic data;
- :mod:`repro.workloads.job` — JOB-style named query templates
  (``1a`` … ``22d``), including the ten queries of Figure 3b;
- :mod:`repro.workloads.generator` — random connected join queries of
  any relation count (used for training mixes, the Figure 3c sweep, and
  the low-relation-count curricula of §5.3.2).
"""

from repro.workloads.generator import RandomQueryGenerator, Workload
from repro.workloads.imdb import imdb_foreign_keys, imdb_specs, make_imdb_database
from repro.workloads.job import (
    FIGURE_3B_QUERIES,
    job_lite_queries,
    job_lite_query,
    job_lite_workload,
)

__all__ = [
    "FIGURE_3B_QUERIES",
    "RandomQueryGenerator",
    "Workload",
    "imdb_foreign_keys",
    "imdb_specs",
    "job_lite_queries",
    "job_lite_query",
    "job_lite_workload",
    "make_imdb_database",
]
