"""Random query generation and workload containers.

The generator grows connected join queries of an exact relation count by
random walks over the schema's FK graph — the mechanism behind three of
the paper's needs:

- large training mixes beyond the fixed templates (§3's "continuously
  learning as queries are sent"),
- the relation-count sweep of Figure 3c (4-17 relations),
- low-relation-count queries for the *relations* curriculum, which the
  paper notes real workloads lack ("JOB has none"; queries "could be
  synthetically generated" — §5.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.db.engine import Database
from repro.db.predicates import (
    BetweenPredicate,
    ColumnRef,
    CompareOp,
    Comparison,
    InPredicate,
    JoinPredicate,
    Predicate,
)
from repro.db.query import AggregateSpec, Query
from repro.db.schema import DatabaseSchema

__all__ = ["Workload", "RandomQueryGenerator"]


@dataclass
class Workload:
    """An ordered, named collection of queries."""

    name: str
    queries: List[Query]

    def __post_init__(self) -> None:
        names = [q.name for q in self.queries]
        if len(set(names)) != len(names):
            raise ValueError(f"workload {self.name}: duplicate query names")
        self._by_name: Dict[str, Query] = {q.name: q for q in self.queries}

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self.queries)

    def __getitem__(self, key: int | str) -> Query:
        if isinstance(key, str):
            return self._by_name[key]
        return self.queries[key]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def sample(self, rng: np.random.Generator) -> Query:
        return self.queries[int(rng.integers(len(self.queries)))]

    def split(
        self, eval_fraction: float, rng: np.random.Generator
    ) -> Tuple["Workload", "Workload"]:
        """Random train/eval split (eval gets ``eval_fraction``)."""
        if not 0 < eval_fraction < 1:
            raise ValueError("eval_fraction must be in (0, 1)")
        order = rng.permutation(len(self.queries))
        n_eval = max(1, int(len(self.queries) * eval_fraction))
        eval_idx = set(order[:n_eval].tolist())
        train = [q for i, q in enumerate(self.queries) if i not in eval_idx]
        evals = [q for i, q in enumerate(self.queries) if i in eval_idx]
        return (
            Workload(f"{self.name}-train", train),
            Workload(f"{self.name}-eval", evals),
        )

    def filter(self, predicate) -> "Workload":
        return Workload(self.name, [q for q in self.queries if predicate(q)])

    def relation_counts(self) -> List[int]:
        return sorted({q.n_relations for q in self.queries})


class RandomQueryGenerator:
    """Generates random connected SPJ(+aggregate) queries over a schema.

    Needs the :class:`~repro.db.engine.Database` (not just the schema) so
    predicate literals are drawn from real column statistics.
    """

    def __init__(self, db: Database) -> None:
        self.db = db
        self.schema: DatabaseSchema = db.schema
        self._fk_columns = {
            (fk.src_table, fk.src_column) for fk in self.schema.foreign_keys
        } | {(fk.dst_table, fk.dst_column) for fk in self.schema.foreign_keys}
        # Attribute columns (non-PK, non-FK) are predicate candidates.
        self._attr_columns: Dict[str, List[str]] = {}
        for name, table in self.schema.tables.items():
            attrs = [
                c.name
                for c in table.columns
                if c.name != table.primary_key
                and (name, c.name) not in self._fk_columns
            ]
            self._attr_columns[name] = attrs
        self._edges = list(self.schema.foreign_keys)
        self._edges_by_table: Dict[str, List] = {}
        for fk in self._edges:
            self._edges_by_table.setdefault(fk.src_table, []).append(fk)
            self._edges_by_table.setdefault(fk.dst_table, []).append(fk)

    # ------------------------------------------------------------------
    def generate(
        self,
        rng: np.random.Generator,
        n_relations: int,
        name: str | None = None,
        predicates_per_query: Tuple[int, int] = (1, 4),
        aggregate_prob: float = 0.8,
        group_by_prob: float = 0.2,
    ) -> Query:
        """One random connected query with exactly ``n_relations`` aliases."""
        if n_relations < 1:
            raise ValueError("n_relations must be at least 1")
        relations, joins = self._grow_join_tree(rng, n_relations)
        selections = self._random_selections(rng, relations, predicates_per_query)
        group_by: List[ColumnRef] = []
        aggregates: List[AggregateSpec] = []
        if rng.uniform() < aggregate_prob:
            aggregates.append(AggregateSpec("count", None))
            agg_ref = self._random_attr_ref(rng, relations)
            if agg_ref is not None:
                aggregates.append(AggregateSpec("min", agg_ref))
            if rng.uniform() < group_by_prob:
                ref = self._random_attr_ref(rng, relations)
                if ref is not None:
                    group_by.append(ref)
        return Query(
            name=name or f"rand-{rng.integers(1 << 31)}",
            relations=relations,
            selections=selections,
            joins=joins,
            group_by=group_by,
            aggregates=aggregates,
        )

    def workload(
        self,
        rng: np.random.Generator,
        size: int,
        relation_range: Tuple[int, int] = (3, 8),
        name: str = "random",
        **kwargs,
    ) -> Workload:
        """A workload of ``size`` random queries with uniformly drawn
        relation counts in ``relation_range`` (inclusive)."""
        lo, hi = relation_range
        if lo > hi:
            raise ValueError("relation_range must be (lo, hi) with lo <= hi")
        queries = [
            self.generate(
                rng,
                int(rng.integers(lo, hi + 1)),
                name=f"{name}-{i}",
                **kwargs,
            )
            for i in range(size)
        ]
        return Workload(name, queries)

    # ------------------------------------------------------------------
    def _grow_join_tree(
        self, rng: np.random.Generator, n_relations: int
    ) -> Tuple[Dict[str, str], List[JoinPredicate]]:
        """Random connected alias graph with exactly n_relations aliases.

        Repeated tables get fresh aliases (self-joins, like JOB's
        multiple ``info_type`` instances).
        """
        # Start from a table with FK edges so growth is possible.
        candidates = [t for t in self.schema.table_names if self._edges_by_table.get(t)]
        if not candidates:
            candidates = self.schema.table_names
        start = candidates[int(rng.integers(len(candidates)))]
        alias_counter: Dict[str, int] = {}

        def fresh_alias(table: str) -> str:
            alias_counter[table] = alias_counter.get(table, 0) + 1
            count = alias_counter[table]
            base = "".join(w[0] for w in table.split("_")) or table[:2]
            return base if count == 1 else f"{base}{count}"

        relations: Dict[str, str] = {}
        start_alias = fresh_alias(start)
        relations[start_alias] = start
        joins: List[JoinPredicate] = []
        while len(relations) < n_relations:
            grown = False
            aliases = sorted(relations)
            order = rng.permutation(len(aliases))
            for idx in order:
                alias = aliases[idx]
                table = relations[alias]
                edges = self._edges_by_table.get(table, [])
                if not edges:
                    continue
                fk = edges[int(rng.integers(len(edges)))]
                if fk.src_table == table:
                    new_table, my_col, new_col = fk.dst_table, fk.src_column, fk.dst_column
                else:
                    new_table, my_col, new_col = fk.src_table, fk.dst_column, fk.src_column
                new_alias = fresh_alias(new_table)
                relations[new_alias] = new_table
                joins.append(
                    JoinPredicate(ColumnRef(alias, my_col), ColumnRef(new_alias, new_col))
                )
                grown = True
                break
            if not grown:
                raise RuntimeError(
                    f"cannot grow a {n_relations}-relation query from {start!r}: "
                    "join graph too sparse"
                )
        return relations, joins

    def _random_selections(
        self,
        rng: np.random.Generator,
        relations: Dict[str, str],
        predicates_per_query: Tuple[int, int],
    ) -> List[Predicate]:
        lo, hi = predicates_per_query
        n_preds = int(rng.integers(lo, hi + 1))
        slots: List[Tuple[str, str]] = []
        for alias in sorted(relations):
            for column in self._attr_columns.get(relations[alias], []):
                slots.append((alias, column))
        if not slots:
            return []
        chosen = rng.choice(len(slots), size=min(n_preds, len(slots)), replace=False)
        return [
            self._random_predicate(rng, relations, *slots[int(i)]) for i in chosen
        ]

    def _random_predicate(
        self,
        rng: np.random.Generator,
        relations: Dict[str, str],
        alias: str,
        column: str,
    ) -> Predicate:
        table = relations[alias]
        stats = self.db.stats[table].columns[column]
        lo, hi = stats.min_value, stats.max_value
        ref = ColumnRef(alias, column)
        kind = rng.choice(["eq", "range", "in", "gt"])
        if hi <= lo:
            kind = "eq"
        if kind == "eq":
            return Comparison(ref, CompareOp.EQ, float(int(rng.uniform(lo, hi + 1))))
        if kind == "gt":
            return Comparison(ref, CompareOp.GT, float(int(rng.uniform(lo, hi))))
        if kind == "range":
            a = rng.uniform(lo, hi)
            b = rng.uniform(lo, hi)
            return BetweenPredicate(ref, float(int(min(a, b))), float(int(max(a, b))))
        count = int(rng.integers(2, 5))
        values = sorted({int(rng.uniform(lo, hi + 1)) for _ in range(count)})
        return InPredicate(ref, tuple(float(v) for v in values))

    def _random_attr_ref(
        self, rng: np.random.Generator, relations: Dict[str, str]
    ) -> ColumnRef | None:
        slots = [
            (alias, column)
            for alias in sorted(relations)
            for column in self._attr_columns.get(relations[alias], [])
        ]
        if not slots:
            return None
        alias, column = slots[int(rng.integers(len(slots)))]
        return ColumnRef(alias, column)
