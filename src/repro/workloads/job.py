"""JOB-lite: named query templates over the JOB-lite database.

Twenty-two template families spanning 4-11 relations, each with four
literal variants ``a``-``d`` — the JOB naming scheme (``1a`` … ``22d``,
88 queries). The ten queries of the paper's Figure 3b (1a 1b 1c 1d 8c
12b 13c 15a 16b 22c) all exist here.

Like JOB, every query is a conjunctive equi-join block with selection
predicates on attribute columns and a ``MIN``-style aggregate; a few
families add a ``GROUP BY`` so the aggregate-operator pipeline stage
(paper Figure 8) has a real choice to make. Variant literals are drawn
deterministically from a per-(family, variant) seed, so the workload is
identical on every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.db.predicates import (
    BetweenPredicate,
    ColumnRef,
    CompareOp,
    Comparison,
    InPredicate,
    JoinPredicate,
    Predicate,
)
from repro.db.query import AggregateSpec, Query
from repro.workloads.generator import Workload

__all__ = [
    "FIGURE_3B_QUERIES",
    "VARIANTS",
    "job_lite_queries",
    "job_lite_query",
    "job_lite_workload",
    "FAMILIES",
]

VARIANTS = ("a", "b", "c", "d")

#: The queries shown in the paper's Figure 3b.
FIGURE_3B_QUERIES = ("1a", "1b", "1c", "1d", "8c", "12b", "13c", "15a", "16b", "22c")

#: Value domains for predicate columns: (lo, hi) inclusive.
_DOMAINS: Dict[Tuple[str, str], Tuple[int, int]] = {
    ("title", "production_year"): (0, 139),
    ("title", "votes"): (0, 999),
    ("title", "episode_nr"): (0, 99),
    ("kind_type", "kind"): (0, 6),
    ("info_type", "info"): (0, 39),
    ("company_type", "kind"): (0, 3),
    ("role_type", "role"): (0, 11),
    ("link_type", "link"): (0, 17),
    ("keyword", "phonetic_code"): (0, 299),
    ("company_name", "country_code"): (0, 119),
    ("name", "gender"): (0, 2),
    ("cast_info", "nr_order"): (0, 49),
    ("movie_info", "info_val"): (0, 499),
    ("movie_info_idx", "info_val"): (0, 99),
}


@dataclass(frozen=True)
class _Slot:
    """A predicate slot: filled with a literal per variant."""

    alias: str
    table: str
    column: str
    kind: str  # 'eq' | 'range' | 'in' | 'gt' | 'lt'
    #: Slots beyond the first `required` ones are included ~85% of the time.
    optional: bool = False


@dataclass(frozen=True)
class _Family:
    number: int
    relations: Tuple[Tuple[str, str], ...]  # (alias, table)
    joins: Tuple[Tuple[str, str, str, str], ...]  # (alias, col, alias, col)
    slots: Tuple[_Slot, ...]
    aggregates: Tuple[Tuple[str, str | None, str | None], ...] = (
        ("min", "t", "production_year"),
    )
    group_by: Tuple[Tuple[str, str], ...] = ()

    @property
    def n_relations(self) -> int:
        return len(self.relations)


def _s(alias: str, table: str, column: str, kind: str, optional: bool = False) -> _Slot:
    return _Slot(alias, table, column, kind, optional)


# Join-edge shorthand used below.
_T = ("t", "title")
_KT = ("kt", "kind_type")
_IT = ("it", "info_type")
_CT = ("ct", "company_type")
_RT = ("rt", "role_type")
_LT = ("lt", "link_type")
_K = ("k", "keyword")
_CN = ("cn", "company_name")
_N = ("n", "name")
_CHN = ("chn", "char_name")
_AN = ("an", "aka_name")
_CI = ("ci", "cast_info")
_MC = ("mc", "movie_companies")
_MI = ("mi", "movie_info")
_MIX = ("mi_idx", "movie_info_idx")
_MK = ("mk", "movie_keyword")
_ML = ("ml", "movie_link")

# FK edges by alias (readable shorthand for joins).
_J_MC_T = ("mc", "movie_id", "t", "id")
_J_MC_CN = ("mc", "company_id", "cn", "id")
_J_MC_CT = ("mc", "company_type_id", "ct", "id")
_J_MI_T = ("mi", "movie_id", "t", "id")
_J_MI_IT = ("mi", "info_type_id", "it", "id")
_J_MIX_T = ("mi_idx", "movie_id", "t", "id")
_J_MIX_IT = ("mi_idx", "info_type_id", "it", "id")
_J_MK_T = ("mk", "movie_id", "t", "id")
_J_MK_K = ("mk", "keyword_id", "k", "id")
_J_CI_T = ("ci", "movie_id", "t", "id")
_J_CI_N = ("ci", "person_id", "n", "id")
_J_CI_CHN = ("ci", "person_role_id", "chn", "id")
_J_CI_RT = ("ci", "role_id", "rt", "id")
_J_T_KT = ("t", "kind_id", "kt", "id")
_J_AN_N = ("an", "person_id", "n", "id")
_J_ML_T = ("ml", "movie_id", "t", "id")
_J_ML_LT = ("ml", "link_type_id", "lt", "id")


FAMILIES: Tuple[_Family, ...] = (
    _Family(
        1,
        (_T, _MC, _CT, _MIX, _IT),
        (_J_MC_T, _J_MC_CT, _J_MIX_T, _J_MIX_IT),
        (
            _s("ct", "company_type", "kind", "eq"),
            _s("it", "info_type", "info", "eq"),
            _s("t", "title", "production_year", "range", optional=True),
        ),
    ),
    _Family(
        2,
        (_CN, _MC, _T, _MK, _K),
        (_J_MC_T, _J_MC_CN, _J_MK_T, _J_MK_K),
        (
            _s("cn", "company_name", "country_code", "eq"),
            _s("k", "keyword", "phonetic_code", "eq"),
        ),
    ),
    _Family(
        3,
        (_K, _MI, _MK, _T),
        (_J_MK_K, _J_MK_T, _J_MI_T),
        (
            _s("k", "keyword", "phonetic_code", "in"),
            _s("mi", "movie_info", "info_val", "range"),
            _s("t", "title", "production_year", "gt", optional=True),
        ),
        group_by=(("k", "phonetic_code"),),
        aggregates=(("min", "t", "production_year"), ("count", None, None)),
    ),
    _Family(
        4,
        (_IT, _K, _MIX, _MK, _T),
        (_J_MIX_IT, _J_MIX_T, _J_MK_T, _J_MK_K),
        (
            _s("it", "info_type", "info", "eq"),
            _s("k", "keyword", "phonetic_code", "eq"),
            _s("mi_idx", "movie_info_idx", "info_val", "gt"),
        ),
        aggregates=(("min", "mi_idx", "info_val"),),
    ),
    _Family(
        5,
        (_CT, _IT, _MC, _MI, _T),
        (_J_MC_T, _J_MC_CT, _J_MI_T, _J_MI_IT),
        (
            _s("ct", "company_type", "kind", "eq"),
            _s("mi", "movie_info", "info_val", "range"),
            _s("t", "title", "production_year", "range", optional=True),
        ),
    ),
    _Family(
        6,
        (_CI, _K, _MK, _N, _T),
        (_J_CI_T, _J_CI_N, _J_MK_T, _J_MK_K),
        (
            _s("k", "keyword", "phonetic_code", "eq"),
            _s("n", "name", "gender", "eq"),
            _s("t", "title", "production_year", "range", optional=True),
        ),
        group_by=(("n", "gender"),),
        aggregates=(("count", None, None),),
    ),
    _Family(
        7,
        (_AN, _CI, _LT, _ML, _N, _T, _KT),
        (_J_AN_N, _J_CI_N, _J_CI_T, _J_ML_T, _J_ML_LT, _J_T_KT),
        (
            _s("n", "name", "gender", "eq"),
            _s("lt", "link_type", "link", "eq"),
            _s("kt", "kind_type", "kind", "eq"),
            _s("t", "title", "production_year", "range", optional=True),
        ),
    ),
    _Family(
        8,
        (_CI, _CN, _MC, _N, _RT, _T),
        (_J_CI_T, _J_CI_N, _J_CI_RT, _J_MC_T, _J_MC_CN),
        (
            _s("cn", "company_name", "country_code", "eq"),
            _s("rt", "role_type", "role", "eq"),
            _s("n", "name", "gender", "eq", optional=True),
        ),
    ),
    _Family(
        9,
        (_AN, _CHN, _CI, _CN, _MC, _N, _RT, _T),
        (_J_AN_N, _J_CI_CHN, _J_CI_T, _J_CI_N, _J_CI_RT, _J_MC_T, _J_MC_CN),
        (
            _s("cn", "company_name", "country_code", "eq"),
            _s("rt", "role_type", "role", "eq"),
            _s("n", "name", "gender", "eq"),
            _s("t", "title", "production_year", "range", optional=True),
        ),
    ),
    _Family(
        10,
        (_CHN, _CI, _CN, _CT, _MC, _RT, _T),
        (_J_CI_CHN, _J_CI_RT, _J_CI_T, _J_MC_T, _J_MC_CN, _J_MC_CT),
        (
            _s("rt", "role_type", "role", "eq"),
            _s("cn", "company_name", "country_code", "eq"),
            _s("t", "title", "production_year", "gt"),
            _s("ct", "company_type", "kind", "eq", optional=True),
        ),
    ),
    _Family(
        11,
        (_CN, _CT, _K, _LT, _MC, _MK, _ML, _T),
        (_J_MC_T, _J_MC_CN, _J_MC_CT, _J_MK_T, _J_MK_K, _J_ML_T, _J_ML_LT),
        (
            _s("cn", "company_name", "country_code", "eq"),
            _s("lt", "link_type", "link", "in"),
            _s("k", "keyword", "phonetic_code", "eq"),
            _s("ct", "company_type", "kind", "eq", optional=True),
        ),
    ),
    _Family(
        12,
        (_CN, _CT, ("it1", "info_type"), ("it2", "info_type"), _MC, _MI, _MIX, _T),
        (
            ("mi", "info_type_id", "it1", "id"),
            ("mi_idx", "info_type_id", "it2", "id"),
            _J_MI_T,
            _J_MIX_T,
            _J_MC_T,
            _J_MC_CN,
            _J_MC_CT,
        ),
        (
            _s("it1", "info_type", "info", "eq"),
            _s("it2", "info_type", "info", "eq"),
            _s("cn", "company_name", "country_code", "eq"),
            _s("mi", "movie_info", "info_val", "range", optional=True),
            _s("mi_idx", "movie_info_idx", "info_val", "gt", optional=True),
            _s("t", "title", "production_year", "range", optional=True),
        ),
    ),
    _Family(
        13,
        (
            _CN,
            _CT,
            ("it1", "info_type"),
            ("it2", "info_type"),
            _KT,
            _MC,
            _MI,
            _MIX,
            _T,
        ),
        (
            ("mi", "info_type_id", "it1", "id"),
            ("mi_idx", "info_type_id", "it2", "id"),
            _J_MI_T,
            _J_MIX_T,
            _J_MC_T,
            _J_MC_CN,
            _J_MC_CT,
            _J_T_KT,
        ),
        (
            _s("it1", "info_type", "info", "eq"),
            _s("it2", "info_type", "info", "eq"),
            _s("cn", "company_name", "country_code", "eq"),
            _s("kt", "kind_type", "kind", "eq"),
            _s("mi", "movie_info", "info_val", "range", optional=True),
        ),
        aggregates=(("min", "mi_idx", "info_val"), ("min", "t", "production_year")),
    ),
    _Family(
        14,
        (("it1", "info_type"), ("it2", "info_type"), _K, _KT, _MI, _MIX, _MK, _T),
        (
            ("mi", "info_type_id", "it1", "id"),
            ("mi_idx", "info_type_id", "it2", "id"),
            _J_MI_T,
            _J_MIX_T,
            _J_MK_T,
            _J_MK_K,
            _J_T_KT,
        ),
        (
            _s("kt", "kind_type", "kind", "eq"),
            _s("k", "keyword", "phonetic_code", "in"),
            _s("mi", "movie_info", "info_val", "range"),
            _s("mi_idx", "movie_info_idx", "info_val", "lt", optional=True),
            _s("t", "title", "production_year", "range", optional=True),
        ),
    ),
    _Family(
        15,
        (_CN, _IT, _K, _MC, _MI, _MK, _T),
        (_J_MC_T, _J_MC_CN, _J_MI_T, _J_MI_IT, _J_MK_T, _J_MK_K),
        (
            _s("cn", "company_name", "country_code", "eq"),
            _s("it", "info_type", "info", "eq"),
            _s("k", "keyword", "phonetic_code", "eq"),
            _s("mi", "movie_info", "info_val", "range", optional=True),
            _s("t", "title", "production_year", "gt", optional=True),
        ),
    ),
    _Family(
        16,
        (_AN, _CI, _CN, _K, _MC, _MK, _N, _T),
        (_J_AN_N, _J_CI_N, _J_CI_T, _J_MC_T, _J_MC_CN, _J_MK_T, _J_MK_K),
        (
            _s("cn", "company_name", "country_code", "eq"),
            _s("k", "keyword", "phonetic_code", "eq"),
        ),
        group_by=(("cn", "country_code"),),
        aggregates=(("count", None, None), ("min", "t", "production_year")),
    ),
    _Family(
        17,
        (_CI, _CN, _K, _MC, _MK, _N, _T),
        (_J_CI_N, _J_CI_T, _J_MC_T, _J_MC_CN, _J_MK_T, _J_MK_K),
        (
            _s("cn", "company_name", "country_code", "eq"),
            _s("k", "keyword", "phonetic_code", "in"),
            _s("n", "name", "gender", "eq"),
        ),
    ),
    _Family(
        18,
        (_CI, ("it1", "info_type"), ("it2", "info_type"), _MI, _MIX, _N, _T),
        (
            ("mi", "info_type_id", "it1", "id"),
            ("mi_idx", "info_type_id", "it2", "id"),
            _J_MI_T,
            _J_MIX_T,
            _J_CI_T,
            _J_CI_N,
        ),
        (
            _s("it1", "info_type", "info", "eq"),
            _s("it2", "info_type", "info", "eq"),
            _s("n", "name", "gender", "eq"),
            _s("mi", "movie_info", "info_val", "gt", optional=True),
        ),
    ),
    _Family(
        19,
        (_AN, _CHN, _CI, _CN, _IT, _MC, _MI, _N, _RT, _T),
        (
            _J_AN_N,
            _J_CI_CHN,
            _J_CI_N,
            _J_CI_RT,
            _J_CI_T,
            _J_MC_T,
            _J_MC_CN,
            _J_MI_T,
            _J_MI_IT,
        ),
        (
            _s("cn", "company_name", "country_code", "eq"),
            _s("it", "info_type", "info", "eq"),
            _s("n", "name", "gender", "eq"),
            _s("rt", "role_type", "role", "eq"),
            _s("t", "title", "production_year", "range", optional=True),
            _s("mi", "movie_info", "info_val", "range", optional=True),
        ),
    ),
    _Family(
        20,
        (_CHN, _CI, _K, _KT, _MK, _N, _RT, _T),
        (_J_CI_CHN, _J_CI_N, _J_CI_RT, _J_CI_T, _J_MK_T, _J_MK_K, _J_T_KT),
        (
            _s("kt", "kind_type", "kind", "eq"),
            _s("k", "keyword", "phonetic_code", "eq"),
            _s("n", "name", "gender", "eq"),
            _s("rt", "role_type", "role", "eq", optional=True),
        ),
        group_by=(("kt", "kind"),),
        aggregates=(("count", None, None),),
    ),
    _Family(
        21,
        (_CN, _CT, _K, _LT, _MC, _MI, _MK, _ML, _T, _KT),
        (
            _J_MC_T,
            _J_MC_CN,
            _J_MC_CT,
            _J_MI_T,
            _J_MK_T,
            _J_MK_K,
            _J_ML_T,
            _J_ML_LT,
            _J_T_KT,
        ),
        (
            _s("cn", "company_name", "country_code", "eq"),
            _s("lt", "link_type", "link", "in"),
            _s("k", "keyword", "phonetic_code", "eq"),
            _s("mi", "movie_info", "info_val", "range", optional=True),
            _s("kt", "kind_type", "kind", "eq", optional=True),
        ),
    ),
    _Family(
        22,
        (
            _CN,
            _CT,
            ("it1", "info_type"),
            ("it2", "info_type"),
            _K,
            _KT,
            _MC,
            _MI,
            _MIX,
            _MK,
            _T,
        ),
        (
            ("mi", "info_type_id", "it1", "id"),
            ("mi_idx", "info_type_id", "it2", "id"),
            _J_MI_T,
            _J_MIX_T,
            _J_MC_T,
            _J_MC_CN,
            _J_MC_CT,
            _J_MK_T,
            _J_MK_K,
            _J_T_KT,
        ),
        (
            _s("kt", "kind_type", "kind", "in"),
            _s("cn", "company_name", "country_code", "eq"),
            _s("k", "keyword", "phonetic_code", "in"),
            _s("it1", "info_type", "info", "eq"),
            _s("it2", "info_type", "info", "eq"),
            _s("mi", "movie_info", "info_val", "range", optional=True),
            _s("mi_idx", "movie_info_idx", "info_val", "gt", optional=True),
            _s("t", "title", "production_year", "range", optional=True),
        ),
        aggregates=(("min", "t", "production_year"), ("min", "mi_idx", "info_val")),
    ),
)


def _fill_slot(slot: _Slot, rng: np.random.Generator) -> Predicate:
    lo, hi = _DOMAINS[(slot.table, slot.column)]
    ref = ColumnRef(slot.alias, slot.column)
    if slot.kind == "eq":
        return Comparison(ref, CompareOp.EQ, int(rng.integers(lo, hi + 1)))
    if slot.kind == "gt":
        # keep some mass above the bound
        cut = int(rng.integers(lo, lo + max(1, (hi - lo) * 3 // 4)))
        return Comparison(ref, CompareOp.GT, cut)
    if slot.kind == "lt":
        cut = int(rng.integers(lo + max(1, (hi - lo) // 4), hi + 1))
        return Comparison(ref, CompareOp.LT, cut)
    if slot.kind == "range":
        width = max(1, int((hi - lo) * rng.uniform(0.1, 0.5)))
        start = int(rng.integers(lo, max(lo + 1, hi - width)))
        return BetweenPredicate(ref, start, start + width)
    if slot.kind == "in":
        count = int(rng.integers(2, 5))
        values = rng.choice(np.arange(lo, hi + 1), size=count, replace=False)
        return InPredicate(ref, tuple(int(v) for v in sorted(values)))
    raise ValueError(f"unknown slot kind {slot.kind!r}")


def _build_query(family: _Family, variant: str) -> Query:
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}")
    seed = family.number * 1009 + VARIANTS.index(variant)
    rng = np.random.default_rng(seed)
    selections = []
    for slot in family.slots:
        if slot.optional and rng.uniform() > 0.85:
            continue
        selections.append(_fill_slot(slot, rng))
    joins = [
        JoinPredicate(ColumnRef(a, ac), ColumnRef(b, bc))
        for a, ac, b, bc in family.joins
    ]
    aggregates = [
        AggregateSpec(func, ColumnRef(alias, col) if alias else None)
        for func, alias, col in family.aggregates
    ]
    group_by = [ColumnRef(alias, col) for alias, col in family.group_by]
    return Query(
        name=f"{family.number}{variant}",
        relations=dict(family.relations),
        selections=selections,
        joins=joins,
        group_by=group_by,
        aggregates=aggregates,
    )


def job_lite_query(name: str) -> Query:
    """Build one named JOB-lite query, e.g. ``job_lite_query("13c")``."""
    number, variant = int(name[:-1]), name[-1]
    for family in FAMILIES:
        if family.number == number:
            return _build_query(family, variant)
    raise KeyError(f"no JOB-lite family {number}")


def job_lite_queries(variants: Sequence[str] = VARIANTS) -> Dict[str, Query]:
    """All JOB-lite queries for the requested variants, keyed by name."""
    queries: Dict[str, Query] = {}
    for family in FAMILIES:
        for variant in variants:
            q = _build_query(family, variant)
            queries[q.name] = q
    return queries


def job_lite_workload(variants: Sequence[str] = VARIANTS) -> Workload:
    """The JOB-lite workload as a :class:`Workload` (deterministic order)."""
    queries = job_lite_queries(variants)
    return Workload("job-lite", [queries[k] for k in sorted(queries)])
