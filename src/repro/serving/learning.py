"""The hands-free learning loop: gated retraining, versioned hot-swap,
automatic rollback, adaptive guardrail.

This module closes the loop the paper's title promises. The serving
stack already records every policy rollout into per-shard
:class:`~repro.serving.experience.ExperienceBuffer`\\ s; what was
missing is the machinery that turns that experience into *safely*
deployed weights. A single unvetted ``Trainer.replay`` into the live
policy would reach all traffic instantly — one poisoned batch (NaN
rewards, adversarial trajectories) and every shard serves garbage. The
:class:`RetrainingDaemon` makes the loop self-defending, borrowing the
exemplars named in the ROADMAP:

- **shadow retraining** (Neo's retrain-and-redeploy): every ``K``
  served queries the daemon drains the buffers and replays them into a
  *deep copy* of the agent, off the hot path — the live policy is
  untouched until the candidate proves itself;
- **eval gate** (Balsa's safe execution): candidate weights are scored
  on a held-out query set against the exact bitset-DP oracle; a
  candidate whose geometric-mean relative plan cost violates the
  regression budget — or that produces any non-finite rollout — is
  refused with a ``policy_update_rejected`` event. Rejected weights are
  discarded; they never receive a version and can never be served;
- **atomic versioned hot-swap**: promoted weights are copied *in
  place* into every shard's policy network under that shard's
  inference lock (object identity is preserved, so nothing else needs
  rewiring), the monotonic ``policy_version`` is bumped, and a
  statistics-epoch-stamped checkpoint is written through
  :func:`~repro.core.checkpoint.save_agent` so a restarted service
  resumes the lineage;
- **automatic rollback**: each swap arms an observation window; if the
  guardrail fallback + degraded rate or the windowed request p95
  regresses past its watermark before the window closes, the
  pre-swap weights are restored as a *new* version (versions only go
  forward — a rollback is a deployment, not an undo);
- **adaptive guardrail** (Bao's regression predictor): the static
  learned-vs-expert cost-ratio threshold is replaced by one fitted
  from observed (predicted cost → actual latency) pairs: a log-log
  least-squares fit ``latency ≈ a · cost^b`` turns the operator's
  *latency headroom* into the cost ratio that spends exactly that
  headroom, pushed to every shard's router via ``set_threshold``.

Supervision integration: the daemon installs itself as the front end's
``policy_sync`` hook, so a shard respawned after a worker death rejoins
at the **current** promoted version instead of the factory's original
weights.
"""

from __future__ import annotations

import copy
import math
import threading
import time
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.checkpoint import save_agent
from repro.db.query import Query
from repro.obs.metrics import MetricsRegistry, quantile_from_counts
from repro.serving.batching import MicroBatchEngine

__all__ = [
    "AdaptiveGuardrail",
    "EvalGate",
    "GateVerdict",
    "LearningConfig",
    "RetrainingDaemon",
]


@dataclass(frozen=True)
class LearningConfig:
    """Knobs for the hands-free learning loop."""

    #: Run a retraining cycle every this-many served requests.
    retrain_every: int = 64
    #: Skip a cycle (stashing what was drained) below this many usable
    #: trajectories — tiny batches produce noisy updates.
    min_trajectories: int = 8
    #: Held-out queries the gate scores candidates on (the constructor
    #: filters the supplied pool down to this many).
    holdout_size: int = 8
    #: Holdout queries are capped at this many relations so the exact
    #: bitset DP stays the oracle (never the genetic fallback).
    max_holdout_relations: int = 11
    #: Gate: promote when the candidate's geometric-mean relative plan
    #: cost (vs the exact-DP oracle) is within this budget...
    gate_budget: float = 1.10
    #: ...or no worse than ``gate_slack``x the currently-serving score
    #: (lets a mediocre-but-improving policy keep improving).
    gate_slack: float = 1.0
    #: Adaptive guardrail: (predicted cost, observed latency) pairs
    #: probed per cycle by actually executing drained plans.
    latency_probes_per_cycle: int = 8
    #: Wall-clock bound per latency probe execution.
    probe_budget_ms: float = 1_000.0
    #: Minimum pairs before the fit replaces the static threshold.
    min_latency_pairs: int = 16
    #: Most recent pairs retained for the fit.
    latency_pair_window: int = 512
    #: Tolerated latency regression factor for a learned plan; the fit
    #: converts this into a cost-ratio threshold.
    latency_headroom: float = 1.5
    #: The fitted threshold is clamped into these bounds.
    guardrail_bounds: Tuple[float, float] = (1.05, 3.0)
    #: Rollback watch: observation window in served requests.
    rollback_window: int = 64
    #: Roll back when the windowed (fallback + degraded) rate exceeds
    #: this...
    rollback_fallback_watermark: float = 0.25
    #: ...or the windowed request p95 exceeds this factor of the
    #: pre-swap lifetime p95.
    rollback_p95_factor: float = 2.0
    #: Directory for versioned checkpoints (None = no checkpoints).
    checkpoint_dir: str | None = None
    #: Background-thread poll interval for :meth:`RetrainingDaemon.start`.
    poll_interval_s: float = 0.05

    def __post_init__(self) -> None:
        if self.retrain_every < 1:
            raise ValueError("retrain_every must be at least 1")
        if self.gate_budget <= 0 or self.gate_slack <= 0:
            raise ValueError("gate budgets must be positive")
        lo, hi = self.guardrail_bounds
        if not (0 < lo <= hi):
            raise ValueError("guardrail_bounds must satisfy 0 < lo <= hi")
        if self.latency_headroom <= 1.0:
            raise ValueError("latency_headroom must exceed 1.0")
        if self.rollback_window < 1:
            raise ValueError("rollback_window must be at least 1")


class AdaptiveGuardrail:
    """Fits observed (predicted cost, actual latency) pairs into a
    guardrail threshold.

    The static knob answers the wrong question: it bounds predicted
    *cost* regression, but the operator cares about *latency*. On the
    observed workload latency follows a power law in predicted cost,
    ``latency ≈ a · cost^b`` (a log-log line). Under that fit, serving
    a learned plan at cost ratio ``t`` of the expert's costs
    ``t ** b`` in latency — so the cost ratio that spends exactly the
    operator's tolerated ``headroom`` is ``headroom ** (1 / b)``.
    Degenerate fits (too few pairs, a flat or negative slope where cost
    predicts nothing) return ``None`` and the previous threshold stays.
    """

    #: Slopes flatter than this mean cost does not predict latency on
    #: this workload; refuse to derive a threshold from noise.
    MIN_SLOPE = 0.05

    def __init__(
        self,
        headroom: float = 1.5,
        bounds: Tuple[float, float] = (1.05, 3.0),
        min_pairs: int = 16,
        window: int = 512,
    ) -> None:
        if headroom <= 1.0:
            raise ValueError("headroom must exceed 1.0")
        self.headroom = headroom
        self.bounds = bounds
        self.min_pairs = min_pairs
        self._lock = threading.Lock()
        self._pairs: Deque[Tuple[float, float]] = deque(maxlen=window)

    def __len__(self) -> int:
        with self._lock:
            return len(self._pairs)

    def add(self, predicted_cost: float, latency_ms: float) -> None:
        """Record one observation; non-positive values carry no
        information in log space and are dropped."""
        if predicted_cost > 0 and latency_ms > 0:
            with self._lock:
                self._pairs.append((predicted_cost, latency_ms))

    def fit(self) -> Optional[float]:
        """The workload-derived threshold, or ``None`` when the data
        cannot support one."""
        with self._lock:
            pairs = list(self._pairs)
        if len(pairs) < self.min_pairs:
            return None
        x = np.log(np.asarray([c for c, _ in pairs]))
        y = np.log(np.asarray([lat for _, lat in pairs]))
        if np.ptp(x) == 0.0:
            return None
        slope = float(np.cov(x, y, bias=True)[0, 1] / np.var(x))
        if slope < self.MIN_SLOPE:
            return None
        threshold = self.headroom ** (1.0 / slope)
        lo, hi = self.bounds
        return float(min(max(threshold, lo), hi))


@dataclass(frozen=True)
class GateVerdict:
    """One eval-gate scoring of candidate weights."""

    promote: bool
    #: Geometric-mean (plan cost / exact-DP oracle cost) on the holdout.
    score: float
    #: Every holdout rollout produced finite costs.
    finite: bool
    reason: str
    per_query: Dict[str, float] = field(default_factory=dict)


class EvalGate:
    """Scores candidate weights on a held-out set against the exact DP.

    The oracle is :meth:`Planner.optimize` on a dedicated exact planner
    (never the serving shards' — gate evals must not contend with the
    hot path), with oracle costs cached per statistics epoch. A
    candidate is promoted only when every holdout rollout is finite
    AND its geometric-mean relative cost is within ``gate_budget`` (or
    within ``gate_slack``x the currently-serving score). NaN-poisoned
    weights fail structurally: the rollout's forward pass raises on
    non-finite log-probs, which the gate converts into a refusal.
    """

    def __init__(
        self,
        db,
        featurizer,
        holdout: Sequence[Query],
        config: LearningConfig | None = None,
        planner=None,
    ) -> None:
        from repro.optimizer.memo import SubPlanCostMemo
        from repro.optimizer.planner import Planner

        self.config = config or LearningConfig()
        self.db = db
        self.featurizer = featurizer
        self.holdout: List[Query] = [
            q
            for q in holdout
            if 2 <= q.n_relations <= min(
                self.config.max_holdout_relations, featurizer.max_relations
            )
        ][: self.config.holdout_size]
        if not self.holdout:
            raise ValueError(
                "eval gate needs at least one holdout query within the "
                "featurizer and oracle relation caps"
            )
        #: Exact oracle: threshold above every holdout width, so the
        #: genetic fallback can never be the yardstick.
        self.planner = planner or Planner(
            db,
            geqo_threshold=self.config.max_holdout_relations + 2,
            cost_memo=SubPlanCostMemo(),
        )
        self.evaluations = 0
        self._oracle: Dict[str, float] = {}
        self._oracle_epoch: int | None = None

    def oracle_costs(self) -> Dict[str, float]:
        """Exact-DP plan cost per holdout query, recomputed whenever an
        ANALYZE moved the statistics epoch."""
        epoch = self.db.stats_epoch
        if self._oracle_epoch != epoch:
            self._oracle = {
                q.name: self.planner.optimize(q).cost.total for q in self.holdout
            }
            self._oracle_epoch = epoch
        return self._oracle

    def score(self, policy) -> Tuple[float, bool, Dict[str, float]]:
        """(geometric-mean relative cost, all-finite, per-query map) for
        ``policy``'s greedy holdout rollouts."""
        self.evaluations += 1
        oracle = self.oracle_costs()
        engine = MicroBatchEngine(policy, self.featurizer, self.db)
        try:
            records = engine.rollout(self.holdout, greedy=True)
        except Exception:
            # Non-finite forward pass (poisoned weights) or any other
            # rollout failure: structurally unservable.
            return float("inf"), False, {}
        per_query: Dict[str, float] = {}
        logs: List[float] = []
        for query, record in zip(self.holdout, records):
            cost = self.planner.evaluate_tree(record.tree, query).cost.total
            rel = cost / oracle[query.name]
            per_query[query.name] = rel
            if not math.isfinite(rel) or rel <= 0:
                return float("inf"), False, per_query
            logs.append(math.log(rel))
        return float(math.exp(sum(logs) / len(logs))), True, per_query

    def judge(self, policy, current_score: float | None) -> GateVerdict:
        """Score ``policy`` and rule on promotion against the budget and
        the currently-serving score."""
        score, finite, per_query = self.score(policy)
        if not finite:
            return GateVerdict(
                promote=False,
                score=score,
                finite=False,
                reason="non_finite_rollout",
                per_query=per_query,
            )
        if score <= self.config.gate_budget:
            return GateVerdict(
                promote=True, score=score, finite=True,
                reason="within_budget", per_query=per_query,
            )
        if current_score is not None and score <= current_score * self.config.gate_slack:
            return GateVerdict(
                promote=True, score=score, finite=True,
                reason="no_worse_than_serving", per_query=per_query,
            )
        return GateVerdict(
            promote=False, score=score, finite=True,
            reason="regression_budget_exceeded", per_query=per_query,
        )


class RetrainingDaemon:
    """Drives the closed loop over a :class:`ServingFrontEnd`.

    Deterministic by construction: :meth:`maybe_run` is a synchronous
    entry point (the drift bench and CLI call it between bursts), and
    :meth:`start` wraps the same method in a polling background thread
    for always-on deployments. All mutation of serving state — weight
    swaps, version bumps, threshold pushes, shard rejoin syncs — is
    serialized under one swap lock.
    """

    def __init__(
        self,
        frontend,
        trainer,
        holdout: Sequence[Query],
        config: LearningConfig | None = None,
        fault_injector=None,
    ) -> None:
        self.frontend = frontend
        self.trainer = trainer
        self.agent = trainer.agent
        self.config = config or LearningConfig()
        self.db = frontend.services[0].db
        self.telemetry = frontend.telemetry
        #: Chaos: ``replay_poison`` corrupts a cycle's shadow replay
        #: batch (NaN rewards) *before* learning — the gate must catch
        #: the resulting weights. Shadow-only; live weights never see it.
        self.fault_injector = fault_injector
        self.gate = EvalGate(
            self.db,
            frontend.services[0].featurizer,
            holdout,
            config=self.config,
        )
        self.guardrail = AdaptiveGuardrail(
            headroom=self.config.latency_headroom,
            bounds=self.config.guardrail_bounds,
            min_pairs=self.config.min_latency_pairs,
            window=self.config.latency_pair_window,
        )
        #: Monotonic policy generation; 1 = the initially deployed weights.
        self.version = 1
        #: Gate score of the currently-serving weights (None until the
        #: first cycle measures it).
        self.current_score: float | None = None
        self.guardrail_threshold: float | None = None
        self.cycles = 0
        self.promotions = 0
        self.rejections = 0
        self.rollbacks = 0
        self.poisoned_cycles = 0
        #: Every promoted version (rollbacks included — they are
        #: promotions of previously-vetted weights). The "zero rejected
        #: updates served" invariant is structural: a rejected candidate
        #: never enters this set and never gets a version number.
        self.promoted_versions = {1}
        #: Audit trail of every cycle decision, for benches and tests.
        self.lineage: List[dict] = []
        self._swap_lock = threading.RLock()
        self._stash: List = []  # under-min drains carried to the next cycle
        self._served_at_last_cycle = 0
        #: (policy_net clone, value_net clone, version, score) of the
        #: weights serving before the newest swap — the rollback target.
        self._previous: Optional[tuple] = None
        self._watch: Optional[dict] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.registry = MetricsRegistry()
        self._register_metrics()
        # Ride on the front end: metrics merge into `repro metrics`,
        # respawned shards rejoin at the current version.
        frontend.extra_registries.append(self.registry)
        frontend.policy_sync = self._sync_shard

    # ------------------------------------------------------------------
    def _register_metrics(self) -> None:
        reg = self.registry
        reg.gauge_fn(
            "repro_policy_version",
            lambda: self.version,
            "currently-serving policy generation (monotonic)",
        )
        reg.gauge_fn(
            "repro_guardrail_threshold",
            lambda: self.guardrail_threshold or 0.0,
            "adaptive guardrail cost-ratio threshold (0 until fitted)",
        )
        reg.counter_fn(
            "repro_learning_cycles_total",
            lambda: self.cycles,
            "retraining cycles run",
        )
        reg.counter_fn(
            "repro_learning_promotions_total",
            lambda: self.promotions,
            "gated candidates promoted and hot-swapped",
        )
        reg.counter_fn(
            "repro_learning_rejections_total",
            lambda: self.rejections,
            "candidates refused by the eval gate",
        )
        reg.counter_fn(
            "repro_learning_rollbacks_total",
            lambda: self.rollbacks,
            "automatic rollbacks within the observation window",
        )
        self.retrain_ms_hist = reg.histogram(
            "repro_learning_retrain_ms",
            "wall-clock of one shadow replay + gate evaluation",
        )

    def _emit(self, kind: str, **payload) -> None:
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.events.emit(kind, **payload)

    # ------------------------------------------------------------------
    # Cadence
    # ------------------------------------------------------------------
    def served_requests(self) -> int:
        """Total requests served across shards (a respawned shard's
        counter restarts at 0, so deltas are clamped where consumed)."""
        return sum(s.stats.requests for s in self.frontend.services)

    def maybe_run(self) -> Optional[dict]:
        """The deterministic tick: first settle any armed rollback
        watch, then run a cycle if ``retrain_every`` requests have been
        served since the last one. Returns the cycle's status dict, a
        rollback status dict, or ``None`` when nothing was due."""
        rolled = self.check_rollback()
        if rolled is not None:
            return rolled
        served = self.served_requests()
        if served - self._served_at_last_cycle < self.config.retrain_every:
            return None
        self._served_at_last_cycle = served
        return self.run_cycle()

    def start(self) -> None:
        """Run :meth:`maybe_run` on a polling background thread."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="retraining-daemon", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.config.poll_interval_s):
            try:
                self.maybe_run()
            except Exception as exc:  # the loop must outlive one bad cycle
                self._emit("retraining_error", error=repr(exc))

    # ------------------------------------------------------------------
    # One cycle
    # ------------------------------------------------------------------
    def run_cycle(self) -> dict:
        """Drain → (maybe poison) → shadow replay → gate → swap/reject.

        Never touches live weights unless the gate promoted.
        """
        self.cycles += 1
        cycle = self.cycles
        start = time.perf_counter()
        drained = self._stash + self.frontend.drain_experience()
        self._stash = []
        self._probe_latency(drained)
        self._refit_guardrail()
        usable = [t for t in drained if t.transitions]
        status = {
            "cycle": cycle,
            "version": self.version,
            "drained": len(drained),
            "action": "skipped",
            "poisoned": False,
        }
        if len(usable) < self.config.min_trajectories:
            self._stash = drained
            self.lineage.append(status)
            return status
        poisoned = self.fault_injector is not None and self.fault_injector.fires(
            "replay_poison", f"cycle{cycle}"
        )
        if poisoned:
            self.poisoned_cycles += 1
            drained = [_poison(t) for t in drained]
            status["poisoned"] = True

        # Shadow copy under the shard-0 inference lock: shard 0 serves
        # the *original* policy object, and deep-copying a net mid-
        # forward would snapshot half-written activation stashes.
        lock = self.frontend.services[0].engine.inference_lock or nullcontext()
        with lock:
            shadow = copy.deepcopy(self.agent)
        if self.current_score is None or self.gate._oracle_epoch != self.db.stats_epoch:
            # The shadow still carries the live weights: score it before
            # training and that IS the serving score (no racy forward
            # passes on live nets, no extra clone).
            baseline, finite, _ = self.gate.score(shadow.policy)
            self.current_score = baseline if finite else None
        shadow_trainer = type(self.trainer)(
            self.trainer.env,
            shadow,
            self.trainer.baseline,
            self.trainer.rng,
            self.trainer.config,
        )
        events = self.telemetry.events if (
            self.telemetry is not None and self.telemetry.enabled
        ) else None
        try:
            shadow_trainer.replay(drained, events=events)
        except Exception as exc:
            # A replay that blows up (poisoned rewards can) is treated
            # exactly like a gate refusal: the candidate is discarded.
            self.rejections += 1
            status.update(action="rejected", reason=f"replay_failed: {exc!r}")
            self._emit(
                "policy_update_rejected",
                cycle=cycle,
                reason=status["reason"],
                poisoned=poisoned,
                candidate_score=None,
                current_score=self.current_score,
            )
            self.retrain_ms_hist.observe((time.perf_counter() - start) * 1000.0)
            self.lineage.append(status)
            return status
        if not _weights_finite(shadow.policy_net, shadow.value_net):
            # Poisoned rewards can corrupt the nets without blowing up
            # the greedy rollout (the PPO clip mask zeroes NaN policy
            # gradients, but the value head trains straight on the NaN
            # returns). The gate only rolls out the policy net, so an
            # explicit weight-health check is the deterministic barrier.
            self.rejections += 1
            status.update(action="rejected", reason="non_finite_weights")
            self._emit(
                "policy_update_rejected",
                cycle=cycle,
                reason="non_finite_weights",
                poisoned=poisoned,
                candidate_score=None,
                current_score=self.current_score,
            )
            self.retrain_ms_hist.observe((time.perf_counter() - start) * 1000.0)
            self.lineage.append(status)
            return status
        verdict = self.gate.judge(shadow.policy, self.current_score)
        self.retrain_ms_hist.observe((time.perf_counter() - start) * 1000.0)
        status["candidate_score"] = verdict.score
        status["gate_reason"] = verdict.reason
        if not verdict.promote:
            self.rejections += 1
            status["action"] = "rejected"
            self._emit(
                "policy_update_rejected",
                cycle=cycle,
                reason=verdict.reason,
                poisoned=poisoned,
                candidate_score=(
                    None if not math.isfinite(verdict.score) else
                    round(verdict.score, 6)
                ),
                current_score=self.current_score,
            )
            self.lineage.append(status)
            return status
        version = self._swap(
            shadow.policy_net, shadow.value_net, score=verdict.score, cycle=cycle
        )
        status.update(action="promoted", new_version=version)
        self.lineage.append(status)
        return status

    # ------------------------------------------------------------------
    # Adaptive guardrail
    # ------------------------------------------------------------------
    def _probe_latency(self, trajectories) -> None:
        """Execute a few drained plans to harvest (predicted cost →
        actual latency) pairs. Off the hot path by construction: this
        runs in the daemon, not a worker."""
        budget = self.config.probe_budget_ms
        probed = 0
        for t in trajectories:
            if probed >= self.config.latency_probes_per_cycle:
                break
            info = t.info
            plan, query = info.get("plan"), info.get("query")
            outcome = info.get("outcome")
            cost = getattr(outcome, "cost", None)
            if plan is None or query is None or not cost:
                continue
            try:
                result = self.db.execute_plan(plan, query, budget_ms=budget)
            except Exception:
                continue
            probed += 1
            if not result.timed_out and result.latency_ms is not None:
                self.guardrail.add(cost, result.latency_ms)

    def _refit_guardrail(self) -> None:
        threshold = self.guardrail.fit()
        if threshold is None or threshold == self.guardrail_threshold:
            return
        previous = self.guardrail_threshold
        self.guardrail_threshold = threshold
        for service in self.frontend.services:
            service.router.set_threshold(threshold)
        self._emit(
            "guardrail_threshold_update",
            threshold=round(threshold, 4),
            previous=previous,
            pairs=len(self.guardrail),
        )

    # ------------------------------------------------------------------
    # Swap / rollback
    # ------------------------------------------------------------------
    def _swap(
        self,
        policy_net,
        value_net,
        score: float | None,
        cycle: int | None,
        kind: str = "policy_swap",
    ) -> int:
        """Broadcast vetted weights to every shard, bump the version,
        checkpoint, and arm the rollback watch.

        The payload is snapshotted **once** (``{name: array}``) and
        handed to each shard's ``apply_policy_weights`` — thread shards
        copy it in place under their inference lock; process shards ship
        it over the control channel (out-of-band through the shm ring)
        and ack the version. A shard that died mid-broadcast is skipped:
        its supervisor respawn rejoins through ``policy_sync`` at the
        version promoted here, so no shard can serve stale weights.
        """
        with self._swap_lock:
            rng = self.trainer.rng
            self._previous = (
                self.agent.policy_net.clone(rng),
                self.agent.value_net.clone(rng),
                self.version,
                self.current_score,
            )
            version = self.version + 1
            params = {
                name: np.copy(arr)
                for name, arr in policy_net.net.params.items()
            }
            # The agent's nets first: shard 0 usually *is* the agent's
            # policy net (identity-preserved by build()), and a dead
            # process shard must still leave the parent at the promoted
            # weights; the value net serves nowhere.
            self.agent.policy_net.copy_weights_from(policy_net)
            if value_net is not None:
                self.agent.value_net.copy_weights_from(value_net)
            for shard, service in enumerate(self.frontend.services):
                try:
                    service.apply_policy_weights(params, version)
                except Exception:
                    # Worker process gone mid-broadcast; the respawned
                    # shard is policy_sync'd to `version` before it
                    # serves again.
                    self._emit("policy_swap_shard_skipped", shard=shard,
                               version=version)
            self.version = version
            self.promoted_versions.add(version)
            if kind == "policy_swap":
                self.promotions += 1
            self.current_score = score
            self._checkpoint(version)
            self._arm_watch()
        self._emit(
            kind,
            version=version,
            cycle=cycle,
            score=None if score is None or not math.isfinite(score)
            else round(score, 6),
        )
        return version

    def force_swap(self, policy_net, value_net=None) -> int:
        """Swap arbitrary weights in, bypassing the gate (chaos drills
        and tests: prove the rollback watch catches a bad deploy)."""
        return self._swap(
            policy_net, value_net, score=None, cycle=None, kind="policy_swap"
        )

    def _checkpoint(self, version: int) -> None:
        if self.config.checkpoint_dir is None:
            return
        save_agent(
            self.agent,
            Path(self.config.checkpoint_dir) / f"v{version}",
            db=self.db,
            policy_version=version,
        )

    def _bad_serves(self) -> int:
        """Guardrail fallbacks + degraded serves across shards (clamped
        per shard against respawn counter resets by summing live values)."""
        return sum(
            s.stats.fallbacks + s.stats.degraded_served
            for s in self.frontend.services
        )

    def _request_hist_counts(self) -> Tuple[tuple, List[int]]:
        """Summed request-latency bucket counts across shards."""
        bounds = self.frontend.services[0].request_ms_hist.bounds
        total = [0] * (len(bounds) + 1)
        for service in self.frontend.services:
            for i, c in enumerate(service.request_ms_hist.counts_snapshot()):
                total[i] += c
        return bounds, total

    def _arm_watch(self) -> None:
        bounds, counts = self._request_hist_counts()
        self._watch = {
            "version": self.version,
            "requests": self.served_requests(),
            "bad": self._bad_serves(),
            "bounds": bounds,
            "counts": counts,
            "baseline_p95": quantile_from_counts(bounds, counts, 0.95),
        }

    def check_rollback(self) -> Optional[dict]:
        """Settle an armed observation window: roll back to the pre-swap
        weights when the post-swap fallback/degraded rate or windowed
        p95 regressed past its watermark; dismiss the watch when the
        window closes clean."""
        with self._swap_lock:
            watch = self._watch
            if watch is None or self._previous is None:
                return None
            served_since = self.served_requests() - watch["requests"]
            window = self.config.rollback_window
            # Early settlement needs enough serves to not mistake one
            # noisy fallback for a storm; the p95 test (a distribution
            # property) is only judged on the full window.
            min_early = min(8, window)
            if served_since < min_early:
                return None
            bad_since = max(0, self._bad_serves() - watch["bad"])
            bad_rate = bad_since / served_since
            bad_regressed = bad_rate > self.config.rollback_fallback_watermark
            if served_since < window and not bad_regressed:
                return None
            bounds, counts = self._request_hist_counts()
            delta = [
                max(0, now - then)
                for now, then in zip(counts, watch["counts"])
            ]
            window_p95 = quantile_from_counts(bounds, delta, 0.95)
            baseline_p95 = watch["baseline_p95"]
            p95_regressed = (
                served_since >= window
                and baseline_p95 > 0.0
                and window_p95 > baseline_p95 * self.config.rollback_p95_factor
            )
            if not (bad_regressed or p95_regressed):
                self._watch = None  # window closed clean
                return None
            # Regressed: restore the pre-swap weights as a NEW version.
            from_version = watch["version"]
            policy_net, value_net, prev_version, prev_score = self._previous
            self._previous = None
            self._watch = None
            reason = "fallback_rate" if bad_regressed else "p95"
            version = self._swap(
                policy_net, value_net, score=prev_score, cycle=None,
                kind="policy_rollback",
            )
            # _swap armed a fresh watch for the restored weights and
            # snapshotted the bad deploy as "previous"; a rollback must
            # not be rolled back to.
            self._previous = None
            self._watch = None
            self.rollbacks += 1
            status = {
                "action": "rollback",
                "from_version": from_version,
                "restored_weights_of": prev_version,
                "new_version": version,
                "reason": reason,
                "window_bad_rate": round(bad_rate, 4),
                "window_p95_ms": round(window_p95, 4),
                "baseline_p95_ms": round(baseline_p95, 4),
                "served_since_swap": served_since,
            }
            self.lineage.append(status)
        self._emit(
            "policy_rollback",
            from_version=from_version,
            restored_weights_of=prev_version,
            new_version=version,
            reason=reason,
            window_bad_rate=status["window_bad_rate"],
            window_p95_ms=status["window_p95_ms"],
            baseline_p95_ms=status["baseline_p95_ms"],
            served_since_swap=served_since,
        )
        return status

    # ------------------------------------------------------------------
    # Supervision hook
    # ------------------------------------------------------------------
    def _sync_shard(self, service, shard: int) -> None:
        """``ServingFrontEnd.policy_sync``: bring a respawned shard's
        rebuilt service to the current promoted weights and version
        before its worker thread starts."""
        with self._swap_lock:
            params = {
                name: np.copy(arr)
                for name, arr in self.agent.policy_net.net.params.items()
            }
            version = self.version
        service.apply_policy_weights(params, version)
        self._emit("policy_sync", shard=shard, version=version)

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """Operator snapshot (benches serialize this)."""
        return {
            "policy_version": self.version,
            "cycles": self.cycles,
            "promotions": self.promotions,
            "rejections": self.rejections,
            "rollbacks": self.rollbacks,
            "poisoned_cycles": self.poisoned_cycles,
            "current_score": self.current_score,
            "guardrail_threshold": self.guardrail_threshold,
            "guardrail_pairs": len(self.guardrail),
            "promoted_versions": sorted(self.promoted_versions),
            "gate_evaluations": self.gate.evaluations,
        }


def _weights_finite(*nets) -> bool:
    """True when every parameter of every net is finite."""
    for net in nets:
        for value in net.net.params.values():
            if not np.isfinite(value).all():
                return False
    return True


def _poison(trajectory):
    """A copy of ``trajectory`` whose terminal reward is NaN — the
    adversarial replay batch the ``replay_poison`` chaos kind injects."""
    if not trajectory.transitions:
        return trajectory
    transitions = list(trajectory.transitions)
    last = transitions[-1]
    transitions[-1] = type(last)(
        last.state, last.mask, last.action, float("nan"), last.log_prob
    )
    return type(trajectory)(transitions=transitions, info=dict(trajectory.info))
