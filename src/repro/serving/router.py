"""Guardrail routing between the learned plan and the expert plan.

A learned optimizer in production needs a safety net: Neo keeps
PostgreSQL on standby, Bao only picks among hinted plans the expert
already vetted. Here the guardrail compares the learned plan's
predicted cost against the expert planner's plan for the same query and
serves the expert plan whenever the predicted regression exceeds a
threshold. Expert results are memoized per fingerprint so the guardrail
adds at most one expert optimization per distinct query shape.

The threshold is live-tunable: the retraining daemon's adaptive
guardrail (:mod:`repro.serving.learning`) fits observed
(predicted cost → actual latency) pairs and pushes a workload-derived
threshold through :meth:`GuardrailRouter.set_threshold` while workers
are deciding. ``decide`` therefore reads the threshold exactly once per
call — every decision is made against one consistent value.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable

from repro.db.query import Query
from repro.optimizer.planner import Planner, PlannerResult, PlanningTimeout

__all__ = ["GuardrailDecision", "GuardrailRouter"]


@dataclass(frozen=True)
class GuardrailDecision:
    """Outcome of one learned-vs-expert comparison."""

    use_learned: bool
    learned_cost: float
    expert_cost: float | None
    threshold: float | None

    @property
    def predicted_regression(self) -> float | None:
        if not self.expert_cost:
            return None
        return self.learned_cost / self.expert_cost


class GuardrailRouter:
    """Falls back to the expert when the learned plan looks too expensive."""

    def __init__(
        self,
        planner: Planner,
        regression_threshold: float | None = 1.2,
    ) -> None:
        """``regression_threshold`` is the max tolerated ratio of learned
        predicted cost to expert cost; ``None`` disables the guardrail
        entirely (the expert is never even consulted)."""
        if regression_threshold is not None and regression_threshold <= 0:
            raise ValueError("regression_threshold must be positive or None")
        self.planner = planner
        self.regression_threshold = regression_threshold
        self.decisions = 0
        self.fallbacks = 0
        #: Guardrail comparisons skipped because the budgeted expert
        #: search timed out (the learned plan is served unguarded).
        self.timeouts = 0
        # The memo may be invalidated from an operator thread while a
        # worker thread is filling it; guard both maps together.
        self._lock = threading.Lock()
        self._expert_results: Dict[str, PlannerResult] = {}
        #: Which base tables each memoized expert plan reads, so a
        #: table-scoped statistics refresh can evict surgically.
        self._tables: Dict[str, FrozenSet[str]] = {}

    def peek(self, key: str) -> PlannerResult | None:
        """The memoized expert plan for ``key``, if one exists — no
        planning, no blocking beyond the dict get. The degradation
        ladder's first rung: a cached expert answer beats re-planning
        when the policy just failed."""
        with self._lock:
            return self._expert_results.get(key)

    def expert_result(
        self,
        query: Query,
        key: str | None = None,
        trace=None,
        parent=None,
        budget_ms: float | None = None,
    ) -> PlannerResult:
        """The expert plan for ``query``, memoized by fingerprint.

        With a ``trace`` attached, an actual planner run (memo miss)
        records an ``expert_dp`` span under ``parent`` carrying the DP
        subset-enumeration delta; memo hits record nothing — the lookup
        is a dict get. ``budget_ms`` bounds the search wall clock; a
        :class:`~repro.optimizer.planner.PlanningTimeout` propagates
        (nothing is memoized — a timeout is not an answer).
        """
        key = key or query.name
        with self._lock:
            result = self._expert_results.get(key)
        if result is None:
            # Optimize outside the lock: the expert search is the slow
            # part and must not serialize unrelated shards.
            epoch = self.planner.db.stats_epoch
            subsets_before = self.planner.dp_stats.subsets_enumerated
            span = (
                trace.start_span("expert_dp", parent=parent, fingerprint=key)
                if trace is not None
                else None
            )
            try:
                result = self.planner.optimize(query, budget_ms=budget_ms)
            finally:
                if span is not None:
                    span.attrs["dp_subsets"] = (
                        self.planner.dp_stats.subsets_enumerated - subsets_before
                    )
                    trace.end_span(span)
            with self._lock:
                if self.planner.db.stats_epoch == epoch:
                    # Don't memoize a plan computed under statistics an
                    # ANALYZE replaced mid-optimization: it would
                    # survive the invalidation that just ran.
                    self._expert_results[key] = result
                    self._tables[key] = frozenset(query.relations.values())
        return result

    def set_threshold(self, regression_threshold: float | None) -> None:
        """Replace the live regression threshold (adaptive guardrail).

        Safe to call while workers are mid-``decide``: in-flight calls
        already snapshotted the old value; later calls see the new one.
        """
        if regression_threshold is not None and regression_threshold <= 0:
            raise ValueError("regression_threshold must be positive or None")
        self.regression_threshold = regression_threshold

    def decide(
        self,
        query: Query,
        learned_cost: float,
        key: str | None = None,
        trace=None,
        parent=None,
        budget_ms: float | None = None,
    ) -> GuardrailDecision:
        self.decisions += 1
        threshold = self.regression_threshold
        if threshold is None:
            return GuardrailDecision(
                use_learned=True,
                learned_cost=learned_cost,
                expert_cost=None,
                threshold=None,
            )
        try:
            expert_cost = self.expert_result(
                query, key, trace=trace, parent=parent, budget_ms=budget_ms
            ).cost.total
        except PlanningTimeout:
            # The guardrail is advisory; out of budget, serving the
            # learned plan unguarded beats missing the deadline.
            self.timeouts += 1
            return GuardrailDecision(
                use_learned=True,
                learned_cost=learned_cost,
                expert_cost=None,
                threshold=threshold,
            )
        use_learned = learned_cost <= expert_cost * threshold
        if not use_learned:
            self.fallbacks += 1
        return GuardrailDecision(
            use_learned=use_learned,
            learned_cost=learned_cost,
            expert_cost=expert_cost,
            threshold=threshold,
        )

    def invalidate(self) -> None:
        """Drop memoized expert plans (statistics changed under them)."""
        with self._lock:
            self._expert_results.clear()
            self._tables.clear()

    def invalidate_tables(self, tables: Iterable[str]) -> int:
        """Drop only expert plans reading any of ``tables``."""
        changed = frozenset(tables)
        with self._lock:
            doomed = [
                key
                for key, tagged in self._tables.items()
                if tagged & changed
            ]
            for key in doomed:
                del self._expert_results[key]
                del self._tables[key]
            return len(doomed)

    @property
    def fallback_rate(self) -> float:
        return self.fallbacks / self.decisions if self.decisions else 0.0
