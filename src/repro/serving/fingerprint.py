"""Canonical query fingerprints for the plan cache.

Two textually different queries that describe the same SPJ(+aggregate)
block — different alias names, reordered WHERE conjuncts, swapped join
predicate sides, permuted IN lists — must map to the same cache entry,
or the plan cache silently degrades into a string-match cache.

The canonicalization is a colour-refinement pass over the alias graph
(the same 1-WL idea used by graph-isomorphism heuristics):

1. each alias starts with a colour derived from its table and the
   *name-free* renderings of its selection/grouping/aggregate usage;
2. colours are refined by hashing in the sorted multiset of
   ``(my column, partner column, partner colour)`` join incidences,
   for as many rounds as there are aliases;
3. aliases are renamed ``r0, r1, ...`` in sorted final-colour order and
   the whole query is re-rendered with sorted conjuncts and sorted
   join-predicate sides.

Aliases that remain tied after refinement are genuinely symmetric
(automorphic), so either assignment renders the same canonical text.
The fingerprint is the SHA-256 of that text.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

from repro.db.predicates import predicate_signature as _selection_signature
from repro.db.query import Query

__all__ = ["canonical_alias_map", "canonical_text", "fingerprint"]


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _initial_colors(query: Query) -> Dict[str, str]:
    colors: Dict[str, str] = {}
    agg_by_alias: Dict[str, List[str]] = {}
    for agg in query.aggregates:
        if agg.column is not None:
            agg_by_alias.setdefault(agg.column.alias, []).append(
                f"A:{agg.func}:{agg.column.column}"
            )
    group_by_alias: Dict[str, List[str]] = {}
    for ref in query.group_by:
        group_by_alias.setdefault(ref.alias, []).append(f"G:{ref.column}")
    for alias, table in query.relations.items():
        parts = sorted(_selection_signature(p) for p in query.selections_for(alias))
        parts += sorted(agg_by_alias.get(alias, []))
        parts += sorted(group_by_alias.get(alias, []))
        colors[alias] = _digest(f"{table}|{';'.join(parts)}")
    return colors


def _refine(query: Query, colors: Dict[str, str]) -> Dict[str, str]:
    """One Weisfeiler-Lehman round over the join incidences."""
    incidences: Dict[str, List[str]] = {alias: [] for alias in query.relations}
    for join in query.joins:
        left, right = join.left, join.right
        incidences[left.alias].append(
            f"{left.column}~{right.column}:{colors[right.alias]}"
        )
        incidences[right.alias].append(
            f"{right.column}~{left.column}:{colors[left.alias]}"
        )
    return {
        alias: _digest(colors[alias] + "|" + ",".join(sorted(items)))
        for alias, items in incidences.items()
    }


def canonical_alias_map(query: Query) -> Dict[str, str]:
    """alias -> canonical name (``r0``, ``r1``, ...).

    Fingerprint-equivalent queries get the same canonical names for
    structurally matching aliases, so composing one query's map with
    another's inverse yields the alias translation between them (used
    by the serving cache to remap cached plans).
    """
    colors = _initial_colors(query)
    distinct = len(set(colors.values()))
    for _ in range(len(query.relations)):
        colors = _refine(query, colors)
        refined = len(set(colors.values()))
        # Refinement only ever splits colour classes (the new colour
        # hashes in the old one), so an unchanged count means the
        # partition is stable and further rounds cannot move it. Two
        # equivalent queries refine in lockstep, so they stop at the
        # same round and keep identical fingerprints.
        if refined == distinct:
            break
        distinct = refined
    order = sorted(query.relations, key=lambda alias: (colors[alias], alias))
    return {alias: f"r{k}" for k, alias in enumerate(order)}


def canonical_text(query: Query, alias_map: Dict[str, str] | None = None) -> str:
    """A name-independent, order-independent rendering of the query."""
    names = alias_map or canonical_alias_map(query)
    from_items = sorted(
        f"{table} AS {names[alias]}" for alias, table in query.relations.items()
    )
    join_items = sorted(
        " = ".join(
            sorted(
                (
                    f"{names[join.left.alias]}.{join.left.column}",
                    f"{names[join.right.alias]}.{join.right.column}",
                )
            )
        )
        for join in query.joins
    )
    selection_items = sorted(
        _selection_signature(p).replace("?.", f"{names[p.column.alias]}.", 1)
        for p in query.selections
    )
    group_items = sorted(f"{names[r.alias]}.{r.column}" for r in query.group_by)
    agg_items = sorted(
        f"{a.func}({'*' if a.column is None else names[a.column.alias] + '.' + a.column.column})"
        for a in query.aggregates
    )
    return (
        f"FROM {', '.join(from_items)}"
        f" WHERE {' AND '.join(join_items + selection_items)}"
        f" GROUP BY {', '.join(group_items)}"
        f" SELECT {', '.join(agg_items)}"
    )


def fingerprint(query: Query, alias_map: Dict[str, str] | None = None) -> str:
    """SHA-256 hex digest of the canonical text (the cache key).

    Pass ``alias_map`` (from :func:`canonical_alias_map`) to avoid
    recomputing the canonicalization when both are needed.
    """
    return _digest(canonical_text(query, alias_map))
