"""The optimizer-as-a-service front end.

``OptimizerService.optimize`` answers one request; ``optimize_batch``
answers a concurrent burst. Behind the single API sit four cooperating
parts:

1. the **plan cache** — canonical-fingerprint keyed LRU (+TTL), so a
   repeated query shape costs a dictionary lookup, not a rollout;
2. the **micro-batch engine** — cache misses in a burst are rolled out
   in lockstep with stacked forward passes;
3. the **guardrail router** — every learned plan is compared against
   the expert's plan cost and replaced by the expert plan when the
   predicted regression exceeds the configured threshold;
4. the **experience buffer** — every policy rollout is recorded as a
   trajectory with its terminal reward, ready for
   ``Trainer.replay`` to retrain the policy hands-free.

Queries wider than the featurizer supports are routed straight to the
expert planner (and still cached), so the service never refuses a
request.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Sequence

import numpy as np

from repro.core.featurize import QueryFeaturizer
from repro.core.rewards import CostModelReward, PlanOutcome
from repro.db.engine import Database
from repro.db.plans import JoinTree, PhysicalPlan
from repro.db.query import Query
from repro.optimizer.memo import SubPlanCostMemo
from repro.optimizer.planner import Planner
from repro.rl.env import Trajectory
from repro.serving.batching import MicroBatchEngine, RolloutRecord
from repro.serving.cache import PlanCache
from repro.serving.experience import ExperienceBuffer
from repro.serving.fingerprint import canonical_alias_map, fingerprint
from repro.serving.router import GuardrailDecision, GuardrailRouter

__all__ = ["ServingConfig", "ServedPlan", "OptimizerService"]


@dataclass(frozen=True)
class ServingConfig:
    """Knobs an operator tunes without touching code."""

    cache_capacity: int = 512
    cache_ttl_s: float | None = None
    #: Max tolerated learned/expert predicted-cost ratio; None disables
    #: the guardrail (the expert is never consulted on the serve path).
    regression_threshold: float | None = 1.2
    max_batch_size: int = 64
    forbid_cross_products: bool = False
    collect_experience: bool = True
    experience_capacity: int = 10_000
    #: Per-request latency samples kept for percentile reporting.
    latency_window: int = 8192
    #: Max queries queued via :meth:`OptimizerService.submit` awaiting a
    #: :meth:`~OptimizerService.flush` — backpressure instead of an
    #: unbounded pending list.
    max_pending: int = 4096


@dataclass(frozen=True)
class ServedPlan:
    """The service's answer to one optimization request."""

    query_name: str
    fingerprint: str
    plan: PhysicalPlan
    cost: float
    #: "cache" | "policy" | "fallback" | "expert"
    source: str
    latency_ms: float
    decision: GuardrailDecision | None = None


@dataclass
class _CacheEntry:
    """A cached answer plus what is needed to serve it to an
    alias-renamed (fingerprint-equivalent) requester: the join tree and
    the origin query's alias -> canonical-name map."""

    plan: PhysicalPlan
    cost: float
    origin: str  # the source that first produced this plan
    tree: JoinTree
    alias_map: Dict[str, str]


@dataclass
class ServiceStats:
    requests: int = 0
    batches: int = 0
    policy_served: int = 0
    fallbacks: int = 0
    expert_served: int = 0
    cache_served: int = 0

    @property
    def fallback_rate(self) -> float:
        return self.fallbacks / self.requests if self.requests else 0.0


def _rename_tree(tree: JoinTree, rename: Dict[str, str]) -> JoinTree:
    """Rebuild a join tree with every leaf alias translated."""
    if tree.is_leaf:
        return JoinTree.leaf(rename[tree.alias])
    return JoinTree.join(
        _rename_tree(tree.left, rename), _rename_tree(tree.right, rename)
    )


class OptimizerService:
    """Fronts the learned policy and the expert planner behind one API."""

    def __init__(
        self,
        db: Database,
        agent_or_policy,
        planner: Planner | None = None,
        featurizer: QueryFeaturizer | None = None,
        config: ServingConfig | None = None,
        reward_source=None,
        clock=time.monotonic,
    ) -> None:
        self.db = db
        # Agents (PPO/REINFORCE) carry their CategoricalPolicy in .policy;
        # a bare policy object is accepted too.
        self.policy = getattr(agent_or_policy, "policy", agent_or_policy)
        self.planner = planner or Planner(db, cost_memo=SubPlanCostMemo())
        self.featurizer = featurizer or QueryFeaturizer(db.schema)
        self.config = config or ServingConfig()
        self.reward_source = reward_source or CostModelReward(db)
        self.stats = ServiceStats()
        self.cache = PlanCache(
            capacity=self.config.cache_capacity,
            ttl_s=self.config.cache_ttl_s,
            clock=clock,
        )
        self.router = GuardrailRouter(self.planner, self.config.regression_threshold)
        self.engine = MicroBatchEngine(
            self.policy,
            self.featurizer,
            db,
            max_batch_size=self.config.max_batch_size,
            forbid_cross_products=self.config.forbid_cross_products,
        )
        self.experience: ExperienceBuffer | None = (
            ExperienceBuffer(self.config.experience_capacity)
            if self.config.collect_experience
            else None
        )
        self._latencies: Deque[float] = deque(maxlen=self.config.latency_window)
        self._pending: List[Query] = []
        #: Identities of queries in the pending window, for an O(1)
        #: duplicate-submission check (objects stay alive in _pending,
        #: so ids cannot be recycled while tracked here).
        self._pending_ids: set = set()
        self._closed = False

    # ------------------------------------------------------------------
    # Request paths
    # ------------------------------------------------------------------
    def optimize(self, query: Query) -> ServedPlan:
        """Answer one request (a micro-batch of one)."""
        return self.optimize_batch([query])[0]

    def submit(self, query: Query) -> int:
        """Queue a request for the next :meth:`flush`; returns its slot.

        The slot is the query's index in the list :meth:`flush` returns
        — results always come back in submit order. Raises
        ``RuntimeError`` once the service is closed or the pending queue
        is full (``ServingConfig.max_pending``), and ``ValueError`` on a
        duplicate submission of the same query object within one
        pending window (a double-submit bug in the caller: each slot
        must resolve to exactly one request).
        """
        if self._closed:
            raise RuntimeError("submit() after close(): service no longer accepts work")
        if len(self._pending) >= self.config.max_pending:
            raise RuntimeError(
                f"pending queue full ({self.config.max_pending}); flush() first"
            )
        if id(query) in self._pending_ids:
            raise ValueError(
                f"query {query.name!r} already submitted in this pending window"
            )
        self._pending.append(query)
        self._pending_ids.add(id(query))
        return len(self._pending) - 1

    def flush(self) -> List[ServedPlan]:
        """Serve every queued request as one micro-batch.

        Plans come back in submit order: ``flush()[slot]`` is the
        answer for the submission that returned ``slot``.
        """
        pending, self._pending = self._pending, []
        self._pending_ids.clear()
        return self.optimize_batch(pending) if pending else []

    def close(self) -> List[ServedPlan]:
        """Serve whatever is still pending, then refuse new work.

        Idempotent; returns the final flush so no submitted query is
        ever silently dropped.
        """
        served = self.flush()
        self._closed = True
        return served

    def optimize_batch(
        self,
        queries: Sequence[Query],
        fingerprints: Sequence[str] | None = None,
        alias_maps: Sequence[Dict[str, str]] | None = None,
    ) -> List[ServedPlan]:
        """Serve a concurrent burst: cache first, then batched rollout.

        ``fingerprints``/``alias_maps`` let a caller that already
        canonicalized the queries (the concurrent front end computes
        fingerprints to route submissions to shards) skip recomputing
        them here; both must align with ``queries`` index-for-index.
        """
        if not queries:
            return []
        start = time.perf_counter()
        # Plans computed in this batch are cached only if the database
        # statistics do not move underneath it — a refresh_statistics
        # racing the batch must not have its invalidation undone by a
        # late insert of a pre-ANALYZE plan.
        epoch = self.db.stats_epoch
        self.stats.batches += 1
        maps = (
            list(alias_maps)
            if alias_maps is not None
            else [canonical_alias_map(q) for q in queries]
        )
        fps = (
            list(fingerprints)
            if fingerprints is not None
            else [fingerprint(q, m) for q, m in zip(queries, maps)]
        )
        answers: Dict[int, tuple] = {}  # idx -> (source, plan, cost, decision)
        rollout_fp: Dict[str, List[int]] = {}
        for idx, (query, fp) in enumerate(zip(queries, fps)):
            if fp in rollout_fp:  # duplicate inside this burst
                rollout_fp[fp].append(idx)
                continue
            entry = self.cache.get(fp)
            if entry is not None:
                answers[idx] = self._serve_hit(query, maps[idx], entry)
            elif query.n_relations > self.featurizer.max_relations:
                answers[idx] = self._expert_direct(query, maps[idx], fp, epoch)
            else:
                rollout_fp[fp] = [idx]

        if rollout_fp:
            indices = [idxs[0] for idxs in rollout_fp.values()]
            records = self.engine.rollout([queries[i] for i in indices])
            for idxs, record in zip(rollout_fp.values(), records):
                first = idxs[0]
                answer, entry = self._serve_rollout(
                    record, maps[first], fps[first], epoch
                )
                answers[first] = answer
                # Alias-renamed duplicates of the same fingerprint still
                # need their plan expressed in their own aliases.
                source, _plan, _cost, decision = answer
                for idx in idxs[1:]:
                    _, plan, cost, _ = self._serve_hit(
                        queries[idx], maps[idx], entry
                    )
                    answers[idx] = (source, plan, cost, decision)

        latency_ms = (time.perf_counter() - start) * 1000.0
        served: List[ServedPlan] = []
        for idx, (query, fp) in enumerate(zip(queries, fps)):
            source, plan, cost, decision = answers[idx]
            self.stats.requests += 1
            self._count(source)
            self._latencies.append(latency_ms)
            served.append(
                ServedPlan(
                    query_name=query.name,
                    fingerprint=fp,
                    plan=plan,
                    cost=cost,
                    source=source,
                    latency_ms=latency_ms,
                    decision=decision,
                )
            )
        return served

    # ------------------------------------------------------------------
    def _serve_hit(self, query: Query, names: Dict[str, str], entry: _CacheEntry) -> tuple:
        """Serve a cached entry, translating it into the requester's
        aliases when the hit came from an alias-renamed equivalent."""
        if names == entry.alias_map:
            return ("cache", entry.plan, entry.cost, None)
        # canonical name -> requester alias, composed with the origin's
        # alias -> canonical map, gives origin alias -> requester alias.
        requester_of = {canon: alias for alias, canon in names.items()}
        rename = {
            origin_alias: requester_of[canon]
            for origin_alias, canon in entry.alias_map.items()
        }
        tree = _rename_tree(entry.tree, rename)
        result = self.planner.evaluate_tree(tree, query)
        return ("cache", result.plan, result.cost.total, None)

    def _expert_direct(
        self, query: Query, names: Dict[str, str], fp: str, epoch: int
    ) -> tuple:
        """Oversize queries bypass the policy entirely."""
        result = self.router.expert_result(query, fp)
        entry = _CacheEntry(
            plan=result.plan,
            cost=result.cost.total,
            origin="expert",
            tree=result.join_tree,
            alias_map=names,
        )
        if self.db.stats_epoch == epoch:
            self.cache.put(fp, entry, tables=query.relations.values())
        return ("expert", entry.plan, entry.cost, None)

    def _serve_rollout(
        self, record: RolloutRecord, names: Dict[str, str], fp: str, epoch: int
    ) -> tuple:
        query = record.query
        learned = self.planner.evaluate_tree(record.tree, query)
        decision = self.router.decide(query, learned.cost.total, fp)
        if decision.use_learned:
            source = "policy"
            entry = _CacheEntry(
                plan=learned.plan,
                cost=learned.cost.total,
                origin=source,
                tree=record.tree,
                alias_map=names,
            )
        else:
            source = "fallback"
            expert = self.router.expert_result(query, fp)
            entry = _CacheEntry(
                plan=expert.plan,
                cost=expert.cost.total,
                origin=source,
                tree=expert.join_tree,
                alias_map=names,
            )
        if self.db.stats_epoch == epoch:
            self.cache.put(fp, entry, tables=query.relations.values())
        if self.experience is not None and record.transitions:
            self._collect(record, learned.plan, fp, source)
        return (source, entry.plan, entry.cost, decision), entry

    def _collect(
        self, record: RolloutRecord, learned_plan: PhysicalPlan, fp: str, source: str
    ) -> None:
        """Score the *learned* plan (even when the expert was served) and
        store the rollout as a terminal-reward trajectory."""
        outcome: PlanOutcome = self.reward_source.evaluate(learned_plan, record.query)
        last = record.transitions[-1]
        record.transitions[-1] = type(last)(
            last.state, last.mask, last.action, outcome.reward, last.log_prob
        )
        self.experience.add(
            Trajectory(
                transitions=record.transitions,
                info={
                    "outcome": outcome,
                    "query": record.query,
                    "plan": learned_plan,
                    "tree": record.tree,
                    "fingerprint": fp,
                    "source": source,
                },
            )
        )

    def _count(self, source: str) -> None:
        if source == "cache":
            self.stats.cache_served += 1
        elif source == "policy":
            self.stats.policy_served += 1
        elif source == "fallback":
            self.stats.fallbacks += 1
        else:
            self.stats.expert_served += 1

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def refresh_statistics(
        self,
        seed: int = 1,
        sample_size: int = 30_000,
        tables: Sequence[str] | None = None,
    ) -> None:
        """Re-ANALYZE the database and invalidate every cached decision
        that depended on the old statistics.

        With ``tables`` given, only those tables are re-sampled and only
        the cached plans / expert memos / sub-plan cost fragments that
        *read* one of them are evicted (the ``invalidations_partial``
        counters record how many) — everything else keeps serving warm.
        """
        self.db.analyze(seed=seed, sample_size=sample_size, tables=tables)
        self.invalidate_statistics_caches(tables=tables)

    def invalidate_statistics_caches(
        self, tables: Sequence[str] | None = None
    ) -> None:
        """Evict every cached decision staled by a statistics change.

        The eviction half of :meth:`refresh_statistics`: callers that
        re-ANALYZE the shared database once for several services (the
        concurrent front end's shards) invoke this on each of them.
        """
        memo = getattr(self.planner, "cost_memo", None)
        if tables is None:
            self.cache.clear()
            self.router.invalidate()
            if memo is not None:
                memo.clear()
        else:
            self.cache.invalidate_tables(tables)
            self.router.invalidate_tables(tables)
            if memo is not None:
                memo.invalidate_tables(tables)

    def latency_summary(self) -> Dict[str, float]:
        """p50/p95/mean of recent per-request latencies (ms)."""
        if not self._latencies:
            return {"p50_ms": 0.0, "p95_ms": 0.0, "mean_ms": 0.0}
        samples = np.asarray(self._latencies)
        return {
            "p50_ms": float(np.percentile(samples, 50)),
            "p95_ms": float(np.percentile(samples, 95)),
            "mean_ms": float(samples.mean()),
        }

    def counters(self) -> Dict[str, float]:
        """Everything an operator can inspect (``repro info``)."""
        out: Dict[str, float] = {
            "requests": self.stats.requests,
            "batches": self.stats.batches,
            "served_from_cache": self.stats.cache_served,
            "served_from_policy": self.stats.policy_served,
            "served_from_fallback": self.stats.fallbacks,
            "served_from_expert": self.stats.expert_served,
            "fallback_rate": round(self.stats.fallback_rate, 4),
            "guardrail_decisions": self.router.decisions,
            "forward_passes": self.engine.forward_passes,
            "states_scored": self.engine.states_scored,
            "cache_size": len(self.cache),
        }
        out.update(self.cache.stats.as_dict())
        memo = getattr(self.planner, "cost_memo", None)
        if memo is not None:
            out.update(memo.as_dict())
        if self.experience is not None:
            out.update(self.experience.as_dict())
        # Expert-lane counters: DP subsets enumerated / pruned plus
        # per-plan join-search latency percentiles for the fallback path.
        planner_counters = getattr(self.planner, "counters", None)
        if planner_counters is not None:
            out.update(planner_counters())
        return out
