"""The optimizer-as-a-service front end.

``OptimizerService.optimize`` answers one request; ``optimize_batch``
answers a concurrent burst. Behind the single API sit four cooperating
parts:

1. the **plan cache** — canonical-fingerprint keyed LRU (+TTL), so a
   repeated query shape costs a dictionary lookup, not a rollout;
2. the **micro-batch engine** — cache misses in a burst are rolled out
   in lockstep with stacked forward passes;
3. the **guardrail router** — every learned plan is compared against
   the expert's plan cost and replaced by the expert plan when the
   predicted regression exceeds the configured threshold;
4. the **experience buffer** — every policy rollout is recorded as a
   trajectory with its terminal reward, ready for
   ``Trainer.replay`` to retrain the policy hands-free.

Queries wider than the featurizer supports are routed straight to the
expert planner (and still cached), so the service never refuses a
request.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.core.featurize import QueryFeaturizer
from repro.core.rewards import CostModelReward, PlanOutcome
from repro.db.engine import Database
from repro.db.plans import JoinTree, PhysicalPlan
from repro.db.query import Query
from repro.obs import Telemetry
from repro.obs.metrics import MetricsRegistry
from repro.optimizer.memo import SubPlanCostMemo
from repro.optimizer.planner import Planner, PlanningTimeout
from repro.rl.env import Trajectory
from repro.serving.batching import MicroBatchEngine, RolloutRecord
from repro.serving.cache import PlanCache
from repro.serving.experience import ExperienceBuffer
from repro.serving.fingerprint import canonical_alias_map, fingerprint
from repro.serving.router import GuardrailDecision, GuardrailRouter

__all__ = [
    "ServingConfig",
    "ServedPlan",
    "OptimizerService",
    "legacy_counters",
]

#: Registry metric name -> the legacy ``counters()`` key it backs. One
#: table shared by :meth:`OptimizerService.counters` and
#: :meth:`~repro.serving.frontend.ServingFrontEnd.counters` — the
#: single home of the rollup rules that used to be hand-rolled in both.
#: Keys whose metric is absent from the registry (no memo attached, no
#: experience buffer) are simply omitted, preserving the old dict shape.
_LEGACY_COUNTER_KEYS = (
    ("repro_serving_requests_total", "requests"),
    ("repro_serving_batches_total", "batches"),
    ("repro_serving_cache_served_total", "served_from_cache"),
    ("repro_serving_policy_served_total", "served_from_policy"),
    ("repro_serving_fallback_served_total", "served_from_fallback"),
    ("repro_serving_expert_served_total", "served_from_expert"),
    ("repro_guardrail_decisions_total", "guardrail_decisions"),
    ("repro_policy_forward_passes_total", "forward_passes"),
    ("repro_policy_states_scored_total", "states_scored"),
    ("repro_cache_entries", "cache_size"),
    ("repro_cache_hits_total", "cache_hits"),
    ("repro_cache_misses_total", "cache_misses"),
    ("repro_cache_evictions_total", "cache_evictions"),
    ("repro_cache_expirations_total", "cache_expirations"),
    ("repro_cache_invalidations_total", "cache_invalidations"),
    ("repro_cache_invalidations_partial_total", "cache_invalidations_partial"),
    ("repro_costmemo_hits_total", "costmemo_hits"),
    ("repro_costmemo_misses_total", "costmemo_misses"),
    ("repro_costmemo_evictions_total", "costmemo_evictions"),
    (
        "repro_costmemo_invalidations_partial_total",
        "costmemo_invalidations_partial",
    ),
    ("repro_costmemo_entries", "costmemo_size"),
    ("repro_experience_entries", "experience_size"),
    ("repro_experience_added_total", "experience_added"),
    ("repro_experience_dropped_total", "experience_dropped"),
    ("repro_experience_degraded_tagged_total", "experience_degraded_tagged"),
    ("repro_expert_dp_subsets_total", "dp_subsets_enumerated"),
    ("repro_expert_dp_pruned_total", "dp_pruned"),
    ("repro_expert_dp_bound_fallbacks_total", "dp_bound_fallbacks"),
    ("repro_expert_plans_total", "expert_plans"),
    ("repro_serving_degraded_total", "served_degraded"),
    ("repro_serving_degraded_cache_total", "degraded_cache"),
    ("repro_serving_degraded_dp_total", "degraded_dp"),
    ("repro_serving_degraded_greedy_total", "degraded_greedy"),
    ("repro_guardrail_timeouts_total", "guardrail_timeouts"),
    ("repro_estimator_estimates_total", "estimator_estimates"),
    ("repro_estimator_fallbacks_total", "estimator_fallbacks"),
    ("repro_estimator_stale_fallbacks_total", "estimator_stale_fallbacks"),
)


def legacy_counters(registry: MetricsRegistry) -> Dict[str, float]:
    """The classic operator ``counters()`` dict, derived from a metrics
    registry (a shard's own, or :meth:`MetricsRegistry.merge` of many).

    Count-like values come straight from the (summed) metrics; the
    derived rates are recomputed from the summed numerators and
    denominators, so a multi-shard rollup is exact rather than an
    average of averages. Percentiles come from the pooled
    ``repro_expert_plan_ms`` histogram.
    """
    out: Dict[str, float] = {}
    for metric_name, key in _LEGACY_COUNTER_KEYS:
        metric = registry.get(metric_name)
        if metric is not None:
            out[key] = metric.value
    lookups = out.get("cache_hits", 0) + out.get("cache_misses", 0)
    out["cache_hit_rate"] = (
        round(out.get("cache_hits", 0) / lookups, 4) if lookups else 0.0
    )
    requests = out.get("requests", 0)
    out["fallback_rate"] = (
        round(out.get("served_from_fallback", 0) / requests, 4) if requests else 0.0
    )
    if "costmemo_hits" in out:
        memo_lookups = out["costmemo_hits"] + out.get("costmemo_misses", 0)
        out["costmemo_hit_rate"] = (
            round(out["costmemo_hits"] / memo_lookups, 4) if memo_lookups else 0.0
        )
    expert_hist = registry.get("repro_expert_plan_ms")
    if expert_hist is not None:
        out["expert_plan_ms_p50"] = round(expert_hist.quantile(0.50), 4)
        out["expert_plan_ms_p95"] = round(expert_hist.quantile(0.95), 4)
    return out


@dataclass(frozen=True)
class ServingConfig:
    """Knobs an operator tunes without touching code."""

    cache_capacity: int = 512
    cache_ttl_s: float | None = None
    #: Max tolerated learned/expert predicted-cost ratio; None disables
    #: the guardrail (the expert is never consulted on the serve path).
    regression_threshold: float | None = 1.2
    max_batch_size: int = 64
    forbid_cross_products: bool = False
    collect_experience: bool = True
    experience_capacity: int = 10_000
    #: Kept for config compatibility: request-latency percentiles now
    #: come from a cumulative log-bucket histogram (fixed memory, no
    #: window), so this knob no longer bounds anything.
    latency_window: int = 8192
    #: Max queries queued via :meth:`OptimizerService.submit` awaiting a
    #: :meth:`~OptimizerService.flush` — backpressure instead of an
    #: unbounded pending list.
    max_pending: int = 4096
    #: Wall-clock cap on the degradation ladder's budgeted-DP rung (the
    #: non-exact pruned bitset search run when the policy failed). The
    #: request's own remaining deadline budget tightens it further.
    degraded_dp_budget_ms: float = 25.0


@dataclass(frozen=True)
class ServedPlan:
    """The service's answer to one optimization request."""

    query_name: str
    fingerprint: str
    plan: PhysicalPlan
    cost: float
    #: "cache" | "policy" | "fallback" | "expert" | "degraded_cache" |
    #: "degraded_dp" | "degraded_greedy"
    source: str
    latency_ms: float
    decision: GuardrailDecision | None = None
    #: How many serve attempts the front end made (1 = first try).
    attempts: int = 1
    #: Which promoted policy generation answered (monotonic across the
    #: retraining daemon's hot-swaps; 1 = the initially deployed policy).
    policy_version: int = 1
    #: Which cardinality lane (``Database.estimator_lane``) was active
    #: when this batch planned: "histogram" | "learned" | "pessimistic".
    estimator_lane: str = "histogram"


@dataclass
class _CacheEntry:
    """A cached answer plus what is needed to serve it to an
    alias-renamed (fingerprint-equivalent) requester: the join tree and
    the origin query's alias -> canonical-name map."""

    plan: PhysicalPlan
    cost: float
    origin: str  # the source that first produced this plan
    tree: JoinTree
    alias_map: Dict[str, str]


@dataclass
class ServiceStats:
    requests: int = 0
    batches: int = 0
    policy_served: int = 0
    fallbacks: int = 0
    expert_served: int = 0
    cache_served: int = 0
    #: Requests answered by the degradation ladder (policy failed), in
    #: total and broken out per rung.
    degraded_served: int = 0
    degraded_cache: int = 0
    degraded_dp: int = 0
    degraded_greedy: int = 0

    @property
    def fallback_rate(self) -> float:
        return self.fallbacks / self.requests if self.requests else 0.0


def _rename_tree(tree: JoinTree, rename: Dict[str, str]) -> JoinTree:
    """Rebuild a join tree with every leaf alias translated."""
    if tree.is_leaf:
        return JoinTree.leaf(rename[tree.alias])
    return JoinTree.join(
        _rename_tree(tree.left, rename), _rename_tree(tree.right, rename)
    )


class OptimizerService:
    """Fronts the learned policy and the expert planner behind one API."""

    def __init__(
        self,
        db: Database,
        agent_or_policy,
        planner: Planner | None = None,
        featurizer: QueryFeaturizer | None = None,
        config: ServingConfig | None = None,
        reward_source=None,
        clock=time.monotonic,
        telemetry: Telemetry | None = None,
        db_metrics: bool = True,
    ) -> None:
        self.db = db
        #: Whether this service's registry also exposes database-level
        #: metrics (the cardinality estimator's counters). Thread-mode
        #: shards share one Database: the front end enables this on
        #: shard 0 only, so a registry merge does not multiply the same
        #: underlying counts by the shard fan-out. Process-mode workers
        #: each own their Database copy and keep the default.
        self.db_metrics = db_metrics
        # Agents (PPO/REINFORCE) carry their CategoricalPolicy in .policy;
        # a bare policy object is accepted too.
        self.policy = getattr(agent_or_policy, "policy", agent_or_policy)
        self.planner = planner or Planner(db, cost_memo=SubPlanCostMemo())
        self.featurizer = featurizer or QueryFeaturizer(db.schema)
        self.config = config or ServingConfig()
        self.reward_source = reward_source or CostModelReward(db)
        self.stats = ServiceStats()
        self.cache = PlanCache(
            capacity=self.config.cache_capacity,
            ttl_s=self.config.cache_ttl_s,
            clock=clock,
        )
        self.router = GuardrailRouter(self.planner, self.config.regression_threshold)
        self.engine = MicroBatchEngine(
            self.policy,
            self.featurizer,
            db,
            max_batch_size=self.config.max_batch_size,
            forbid_cross_products=self.config.forbid_cross_products,
        )
        self.experience: ExperienceBuffer | None = (
            ExperienceBuffer(self.config.experience_capacity)
            if self.config.collect_experience
            else None
        )
        #: Shared telemetry spine (tracing + events); ``None`` keeps the
        #: service trace-free. The metrics registry below is independent
        #: of it — always present, pull-style, free on the hot path.
        self.telemetry = telemetry
        #: Optional :class:`~repro.serving.faults.FaultInjector`. The
        #: service's own injection site is the ``stats_race`` kind — a
        #: statistics-epoch bump racing a batch (see
        #: :meth:`optimize_batch`); it also cascades to the micro-batch
        #: engine for ``policy_nan`` faults.
        self.fault_injector = None
        #: Generation of the weights currently serving. The retraining
        #: daemon bumps this under the engine's inference lock at every
        #: hot-swap/rollback; requests snapshot it per batch.
        self.policy_version = 1
        self.registry = MetricsRegistry()
        self.request_ms_hist = self.registry.histogram(
            "repro_serving_request_ms",
            "per-request serve latency (batch-attributed)",
        )
        self._register_metrics()
        self._pending: List[Query] = []
        #: Identities of queries in the pending window, for an O(1)
        #: duplicate-submission check (objects stay alive in _pending,
        #: so ids cannot be recycled while tracked here).
        self._pending_ids: set = set()
        self._closed = False

    def _register_metrics(self) -> None:
        """Expose every serving stat as a pull-style registry metric.

        The existing exact stats objects (locked dataclasses, engine
        attributes, container lengths) stay the single source of truth;
        the registry reads them through callbacks, so nothing is counted
        twice and the hot path gains no new writes.
        """
        reg = self.registry
        reg.counter_fn(
            "repro_serving_requests_total",
            lambda: self.stats.requests,
            "requests served",
        )
        reg.counter_fn(
            "repro_serving_batches_total",
            lambda: self.stats.batches,
            "micro-batches served",
        )
        reg.counter_fn(
            "repro_serving_cache_served_total",
            lambda: self.stats.cache_served,
            "requests answered from the plan cache",
        )
        reg.counter_fn(
            "repro_serving_policy_served_total",
            lambda: self.stats.policy_served,
            "requests answered by the learned policy",
        )
        reg.counter_fn(
            "repro_serving_fallback_served_total",
            lambda: self.stats.fallbacks,
            "requests answered by the guardrail fallback",
        )
        reg.counter_fn(
            "repro_serving_expert_served_total",
            lambda: self.stats.expert_served,
            "oversize requests routed straight to the expert",
        )
        reg.counter_fn(
            "repro_guardrail_decisions_total",
            lambda: self.router.decisions,
            "learned-vs-expert comparisons made",
        )
        reg.counter_fn(
            "repro_guardrail_timeouts_total",
            lambda: self.router.timeouts,
            "guardrail comparisons skipped on expert-search timeout",
        )
        reg.counter_fn(
            "repro_serving_degraded_total",
            lambda: self.stats.degraded_served,
            "requests answered by the degradation ladder",
        )
        reg.counter_fn(
            "repro_serving_degraded_cache_total",
            lambda: self.stats.degraded_cache,
            "degraded requests answered from the expert memo",
        )
        reg.counter_fn(
            "repro_serving_degraded_dp_total",
            lambda: self.stats.degraded_dp,
            "degraded requests answered by the budgeted DP rung",
        )
        reg.counter_fn(
            "repro_serving_degraded_greedy_total",
            lambda: self.stats.degraded_greedy,
            "degraded requests answered by the greedy floor",
        )
        reg.counter_fn(
            "repro_policy_forward_passes_total",
            lambda: self.engine.forward_passes,
            "batched policy forward passes",
        )
        reg.counter_fn(
            "repro_policy_states_scored_total",
            lambda: self.engine.states_scored,
            "states scored across forward passes",
        )
        reg.register(self.engine.forward_ms_hist)
        reg.gauge_fn(
            "repro_cache_entries", lambda: len(self.cache), "live plan-cache entries"
        )
        cache_stats = self.cache.stats
        reg.counter_fn(
            "repro_cache_hits_total", lambda: cache_stats.hits, "plan-cache hits"
        )
        reg.counter_fn(
            "repro_cache_misses_total", lambda: cache_stats.misses, "plan-cache misses"
        )
        reg.counter_fn(
            "repro_cache_evictions_total",
            lambda: cache_stats.evictions,
            "LRU evictions",
        )
        reg.counter_fn(
            "repro_cache_expirations_total",
            lambda: cache_stats.expirations,
            "TTL expirations",
        )
        reg.counter_fn(
            "repro_cache_invalidations_total",
            lambda: cache_stats.invalidations,
            "entries dropped by full invalidation",
        )
        reg.counter_fn(
            "repro_cache_invalidations_partial_total",
            lambda: cache_stats.invalidations_partial,
            "entries dropped by table-scoped invalidation",
        )
        memo = getattr(self.planner, "cost_memo", None)
        if memo is not None:
            reg.counter_fn(
                "repro_costmemo_hits_total", lambda: memo.hits, "sub-plan memo hits"
            )
            reg.counter_fn(
                "repro_costmemo_misses_total",
                lambda: memo.misses,
                "sub-plan memo misses",
            )
            reg.counter_fn(
                "repro_costmemo_evictions_total",
                lambda: memo.evictions,
                "sub-plan memo evictions",
            )
            reg.counter_fn(
                "repro_costmemo_invalidations_partial_total",
                lambda: memo.invalidations_partial,
                "memo entries dropped by table-scoped invalidation",
            )
            reg.gauge_fn(
                "repro_costmemo_entries", lambda: len(memo), "live memo entries"
            )
        if self.experience is not None:
            experience = self.experience
            reg.gauge_fn(
                "repro_experience_entries",
                lambda: len(experience),
                "trajectories buffered for retraining",
            )
            reg.counter_fn(
                "repro_experience_added_total",
                lambda: experience.added,
                "trajectories collected",
            )
            reg.counter_fn(
                "repro_experience_dropped_total",
                lambda: experience.dropped,
                "trajectories dropped by the ring bound",
            )
            reg.counter_fn(
                "repro_experience_degraded_tagged_total",
                lambda: experience.degraded_tagged,
                "buffered trajectories tagged as degraded serves "
                "(excluded from retraining)",
            )
        if self.db_metrics:
            db = self.db
            reg.counter_fn(
                "repro_estimator_estimates_total",
                lambda: db.estimator().counts.get("estimates", 0),
                "alias-set cardinality estimates served",
            )
            reg.counter_fn(
                "repro_estimator_fallbacks_total",
                lambda: db.estimator().counts.get("fallbacks", 0),
                "estimates answered by the histogram fallback",
            )
            reg.counter_fn(
                "repro_estimator_stale_fallbacks_total",
                lambda: db.estimator().counts.get("stale_fallbacks", 0),
                "fallbacks forced by post-ANALYZE epoch staleness",
            )
            reg.gauge_fn(
                "repro_estimator_stale",
                lambda: 1.0 if db.estimator_probe().get("stale") else 0.0,
                "1 when the active lane holds estimates stale vs table epochs",
            )
            for lane in ("histogram", "learned", "pessimistic"):
                reg.gauge_fn(
                    f"repro_estimator_lane_{lane}",
                    lambda lane=lane: 1.0 if db.estimator_lane == lane else 0.0,
                    f"1 when the {lane} cardinality lane is active",
                )
        register_planner = getattr(self.planner, "register_metrics", None)
        if register_planner is not None:
            register_planner(reg)

    # ------------------------------------------------------------------
    # Request paths
    # ------------------------------------------------------------------
    def optimize(self, query: Query) -> ServedPlan:
        """Answer one request (a micro-batch of one)."""
        return self.optimize_batch([query])[0]

    def submit(self, query: Query) -> int:
        """Queue a request for the next :meth:`flush`; returns its slot.

        The slot is the query's index in the list :meth:`flush` returns
        — results always come back in submit order. Raises
        ``RuntimeError`` once the service is closed or the pending queue
        is full (``ServingConfig.max_pending``), and ``ValueError`` on a
        duplicate submission of the same query object within one
        pending window (a double-submit bug in the caller: each slot
        must resolve to exactly one request).
        """
        if self._closed:
            raise RuntimeError("submit() after close(): service no longer accepts work")
        if len(self._pending) >= self.config.max_pending:
            raise RuntimeError(
                f"pending queue full ({self.config.max_pending}); flush() first"
            )
        if id(query) in self._pending_ids:
            raise ValueError(
                f"query {query.name!r} already submitted in this pending window"
            )
        self._pending.append(query)
        self._pending_ids.add(id(query))
        return len(self._pending) - 1

    def flush(self) -> List[ServedPlan]:
        """Serve every queued request as one micro-batch.

        Plans come back in submit order: ``flush()[slot]`` is the
        answer for the submission that returned ``slot``.
        """
        pending, self._pending = self._pending, []
        self._pending_ids.clear()
        return self.optimize_batch(pending) if pending else []

    def close(self) -> List[ServedPlan]:
        """Serve whatever is still pending, then refuse new work.

        Idempotent; returns the final flush so no submitted query is
        ever silently dropped.
        """
        served = self.flush()
        self._closed = True
        return served

    def install_fault_injector(self, injector) -> None:
        """Arm the chaos harness on this service and its engine."""
        self.fault_injector = injector
        self.engine.fault_injector = injector

    def optimize_batch(
        self,
        queries: Sequence[Query],
        fingerprints: Sequence[str] | None = None,
        alias_maps: Sequence[Dict[str, str]] | None = None,
        traces: Sequence | None = None,
        budgets_ms: Sequence[float | None] | None = None,
        collect=True,
    ) -> List[ServedPlan]:
        """Serve a concurrent burst: cache first, then batched rollout.

        ``fingerprints``/``alias_maps`` let a caller that already
        canonicalized the queries (the concurrent front end computes
        fingerprints to route submissions to shards) skip recomputing
        them here; both must align with ``queries`` index-for-index.

        ``traces`` (index-aligned, entries may be ``None``) are
        per-request :class:`~repro.obs.trace.Trace` objects owned by the
        caller — each gets a ``serve`` span with cache/policy/guardrail/
        expert children, and the caller finishes them. Without
        ``traces``, a service holding enabled telemetry begins and
        finishes its own (the synchronous path).

        ``budgets_ms`` (index-aligned, entries may be ``None``) are
        per-request *remaining deadline budgets* in milliseconds. They
        bound the slow planner work inside the batch — the guardrail's
        expert search and the degradation ladder's DP rung — via the
        DP's check-deadline hook; they do not abort a batch mid-serve
        (the front end checks deadlines at pickup).

        ``collect`` gates experience collection, either one bool for
        the whole batch or an index-aligned sequence — the front end
        passes per-request flags so a *retried* request never
        double-collects its rollout (collection mutates the experience
        buffer; everything else on this path is idempotent).

        A policy failure (non-finite forward pass, injected fault,
        any exception out of the rollout) does not fail the batch:
        every rollout-bound request is answered by the **degradation
        ladder** instead — memoized expert plan, then a budgeted
        non-exact DP, then greedy — with ``degraded_*`` sources and a
        ``degraded_serve`` event per group.
        """
        if not queries:
            return []
        start = time.perf_counter()
        budgets = (
            list(budgets_ms) if budgets_ms is not None else [None] * len(queries)
        )
        if isinstance(collect, bool):
            collects = [collect] * len(queries)
        else:
            collects = list(collect)

        def remaining(idx: int) -> float | None:
            budget = budgets[idx]
            if budget is None:
                return None
            return budget - (time.perf_counter() - start) * 1000.0

        owns_traces = False
        if traces is None:
            if self.telemetry is not None and self.telemetry.enabled:
                traces = [
                    self.telemetry.begin_trace("optimize", query=q.name)
                    for q in queries
                ]
                owns_traces = True
            else:
                traces = [None] * len(queries)
        serve_spans = [
            t.start_span("serve", batch_size=len(queries)) if t is not None else None
            for t in traces
        ]
        # Plans computed in this batch are cached only if the database
        # statistics do not move underneath it — a refresh_statistics
        # racing the batch must not have its invalidation undone by a
        # late insert of a pre-ANALYZE plan.
        epoch = self.db.stats_epoch
        # One version stamp per batch: every answer in this burst was
        # produced by the weights live at batch start (the swap lock
        # excludes mid-rollout weight mutation).
        version = self.policy_version
        # Likewise one cardinality-lane stamp: estimator swaps go
        # through use_estimator()'s epoch bump, so a mid-batch swap
        # behaves like the stats race above (guarded cache puts skip).
        lane = self.db.estimator_lane
        self.stats.batches += 1
        if self.fault_injector is not None and self.fault_injector.fires(
            "stats_race", f"b{self.stats.batches}"
        ):
            # Chaos: an epoch bump lands *after* this batch captured its
            # epoch — exactly the ANALYZE race the guards above protect
            # against. Statistics are untouched (plans stay identical);
            # every epoch-guarded cache put in this batch is skipped.
            self.db.bump_stats_epoch()
        maps = (
            list(alias_maps)
            if alias_maps is not None
            else [canonical_alias_map(q) for q in queries]
        )
        fps = (
            list(fingerprints)
            if fingerprints is not None
            else [fingerprint(q, m) for q, m in zip(queries, maps)]
        )
        answers: Dict[int, tuple] = {}  # idx -> (source, plan, cost, decision)
        rollout_fp: Dict[str, List[int]] = {}
        for idx, (query, fp) in enumerate(zip(queries, fps)):
            trace, parent = traces[idx], serve_spans[idx]
            if trace is not None:
                trace.root.attrs.setdefault("fingerprint", fp)
                trace.root.attrs.setdefault("policy_version", version)
                trace.root.attrs.setdefault("estimator_lane", lane)
            if fp in rollout_fp:  # duplicate inside this burst
                rollout_fp[fp].append(idx)
                continue
            lookup = (
                trace.start_span("cache_lookup", parent=parent)
                if trace is not None
                else None
            )
            entry = self.cache.get(fp)
            if lookup is not None:
                lookup.attrs["hit"] = entry is not None
                trace.end_span(lookup)
            if entry is not None:
                answers[idx] = self._serve_hit(
                    query, maps[idx], entry, trace=trace, parent=parent
                )
            elif query.n_relations > self.featurizer.max_relations:
                answers[idx] = self._expert_direct(
                    query,
                    maps[idx],
                    fp,
                    epoch,
                    trace=trace,
                    parent=parent,
                    budget_ms=remaining(idx),
                )
            else:
                rollout_fp[fp] = [idx]

        if rollout_fp:
            indices = [idxs[0] for idxs in rollout_fp.values()]
            roll_start = time.perf_counter()
            records = None
            degrade_reason = None
            try:
                records = self.engine.rollout([queries[i] for i in indices])
            except Exception as exc:
                # The lockstep rollout failed for the whole miss set
                # (non-finite forward pass, injected fault, encoder
                # bug). The batch still answers: every rollout-bound
                # group drops to the degradation ladder below.
                degrade_reason = f"{type(exc).__name__}: {exc}"
            roll_ms = (time.perf_counter() - roll_start) * 1000.0
            for i in indices:
                if traces[i] is not None:
                    # The rollout is one lockstep pass over every miss in
                    # the burst; each participant's trace carries the full
                    # rollout duration plus how many rode along.
                    traces[i].record(
                        "policy_forward",
                        roll_ms,
                        parent=serve_spans[i],
                        rollout_batch=len(indices),
                        failed=records is None,
                    )
            groups: List[tuple] = []
            if records is not None:
                for idxs, record in zip(rollout_fp.values(), records):
                    first = idxs[0]
                    answer, entry = self._serve_rollout(
                        record,
                        maps[first],
                        fps[first],
                        epoch,
                        trace=traces[first],
                        parent=serve_spans[first],
                        budget_ms=remaining(first),
                        collect=collects[first],
                    )
                    groups.append((idxs, answer, entry))
            else:
                for idxs in rollout_fp.values():
                    first = idxs[0]
                    answer, entry = self._serve_degraded(
                        queries[first],
                        maps[first],
                        fps[first],
                        budget_ms=remaining(first),
                        reason=degrade_reason,
                        trace=traces[first],
                        parent=serve_spans[first],
                    )
                    groups.append((idxs, answer, entry))
            for idxs, answer, entry in groups:
                first = idxs[0]
                answers[first] = answer
                # Alias-renamed duplicates of the same fingerprint still
                # need their plan expressed in their own aliases.
                source, _plan, _cost, decision = answer
                for idx in idxs[1:]:
                    dup_trace, dup_parent = traces[idx], serve_spans[idx]
                    dup_span = (
                        dup_trace.start_span(
                            "cache_lookup",
                            parent=dup_parent,
                            hit=True,
                            burst_duplicate=True,
                        )
                        if dup_trace is not None
                        else None
                    )
                    _, plan, cost, _ = self._serve_hit(
                        queries[idx],
                        maps[idx],
                        entry,
                        trace=dup_trace,
                        parent=dup_parent,
                    )
                    if dup_span is not None:
                        dup_trace.end_span(dup_span)
                    answers[idx] = (source, plan, cost, decision)

        latency_ms = (time.perf_counter() - start) * 1000.0
        served: List[ServedPlan] = []
        for idx, (query, fp) in enumerate(zip(queries, fps)):
            source, plan, cost, decision = answers[idx]
            self.stats.requests += 1
            self._count(source)
            self.request_ms_hist.observe(latency_ms)
            trace = traces[idx]
            if trace is not None:
                span = serve_spans[idx]
                span.attrs["source"] = source
                trace.end_span(span)
                if owns_traces:
                    self.telemetry.finish_trace(trace, source=source)
            served.append(
                ServedPlan(
                    query_name=query.name,
                    fingerprint=fp,
                    plan=plan,
                    cost=cost,
                    source=source,
                    latency_ms=latency_ms,
                    decision=decision,
                    policy_version=version,
                    estimator_lane=lane,
                )
            )
        return served

    # ------------------------------------------------------------------
    def _serve_hit(
        self,
        query: Query,
        names: Dict[str, str],
        entry: _CacheEntry,
        trace=None,
        parent=None,
    ) -> tuple:
        """Serve a cached entry, translating it into the requester's
        aliases when the hit came from an alias-renamed equivalent."""
        if names == entry.alias_map:
            return ("cache", entry.plan, entry.cost, None)
        # canonical name -> requester alias, composed with the origin's
        # alias -> canonical map, gives origin alias -> requester alias.
        requester_of = {canon: alias for alias, canon in names.items()}
        rename = {
            origin_alias: requester_of[canon]
            for origin_alias, canon in entry.alias_map.items()
        }
        tree = _rename_tree(entry.tree, rename)
        build_start = time.perf_counter()
        result = self.planner.evaluate_tree(tree, query)
        if trace is not None:
            trace.record(
                "plan_construction",
                (time.perf_counter() - build_start) * 1000.0,
                parent=parent,
                renamed_hit=True,
            )
        return ("cache", result.plan, result.cost.total, None)

    def _expert_direct(
        self,
        query: Query,
        names: Dict[str, str],
        fp: str,
        epoch: int,
        trace=None,
        parent=None,
        budget_ms: float | None = None,
    ) -> tuple:
        """Oversize queries bypass the policy entirely. A budgeted
        expert search that times out drops to the degradation ladder
        (whose greedy floor always answers)."""
        try:
            result = self.router.expert_result(
                query, fp, trace=trace, parent=parent, budget_ms=budget_ms
            )
        except PlanningTimeout as exc:
            answer, _entry = self._serve_degraded(
                query,
                names,
                fp,
                budget_ms=budget_ms,
                reason=f"PlanningTimeout: {exc}",
                trace=trace,
                parent=parent,
            )
            return answer
        entry = _CacheEntry(
            plan=result.plan,
            cost=result.cost.total,
            origin="expert",
            tree=result.join_tree,
            alias_map=names,
        )
        if self.db.stats_epoch == epoch:
            self.cache.put(fp, entry, tables=query.relations.values())
        return ("expert", entry.plan, entry.cost, None)

    def _serve_rollout(
        self,
        record: RolloutRecord,
        names: Dict[str, str],
        fp: str,
        epoch: int,
        trace=None,
        parent=None,
        budget_ms: float | None = None,
        collect: bool = True,
    ) -> tuple:
        query = record.query
        build_start = time.perf_counter()
        learned = self.planner.evaluate_tree(record.tree, query)
        if trace is not None:
            trace.record(
                "plan_construction",
                (time.perf_counter() - build_start) * 1000.0,
                parent=parent,
            )
        guard_span = (
            trace.start_span("guardrail", parent=parent) if trace is not None else None
        )
        decision = self.router.decide(
            query,
            learned.cost.total,
            fp,
            trace=trace,
            parent=guard_span,
            budget_ms=budget_ms,
        )
        if guard_span is not None:
            guard_span.attrs["use_learned"] = decision.use_learned
            trace.end_span(guard_span)
        if decision.use_learned:
            source = "policy"
            entry = _CacheEntry(
                plan=learned.plan,
                cost=learned.cost.total,
                origin=source,
                tree=record.tree,
                alias_map=names,
            )
        else:
            source = "fallback"
            expert = self.router.expert_result(query, fp, trace=trace, parent=parent)
            entry = _CacheEntry(
                plan=expert.plan,
                cost=expert.cost.total,
                origin=source,
                tree=expert.join_tree,
                alias_map=names,
            )
            if trace is not None:
                trace.root.attrs["fallback_reason"] = "predicted_regression"
            if self.telemetry is not None and self.telemetry.enabled:
                regression = decision.predicted_regression
                self.telemetry.events.emit(
                    "guardrail_fallback",
                    query=query.name,
                    fingerprint=fp,
                    learned_cost=decision.learned_cost,
                    expert_cost=decision.expert_cost,
                    predicted_regression=(
                        None if regression is None else round(regression, 4)
                    ),
                    threshold=decision.threshold,
                )
        if self.db.stats_epoch == epoch:
            self.cache.put(fp, entry, tables=query.relations.values())
        if collect and self.experience is not None and record.transitions:
            self._collect(record, learned.plan, fp, source)
        return (source, entry.plan, entry.cost, decision), entry

    def _serve_degraded(
        self,
        query: Query,
        names: Dict[str, str],
        fp: str,
        budget_ms: float | None = None,
        reason: str | None = None,
        trace=None,
        parent=None,
    ) -> tuple:
        """The degradation ladder: answer a request whose policy rollout
        failed, trading plan quality for availability rung by rung.

        1. **Memoized expert plan** (``degraded_cache``): the guardrail
           already paid for an expert plan of this fingerprint — serve
           it (only when its aliases match the requester's; the memo
           stores no alias map).
        2. **Budgeted DP** (``degraded_dp``): a non-exact, hard-pruned
           bitset search under ``ServingConfig.degraded_dp_budget_ms``
           (tightened by the request's remaining deadline), interrupted
           mid-wave on expiry.
        3. **Greedy** (``degraded_greedy``): the bottom-up floor —
           milliseconds, always answers.

        Degraded plans are **never cached**: the next non-degraded
        request for this fingerprint must produce (and cache) a full-
        quality plan, not inherit the outage's compromise. Each
        degraded serve emits a ``degraded_serve`` event.
        """
        # The ladder degrades *transient* failures (policy NaNs, blown
        # budgets), not validation ones: a query naming tables the
        # schema does not have must fail loudly — every rung would
        # otherwise invent a "plan" over nonexistent data.
        unknown = sorted(
            {t for t in query.relations.values() if t not in self.db.tables}
        )
        if unknown:
            raise KeyError(
                f"query {query.name!r} references unknown tables {unknown}"
                + (f" (degraded after: {reason})" if reason else "")
            )
        span = (
            trace.start_span("degraded_serve", parent=parent, reason=reason)
            if trace is not None
            else None
        )
        cached = self.router.peek(fp)
        if cached is not None and set(cached.join_tree.aliases) == set(
            query.relations
        ):
            source = "degraded_cache"
            result = cached
        else:
            budget = self.config.degraded_dp_budget_ms
            if budget_ms is not None:
                budget = max(0.0, min(budget, budget_ms))
            result, lane = self.planner.degraded_plan(query, budget_ms=budget)
            source = f"degraded_{lane}"
        if span is not None:
            span.attrs["source"] = source
            trace.end_span(span)
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.events.emit(
                "degraded_serve",
                query=query.name,
                fingerprint=fp,
                source=source,
                reason=reason,
            )
        entry = _CacheEntry(
            plan=result.plan,
            cost=result.cost.total,
            origin=source,
            tree=result.join_tree,
            alias_map=names,
        )
        return (source, entry.plan, entry.cost, None), entry

    def _collect(
        self, record: RolloutRecord, learned_plan: PhysicalPlan, fp: str, source: str
    ) -> None:
        """Score the *learned* plan (even when the expert was served) and
        store the rollout as a terminal-reward trajectory."""
        outcome: PlanOutcome = self.reward_source.evaluate(learned_plan, record.query)
        last = record.transitions[-1]
        record.transitions[-1] = type(last)(
            last.state, last.mask, last.action, outcome.reward, last.log_prob
        )
        self.experience.add(
            Trajectory(
                transitions=record.transitions,
                info={
                    "outcome": outcome,
                    "query": record.query,
                    "plan": learned_plan,
                    "tree": record.tree,
                    "fingerprint": fp,
                    "source": source,
                    "degraded": source.startswith("degraded"),
                    "policy_version": self.policy_version,
                },
            )
        )

    def _count(self, source: str) -> None:
        if source == "cache":
            self.stats.cache_served += 1
        elif source == "policy":
            self.stats.policy_served += 1
        elif source == "fallback":
            self.stats.fallbacks += 1
        elif source.startswith("degraded_"):
            self.stats.degraded_served += 1
            if source == "degraded_cache":
                self.stats.degraded_cache += 1
            elif source == "degraded_dp":
                self.stats.degraded_dp += 1
            else:
                self.stats.degraded_greedy += 1
        else:
            self.stats.expert_served += 1

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def policy_weights(self) -> Dict[str, "np.ndarray"]:
        """Copies of the serving policy's parameter arrays, keyed by
        layer name — the broadcast payload for :meth:`apply_policy_weights`
        (snapshotted once per swap; plain ``{name: ndarray}`` so it
        crosses process boundaries out-of-band, never re-pickled per
        shard)."""
        params = self.engine.policy.net.net.params
        return {name: np.copy(arr) for name, arr in params.items()}

    def apply_policy_weights(
        self, params: Dict[str, "np.ndarray"], version: int
    ) -> None:
        """Install promoted weights in place and adopt their version.

        The executor-agnostic half of a hot-swap: the retraining daemon
        calls this directly on thread-mode shards and the process-mode
        proxy forwards it over the control channel. Copies under the
        engine's inference lock (when installed) so no forward pass sees
        half-swapped weights; shapes must match exactly — promotion
        never changes the serving architecture.
        """
        lock = self.engine.inference_lock
        ctx = lock if lock is not None else nullcontext()
        target = self.engine.policy.net.net.params
        unknown = set(params) - set(target)
        if unknown:
            raise KeyError(f"unknown policy parameters: {sorted(unknown)}")
        with ctx:
            for name, arr in params.items():
                target[name][...] = arr
            self.policy_version = version

    def refresh_statistics(
        self,
        seed: int = 1,
        sample_size: int = 30_000,
        tables: Sequence[str] | None = None,
    ) -> None:
        """Re-ANALYZE the database and invalidate every cached decision
        that depended on the old statistics.

        With ``tables`` given, only those tables are re-sampled and only
        the cached plans / expert memos / sub-plan cost fragments that
        *read* one of them are evicted (the ``invalidations_partial``
        counters record how many) — everything else keeps serving warm.
        """
        self.db.analyze(seed=seed, sample_size=sample_size, tables=tables)
        self.invalidate_statistics_caches(tables=tables)

    def invalidate_statistics_caches(
        self, tables: Sequence[str] | None = None
    ) -> None:
        """Evict every cached decision staled by a statistics change.

        The eviction half of :meth:`refresh_statistics`: callers that
        re-ANALYZE the shared database once for several services (the
        concurrent front end's shards) invoke this on each of them.
        """
        memo = getattr(self.planner, "cost_memo", None)
        if tables is None:
            self.cache.clear()
            self.router.invalidate()
            if memo is not None:
                memo.clear()
        else:
            self.cache.invalidate_tables(tables)
            self.router.invalidate_tables(tables)
            if memo is not None:
                memo.invalidate_tables(tables)
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.events.emit(
                "stats_invalidation",
                scope="all" if tables is None else "tables",
                tables=None if tables is None else sorted(tables),
                stats_epoch=self.db.stats_epoch,
            )

    def latency_summary(self) -> Dict[str, float]:
        """p50/p95/mean per-request latency (ms), from the shared
        log-bucket histogram (worst-case percentile error documented in
        :mod:`repro.obs.metrics`; the mean is exact)."""
        hist = self.request_ms_hist
        if not hist.count:
            return {"p50_ms": 0.0, "p95_ms": 0.0, "mean_ms": 0.0}
        return {
            "p50_ms": hist.quantile(0.50),
            "p95_ms": hist.quantile(0.95),
            "mean_ms": hist.mean,
        }

    def counters(self) -> Dict[str, float]:
        """Everything an operator can inspect (``repro info``) — the
        legacy dict shape, derived from the metrics registry."""
        return legacy_counters(self.registry)

    def metrics_registry(self) -> MetricsRegistry:
        """This service's registry merged with the trace-derived
        metrics when telemetry is attached (``repro metrics`` for a
        single-service stack)."""
        registries = [self.registry]
        if self.telemetry is not None:
            registries.append(self.telemetry.registry)
        return MetricsRegistry.merge(registries)
