"""Optimizer-as-a-service: the serving layer over the learned policy.

The training stack (``repro.core``) produces a policy; this package
puts it behind a production-shaped ``optimize(query)`` API:

- :mod:`repro.serving.fingerprint` — canonical query fingerprints
  (alias-, order-, and name-independent cache keys);
- :mod:`repro.serving.cache` — LRU+TTL plan cache with hit/miss/
  eviction statistics and invalidation on statistics refresh;
- :mod:`repro.serving.batching` — micro-batched greedy rollout that
  scores every in-flight query's state in one stacked forward pass;
- :mod:`repro.serving.router` — Bao/Neo-style guardrail that falls
  back to the expert plan on predicted cost regressions;
- :mod:`repro.serving.experience` — replay buffer of served rollouts
  for hands-free retraining via ``Trainer.replay``;
- :mod:`repro.serving.service` — :class:`OptimizerService`, the
  synchronous engine that wires the four together (one per shard);
- :mod:`repro.serving.sharding` — consistent-hash ring routing query
  fingerprints to worker shards;
- :mod:`repro.serving.frontend` — :class:`ServingFrontEnd`, the
  concurrent queue-and-flush front end: ``submit()`` returns a future,
  a background flusher batches on a batch-or-timeout deadline, and N
  worker shards (each a private ``OptimizerService``) serve the
  flushes;
- :mod:`repro.serving.procpool` / :mod:`repro.serving.transport` /
  :mod:`repro.serving.shm` — the GIL escape: ``executor="process"``
  promotes each shard to a spawned worker process
  (:class:`ProcessWorkerClient` proxies it), speaking a length-prefixed
  pipe protocol with large buffers diverted through shared-memory
  rings, with a control channel for stats-epoch bumps, policy
  hot-swaps, breaker state, and chaos arming;
- :mod:`repro.serving.errors` — the typed failure hierarchy
  (:class:`OptimizeError` and friends) every refused or abandoned
  request resolves with;
- :mod:`repro.serving.supervisor` — per-shard circuit breakers and the
  supervisor thread that respawns dead workers;
- :mod:`repro.serving.faults` — the seeded chaos harness
  (:class:`FaultInjector`) that deterministically breaks the serving
  path to prove the fault tolerance works;
- :mod:`repro.serving.learning` — the hands-free loop:
  :class:`RetrainingDaemon` retrains a shadow policy off the
  experience buffers, gates it against the exact-DP oracle
  (:class:`EvalGate`), hot-swaps promoted weights across shards with
  monotonic versioning, rolls bad swaps back automatically, and adapts
  the guardrail threshold from observed latencies
  (:class:`AdaptiveGuardrail`).

Command line: ``python -m repro serve-bench`` drives a synthetic
request stream (multi-threaded and open-loop with ``--concurrency``)
and reports throughput, latency percentiles, cache hit rate, and
fallback rate.
"""

from repro.serving.batching import MicroBatchEngine, RolloutRecord
from repro.serving.cache import CacheStats, PlanCache
from repro.serving.errors import (
    CircuitOpen,
    DeadlineExceeded,
    InjectedFault,
    LoadShedded,
    OptimizeError,
    RetriesExhausted,
    ServiceClosed,
    ShardFailed,
    WorkerProcessDied,
)
from repro.serving.experience import ExperienceBuffer, is_degraded
from repro.serving.faults import FaultConfig, FaultInjector, seeded_uniform
from repro.serving.fingerprint import canonical_alias_map, canonical_text, fingerprint
from repro.serving.frontend import FrontEndConfig, FrontEndStats, ServingFrontEnd
from repro.serving.procpool import ProcessWorkerClient, SpanRecorder, WorkerSpec
from repro.serving.shm import ShmRing
from repro.serving.transport import FrameConn, TransportStats
from repro.serving.learning import (
    AdaptiveGuardrail,
    EvalGate,
    GateVerdict,
    LearningConfig,
    RetrainingDaemon,
)
from repro.serving.router import GuardrailDecision, GuardrailRouter
from repro.serving.service import OptimizerService, ServedPlan, ServingConfig
from repro.serving.sharding import HashRing
from repro.serving.supervisor import CircuitBreaker, ShardSupervisor

__all__ = [
    "AdaptiveGuardrail",
    "CacheStats",
    "CircuitBreaker",
    "CircuitOpen",
    "DeadlineExceeded",
    "EvalGate",
    "ExperienceBuffer",
    "FaultConfig",
    "FaultInjector",
    "FrameConn",
    "FrontEndConfig",
    "FrontEndStats",
    "GateVerdict",
    "GuardrailDecision",
    "GuardrailRouter",
    "HashRing",
    "InjectedFault",
    "LearningConfig",
    "LoadShedded",
    "MicroBatchEngine",
    "OptimizeError",
    "OptimizerService",
    "PlanCache",
    "ProcessWorkerClient",
    "RetrainingDaemon",
    "RetriesExhausted",
    "RolloutRecord",
    "ServedPlan",
    "ServiceClosed",
    "ServingConfig",
    "ServingFrontEnd",
    "ShardFailed",
    "ShardSupervisor",
    "ShmRing",
    "SpanRecorder",
    "TransportStats",
    "WorkerProcessDied",
    "WorkerSpec",
    "canonical_alias_map",
    "canonical_text",
    "fingerprint",
    "is_degraded",
    "seeded_uniform",
]
