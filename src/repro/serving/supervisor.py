"""Shard supervision: circuit breakers and the worker-respawn loop.

Two cooperating pieces keep a broken shard from taking the front end
down with it:

- :class:`CircuitBreaker` — one per shard, counting *consecutive*
  failures. Past the threshold it opens: the router stops sending the
  shard new work (requests fail over to the next shard on the hash
  ring, or fail fast with ``CircuitOpen`` when every candidate is
  open). After a cooldown it half-opens and admits a limited number of
  probe requests; one success closes it, one failure re-opens it.
- :class:`ShardSupervisor` — a daemon thread that health-checks the
  front end's worker and flusher threads. A dead worker (unhandled
  ``BaseException`` escaping the per-batch guard, or an injected crash)
  is respawned with a **rebuilt** service — fresh policy copy, planner,
  caches — because a worker that died mid-batch may hold arbitrarily
  corrupt state. While the shard is down, the front end reroutes its
  hash-ring range to the surviving shards; the supervisor's respawn
  restores the original routing.

The supervisor polls on a short interval but can be woken immediately
(:meth:`ShardSupervisor.poke`) by the front end's death handler, so
respawn latency is bounded by the restart cost, not the poll interval.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

__all__ = ["CircuitBreaker", "ShardSupervisor"]


class CircuitBreaker:
    """Per-shard consecutive-failure circuit breaker.

    States: ``closed`` (normal), ``open`` (rejecting, cooling down),
    ``half_open`` (admitting up to ``probe_limit`` probes). Thread-safe;
    ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 1.0,
        probe_limit: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.probe_limit = probe_limit
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_inflight = 0
        self.trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def _transition(self, new_state: str) -> None:
        # Caller holds self._lock.
        old = self._state
        if old == new_state:
            return
        self._state = new_state
        if self._on_transition is not None:
            # Called under the breaker lock: the callback must not call
            # back into the breaker (ours emit events/bump counters).
            self._on_transition(old, new_state)

    def allow(self) -> bool:
        """May a request be routed to this shard right now?

        In ``half_open`` state, a ``True`` answer consumes a probe slot
        — the caller *must* follow up with ``record_success`` or
        ``record_failure``.
        """
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._clock() - self._opened_at >= self.cooldown_s:
                    self._transition("half_open")
                    self._probes_inflight = 0
                else:
                    return False
            # half_open: admit a bounded number of probes.
            if self._probes_inflight < self.probe_limit:
                self._probes_inflight += 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state == "half_open":
                self._probes_inflight = max(0, self._probes_inflight - 1)
                self._transition("closed")

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state == "half_open":
                # The probe failed: straight back to open, fresh cooldown.
                self._probes_inflight = max(0, self._probes_inflight - 1)
                self._opened_at = self._clock()
                self.trips += 1
                self._transition("open")
            elif (
                self._state == "closed"
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._opened_at = self._clock()
                self.trips += 1
                self._transition("open")

    def reset(self) -> None:
        """Force-close (a fresh worker starts with a clean slate)."""
        with self._lock:
            self._consecutive_failures = 0
            self._probes_inflight = 0
            self._transition("closed")

    def retry_after(self) -> float:
        """Seconds until the breaker could next admit work (0 if now)."""
        with self._lock:
            if self._state != "open":
                return 0.0
            return max(0.0, self.cooldown_s - (self._clock() - self._opened_at))


class ShardSupervisor:
    """Daemon thread that respawns dead workers (and a dead flusher).

    The front end exposes the checks (``_dead_shards()``) and the
    repairs (``_restart_shard``/``_restart_flusher``); the supervisor
    owns only the *when*. ``poke()`` wakes it immediately — the front
    end calls it from the worker-death handler so a crash is repaired
    in milliseconds, not at the next poll tick.
    """

    def __init__(self, frontend, interval_s: float = 0.05) -> None:
        self._frontend = frontend
        self._interval_s = interval_s
        self._wake = threading.Event()
        self._stopped = threading.Event()
        self.restarts = 0
        self._thread = threading.Thread(
            target=self._run, name="serving-supervisor", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def poke(self) -> None:
        self._wake.set()

    def stop(self, timeout: float = 5.0) -> None:
        self._stopped.set()
        self._wake.set()
        if self._thread.is_alive():
            self._thread.join(timeout=timeout)

    def _run(self) -> None:
        while not self._stopped.is_set():
            self._wake.wait(timeout=self._interval_s)
            self._wake.clear()
            if self._stopped.is_set():
                return
            try:
                self._check()
            except Exception:
                # The supervisor must outlive anything the repair path
                # throws; a failed repair is retried next tick.
                continue

    def _check(self) -> None:
        frontend = self._frontend
        for shard in frontend._dead_shards():
            frontend._restart_shard(shard)
            self.restarts += 1
        if frontend._flusher_dead():
            frontend._restart_flusher()
        # Process mode: exit-code reaping of worker processes whose
        # shard thread sits idle, plus the heartbeat that catches hung
        # (alive but unresponsive) workers.
        check_processes = getattr(frontend, "_check_worker_processes", None)
        if check_processes is not None:
            check_processes()
