"""Micro-batched greedy inference over many queries at once.

A serving layer sees bursts of concurrent optimization requests. The
per-query loop (featurize → forward pass of batch 1 → join, repeated
until one tree remains) wastes the policy network's ability to score a
whole matrix of states in one call — ``CategoricalPolicy.probabilities``
already takes ``(states, masks)`` arrays. This engine runs all active
episodes in lockstep: at every round it stacks the state vectors of
every unfinished query, makes one batched forward pass (chunked at
``max_batch_size``), and applies each query's chosen join. Queries
retire as their forests collapse to a single tree, so a burst of mixed
relation counts costs ``max(joins)`` forward passes instead of
``sum(joins)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.core.featurize import QueryFeaturizer, SlotState
from repro.db.engine import Database
from repro.db.plans import JoinTree
from repro.db.query import Query
from repro.obs.metrics import Histogram
from repro.rl.env import Transition
from repro.rl.policy import CategoricalPolicy

__all__ = ["RolloutRecord", "MicroBatchEngine"]


@dataclass
class RolloutRecord:
    """One query's finished rollout: the join tree plus the transitions
    that produced it (rewards left at 0 for the service to fill in)."""

    query: Query
    tree: JoinTree
    transitions: List[Transition] = field(default_factory=list)


class MicroBatchEngine:
    """Stacked-state greedy rollout for bursts of queries."""

    def __init__(
        self,
        policy: CategoricalPolicy,
        featurizer: QueryFeaturizer,
        db: Database,
        max_batch_size: int = 64,
        forbid_cross_products: bool = False,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        self.policy = policy
        self.featurizer = featurizer
        self.db = db
        self.max_batch_size = max_batch_size
        self.forbid_cross_products = forbid_cross_products
        #: Forward passes made / states scored, for throughput reporting.
        self.forward_passes = 0
        self.states_scored = 0
        #: Per-forward-pass wall-clock latency, inference-lock wait
        #: included when shards share one policy — contention is part
        #: of what an operator needs to see here. Shares the serving
        #: stack's log-bucket histogram implementation.
        self.forward_ms_hist = Histogram(
            "repro_policy_forward_pass_ms", "one batched policy forward pass"
        )
        #: Optional lock serializing ``policy.act_batch`` calls. The nn
        #: layers stash activations on ``self`` during ``forward`` (for
        #: backprop), so a policy object shared by engines on different
        #: threads needs its forward passes serialized; the concurrent
        #: front end installs one lock per distinct policy object.
        self.inference_lock = None
        #: Optional :class:`~repro.serving.faults.FaultInjector`. When
        #: set, ``policy_nan``-kind faults corrupt one forward pass's
        #: log-probs (keyed by forward ordinal) to exercise the NaN
        #: guard below; ``None`` costs one attribute check per pass.
        self.fault_injector = None

    def rollout(
        self,
        queries: Sequence[Query],
        greedy: bool = True,
        rng: np.random.Generator | None = None,
    ) -> List[RolloutRecord]:
        """Roll every query to a complete join tree, batching inference.

        Each query gets a stateful :class:`EpisodeEncoder`, so per round
        only the slot rows touched by the previous join are re-derived
        instead of re-vectorizing every forest from scratch.
        """
        states = [SlotState(q, self.featurizer.max_relations) for q in queries]
        encoders = [
            self.featurizer.encoder(s, self.db.cardinalities(q))
            for q, s in zip(queries, states)
        ]
        records = [RolloutRecord(query=q, tree=None) for q in queries]
        active = [i for i, s in enumerate(states) if not s.done]
        state_dim = self.featurizer.state_dim
        n_actions = self.featurizer.n_pair_actions
        while active:
            for start in range(0, len(active), self.max_batch_size):
                chunk = active[start : start + self.max_batch_size]
                feats = np.empty((len(chunk), state_dim))
                masks = np.empty((len(chunk), n_actions), dtype=bool)
                for row, i in enumerate(chunk):
                    encoders[i].vector_into(feats[row])
                    encoders[i].pair_mask_into(masks[row], self.forbid_cross_products)
                fwd_start = time.perf_counter()
                if self.inference_lock is not None:
                    with self.inference_lock:
                        actions, log_probs = self.policy.act_batch(
                            feats, masks, rng, greedy
                        )
                else:
                    actions, log_probs = self.policy.act_batch(feats, masks, rng, greedy)
                self.forward_ms_hist.observe(
                    (time.perf_counter() - fwd_start) * 1000.0
                )
                self.forward_passes += 1
                self.states_scored += len(chunk)
                if self.fault_injector is not None and self.fault_injector.fires(
                    "policy_nan", f"fwd{self.forward_passes}"
                ):
                    log_probs = np.full_like(log_probs, np.nan)
                if not np.all(np.isfinite(log_probs)):
                    # A NaN/inf forward pass means corrupt weights or
                    # activations — serving argmax over garbage would
                    # pick arbitrary joins silently. Fail the batch so
                    # the degradation ladder answers with a sound plan.
                    raise FloatingPointError(
                        "policy forward pass produced non-finite log-probs"
                    )
                for row, i in enumerate(chunk):
                    action = int(actions[row])
                    records[i].transitions.append(
                        Transition(
                            feats[row], masks[row], action, 0.0, float(log_probs[row])
                        )
                    )
                    encoders[i].join(*self.featurizer.decode_pair(action))
            active = [i for i in active if not states[i].done]
        for record, state in zip(records, states):
            record.tree = state.tree()
        return records
