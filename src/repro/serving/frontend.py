"""The concurrent serving front end: batch-or-timeout + sharded workers.

``OptimizerService`` answers a burst only when callers arrive
pre-batched; production traffic arrives as independent concurrent
requests. This front end converts the serving path from call-and-return
to queue-and-flush:

1. ``submit(query)`` fingerprints the query, routes it to a worker
   shard via a consistent-hash ring, and returns a
   :class:`concurrent.futures.Future` immediately;
2. a background **flusher** drains the pending queue on a
   *batch-or-timeout* deadline — it flushes as soon as ``max_batch``
   submissions accumulate, or when the oldest submission has waited
   ``max_delay_ms``, whichever comes first — so a lone query is never
   stuck waiting for filler and a burst is never served one by one;
3. each flush is split by shard and dispatched to **N worker threads**,
   one :class:`~repro.serving.service.OptimizerService` each. Because
   the ring keys on the canonical query fingerprint, every
   fingerprint-equivalent query lands on the same shard's plan cache,
   guardrail memo, and experience buffer — shard-private caches need no
   cross-shard coherence, yet still see every repeat of "their" query
   shapes.

Fault tolerance is layered on the same path:

- **Admission control** — past the ``shed_watermark`` fraction of
  ``max_pending``, ``submit`` sheds load with a structured
  :class:`~repro.serving.errors.LoadShedded` carrying a retry-after
  hint; after ``close()`` it raises
  :class:`~repro.serving.errors.ServiceClosed`.
- **Deadlines** — ``submit(query, deadline_ms=...)`` attaches a budget
  that travels the whole path: expiry is detected at flush (still
  queued), at worker pickup, and during a deadline-aware ``drain()``;
  the remaining budget is forwarded into the shard service so the
  degradation ladder can answer with a cheaper plan instead of blowing
  the deadline.
- **Retries** — failures typed retryable (injected faults, shard
  deaths, open circuits) are retried up to ``max_attempts`` with
  seeded-jitter exponential backoff; non-idempotent side effects are
  guarded (experience is collected only on attempt 1) and
  deterministic serving bugs are *not* retried.
- **Circuit breakers** — one per shard; consecutive failures trip it
  open, routing fails over along the hash ring's fallback order, and a
  cooldown half-opens it for probes.
- **Supervision** — every way a worker thread can die funnels into a
  death handler that fails over its queue and wakes the
  :class:`~repro.serving.supervisor.ShardSupervisor`, which respawns
  the shard with a rebuilt service (fresh policy copy and caches).

Every accepted submission is registered in an outstanding set and
resolved exactly once through one choke point (``_resolve``), so no
future dangles — not under close, not under worker death, not under
cancellation races.

Lifecycle: ``drain()`` blocks until every accepted submission has
resolved (force-expiring overdue deadlines); ``close()`` additionally
stops the supervisor, flusher, and workers, then sweeps anything still
unresolved with ``ServiceClosed``. The class is a context manager.
"""

from __future__ import annotations

import copy
import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, replace
from queue import Empty, SimpleQueue
from typing import Deque, Dict, List, Optional, Sequence, Set

from repro.db.query import Query
from repro.obs import Telemetry
from repro.obs.metrics import MetricsRegistry
from repro.serving.errors import (
    CircuitOpen,
    DeadlineExceeded,
    InjectedFault,
    LoadShedded,
    OptimizeError,
    RetriesExhausted,
    ServiceClosed,
    ShardFailed,
    WorkerProcessDied,
)
from repro.serving.faults import FAULT_KINDS, FaultInjector, seeded_uniform
from repro.serving.fingerprint import canonical_alias_map, fingerprint
from repro.serving.procpool import ProcessWorkerClient, WorkerSpec
from repro.serving.service import (
    OptimizerService,
    ServedPlan,
    ServingConfig,
    legacy_counters,
)
from repro.serving.sharding import HashRing
from repro.serving.supervisor import CircuitBreaker, ShardSupervisor
from repro.serving.transport import TransportStats

__all__ = ["FrontEndConfig", "FrontEndStats", "ServingFrontEnd"]

#: Sentinel telling a worker thread its queue is finished.
_STOP = object()
#: Sentinel crashing a worker thread on purpose (tests, chaos drills).
_KILL = object()


@dataclass(frozen=True)
class FrontEndConfig:
    """Knobs for the concurrent front end."""

    #: Worker shards (each owns a private OptimizerService).
    n_shards: int = 2
    #: Flush as soon as this many submissions are pending...
    max_batch: int = 32
    #: ...or when the oldest pending submission has waited this long.
    max_delay_ms: float = 2.0
    #: Backpressure: max submissions accepted but not yet resolved.
    max_pending: int = 65_536
    #: Virtual nodes per shard on the consistent-hash ring.
    hash_replicas: int = 64
    #: Kept for config compatibility: submit-to-resolve percentiles now
    #: come from a cumulative log-bucket histogram (fixed memory, no
    #: window), so this knob no longer bounds anything.
    latency_window: int = 8192
    #: Deadline attached to every submit() that does not bring its own
    #: (None = no deadline).
    default_deadline_ms: float | None = None
    #: Total tries per request (1 = no retries) for retryable failures.
    max_attempts: int = 3
    #: Exponential backoff: attempt k waits base * 2**(k-1) ms, capped,
    #: scaled by a deterministic jitter in [0.5, 1.0).
    backoff_base_ms: float = 5.0
    backoff_cap_ms: float = 100.0
    #: Shed load once inflight reaches this fraction of max_pending.
    shed_watermark: float = 0.9
    #: retry_after hint handed to shed callers.
    shed_retry_after_s: float = 0.05
    #: Per-shard circuit breaker: consecutive failures to trip, cooldown
    #: before half-open probes.
    breaker_failure_threshold: int = 5
    breaker_cooldown_s: float = 1.0
    breaker_probe_limit: int = 1
    #: Run the supervisor thread that respawns dead workers.
    supervise: bool = True
    supervisor_interval_s: float = 0.05
    #: Shard executor: ``"thread"`` keeps every shard in-process
    #: (shared GIL — cheap, but rollouts interleave); ``"process"``
    #: spawns one worker process per shard behind the same hash ring,
    #: so shards roll out truly in parallel. Only :meth:`ServingFrontEnd.build`
    #: acts on this — a hand-assembled service list decides for itself.
    executor: str = "thread"
    #: Process mode: how often the supervisor heartbeats each worker
    #: process (a hung worker that misses one beat is SIGKILL'd and
    #: respawned).
    heartbeat_interval_s: float = 1.0

    def __post_init__(self) -> None:
        if self.executor not in ("thread", "process"):
            raise ValueError('executor must be "thread" or "process"')
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if self.n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.max_delay_ms < 0:
            raise ValueError("max_delay_ms must be non-negative")
        if self.max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise ValueError("default_deadline_ms must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base_ms < 0 or self.backoff_cap_ms < 0:
            raise ValueError("backoff times must be non-negative")
        if not 0.0 < self.shed_watermark <= 1.0:
            raise ValueError("shed_watermark must be in (0, 1]")


@dataclass
class FrontEndStats:
    """Flusher/queue health counters (per-shard serving counters live on
    each shard's service and are rolled up by :meth:`ServingFrontEnd.counters`)."""

    submitted: int = 0
    flushes: int = 0
    #: Flushes triggered by a full batch...
    flushes_size: int = 0
    #: ...by the max_delay deadline on a partial batch...
    flushes_deadline: int = 0
    #: ...or by drain()/close() forcing everything out.
    flushes_drain: int = 0
    #: Sum of flush sizes, for mean flush occupancy.
    occupancy_sum: int = 0
    #: Batches actually served by workers (a worker coalesces every
    #: dispatch waiting in its queue into one serve call, so under
    #: backlog the served occupancy exceeds the flush occupancy).
    served_batches: int = 0
    served_occupancy_sum: int = 0
    #: Submissions turned away at admission (all causes).
    rejected: int = 0
    #: ...of which load-shedding past the watermark.
    load_shed: int = 0
    #: Retry attempts scheduled after a retryable failure.
    retries: int = 0
    #: Requests that failed every allowed attempt.
    retries_exhausted: int = 0
    #: Requests failed because their deadline budget ran out.
    deadline_expired: int = 0
    #: Requests dispatched to a fallback shard (down shard/open circuit).
    rerouted: int = 0
    #: Dead workers respawned with a rebuilt service.
    worker_restarts: int = 0
    #: Circuit-breaker trips (closed/half-open -> open).
    circuit_opens: int = 0

    @property
    def batch_occupancy_mean(self) -> float:
        return self.occupancy_sum / self.flushes if self.flushes else 0.0

    @property
    def served_occupancy_mean(self) -> float:
        return (
            self.served_occupancy_sum / self.served_batches
            if self.served_batches
            else 0.0
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "frontend_submitted": self.submitted,
            "frontend_flushes": self.flushes,
            "frontend_flushes_size": self.flushes_size,
            "frontend_flushes_deadline": self.flushes_deadline,
            "frontend_flushes_drain": self.flushes_drain,
            "frontend_rejected": self.rejected,
            "frontend_load_shed": self.load_shed,
            "frontend_retries": self.retries,
            "frontend_retries_exhausted": self.retries_exhausted,
            "frontend_deadline_expired": self.deadline_expired,
            "frontend_rerouted": self.rerouted,
            "frontend_worker_restarts": self.worker_restarts,
            "frontend_circuit_opens": self.circuit_opens,
            "frontend_batch_occupancy_mean": round(self.batch_occupancy_mean, 2),
            "frontend_served_batches": self.served_batches,
            "frontend_served_occupancy_mean": round(self.served_occupancy_mean, 2),
        }


@dataclass(eq=False)
class _Submission:
    """One accepted request travelling from queue to shard to future.

    ``eq=False`` keeps identity hashing: submissions key the timer and
    outstanding registries. ``settled`` is the exactly-once resolution
    claim, flipped only under the front end's state lock.
    """

    query: Query
    fp: str
    alias_map: Dict[str, str]
    shard: int
    future: "Future[ServedPlan]"
    submitted_at: float
    #: Absolute monotonic deadline (None = no budget).
    deadline: float | None = None
    #: Per-request trace (None when telemetry is off). Ownership follows
    #: the submission: submitter -> flusher -> one worker, sequentially.
    trace: object = None
    #: When the flusher last dispatched this submission (worker_queue span).
    flushed_at: float | None = None
    #: 1-based try counter; bumped when a retry is scheduled.
    attempts: int = 1
    #: Unique per front end; keys deterministic chaos/backoff draws.
    seq: int = 0
    #: Exactly-once resolution claim (guarded by the state lock).
    settled: bool = False
    #: Whether the future already moved to RUNNING (set once, first pickup).
    started: bool = False


class ServingFrontEnd:
    """Queue-and-flush concurrency over per-shard optimizer services.

    ``services`` is one :class:`OptimizerService` per shard; use
    :meth:`build` to construct a standard set (shard-private planners,
    memos, and policy copies) from a database and an agent. Services
    must not share mutable inference state — the constructor installs a
    per-policy-object lock on each shard's micro-batch engine as a
    safety net, so even a shared policy stays correct (just serialized).

    ``service_factory(shard)`` (supplied by :meth:`build`) rebuilds a
    shard's service after a worker death; without one, a respawned
    worker reuses the surviving service object.
    """

    def __init__(
        self,
        services: Sequence[OptimizerService],
        config: FrontEndConfig | None = None,
        telemetry: Telemetry | None = None,
        service_factory=None,
    ) -> None:
        if not services:
            raise ValueError("need at least one shard service")
        self.config = config or FrontEndConfig(n_shards=len(services))
        if self.config.n_shards != len(services):
            raise ValueError(
                f"config says {self.config.n_shards} shards but "
                f"{len(services)} services were given"
            )
        self.services = list(services)
        self.ring = HashRing(self.config.n_shards, self.config.hash_replicas)
        self.stats = FrontEndStats()
        self.clock = time.monotonic
        self._service_factory = service_factory
        #: Armed via :meth:`install_fault_injector`; None = no chaos.
        self.fault_injector: FaultInjector | None = None
        #: ``callable(service, shard)`` run on every respawned shard's
        #: rebuilt service before its worker thread starts. The
        #: retraining daemon installs one so a shard that died is
        #: brought to the *current* promoted policy version instead of
        #: rejoining at the factory's original weights.
        self.policy_sync = None
        #: Extra registries merged into :meth:`metrics_registry` —
        #: subsystems that ride on the front end (the retraining
        #: daemon) surface their metrics here without owning a shard.
        self.extra_registries: List[MetricsRegistry] = []
        #: Shared telemetry spine: traces begin at submit and finish in
        #: whatever resolves the future; shard services reuse it for
        #: their event hooks (guardrail fallbacks, invalidations).
        self.telemetry = telemetry
        if telemetry is not None:
            for service in self.services:
                if service.telemetry is None:
                    service.telemetry = telemetry
        #: Shared transport counters in process mode (every proxy built
        #: by :meth:`build` feeds the same instance); None under threads.
        self.transport: Optional[TransportStats] = next(
            (
                s.transport
                for s in self.services
                if isinstance(s, ProcessWorkerClient)
            ),
            None,
        )
        self._last_heartbeat = 0.0
        self.registry = MetricsRegistry()
        self.latency_ms_hist = self.registry.histogram(
            "repro_request_latency_ms",
            "submit-to-resolve latency (queueing included)",
        )
        self._register_metrics()
        # The nn layers stash forward activations on the policy object,
        # so concurrent forward passes on one shared policy would read
        # each other's state; one lock per distinct policy object keeps
        # distinct-policy shards fully parallel and shared-policy
        # setups merely serialized at the forward pass.
        locks: Dict[int, threading.Lock] = {}
        for service in self.services:
            policy = service.engine.policy
            service.engine.inference_lock = locks.setdefault(
                id(policy), threading.Lock()
            )
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._pending: Deque[_Submission] = deque()
        self._inflight = 0
        self._flush_asap = False
        self._closing = False
        self._closed = False
        #: Shards whose worker died and has not been respawned yet.
        #: Guarded by ``_work``; the flusher routes around them.
        self._down: Set[int] = set()
        # Lock-ordering rule: ``_state_lock`` and ``_work`` are never
        # nested (each is always released before the other is taken).
        self._state_lock = threading.Lock()
        #: Every accepted, unresolved submission — the registry close()
        #: sweeps so no future ever dangles. Guarded by ``_state_lock``.
        self._outstanding: Set[_Submission] = set()
        #: Pending retry-backoff timers, keyed by submission.
        self._timers: Dict[_Submission, threading.Timer] = {}
        #: Per-shard submissions currently held by the worker thread,
        #: handed to the death handler if the thread dies mid-batch.
        self._holding: List[List[_Submission]] = [
            [] for _ in range(self.config.n_shards)
        ]
        self.breakers = [
            CircuitBreaker(
                failure_threshold=self.config.breaker_failure_threshold,
                cooldown_s=self.config.breaker_cooldown_s,
                probe_limit=self.config.breaker_probe_limit,
                on_transition=self._breaker_callback(shard),
            )
            for shard in range(self.config.n_shards)
        ]
        self._queues: List["SimpleQueue"] = [
            SimpleQueue() for _ in range(self.config.n_shards)
        ]
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                args=(shard,),
                name=f"serving-shard-{shard}",
                daemon=True,
            )
            for shard in range(self.config.n_shards)
        ]
        for worker in self._workers:
            worker.start()
        self._flusher = threading.Thread(
            target=self._flusher_loop, name="serving-flusher", daemon=True
        )
        self._flusher.start()
        self.supervisor: Optional[ShardSupervisor] = None
        if self.config.supervise:
            self.supervisor = ShardSupervisor(
                self, interval_s=self.config.supervisor_interval_s
            )
            self.supervisor.start()

    def _register_metrics(self) -> None:
        """Expose the flusher/queue stats as pull-style registry metrics
        (same pattern as ``OptimizerService._register_metrics``)."""
        reg = self.registry
        reg.counter_fn(
            "repro_frontend_submitted_total",
            lambda: self.stats.submitted,
            "submissions accepted",
        )
        reg.counter_fn(
            "repro_frontend_flushes_total",
            lambda: self.stats.flushes,
            "flusher dispatches",
        )
        reg.counter_fn(
            "repro_frontend_flushes_size_total",
            lambda: self.stats.flushes_size,
            "flushes triggered by a full batch",
        )
        reg.counter_fn(
            "repro_frontend_flushes_deadline_total",
            lambda: self.stats.flushes_deadline,
            "flushes triggered by the max_delay deadline",
        )
        reg.counter_fn(
            "repro_frontend_flushes_drain_total",
            lambda: self.stats.flushes_drain,
            "flushes forced by drain()/close()",
        )
        reg.counter_fn(
            "repro_frontend_rejected_total",
            lambda: self.stats.rejected,
            "submissions rejected at admission",
        )
        reg.counter_fn(
            "repro_frontend_load_shed_total",
            lambda: self.stats.load_shed,
            "submissions shed past the pending watermark",
        )
        reg.counter_fn(
            "repro_frontend_retries_total",
            lambda: self.stats.retries,
            "retry attempts scheduled",
        )
        reg.counter_fn(
            "repro_frontend_retries_exhausted_total",
            lambda: self.stats.retries_exhausted,
            "requests that failed every allowed attempt",
        )
        reg.counter_fn(
            "repro_frontend_deadline_expired_total",
            lambda: self.stats.deadline_expired,
            "requests failed on an expired deadline budget",
        )
        reg.counter_fn(
            "repro_frontend_rerouted_total",
            lambda: self.stats.rerouted,
            "dispatches rerouted to a fallback shard",
        )
        reg.counter_fn(
            "repro_frontend_worker_restarts_total",
            lambda: self.stats.worker_restarts,
            "dead workers respawned",
        )
        reg.counter_fn(
            "repro_frontend_circuit_opens_total",
            lambda: self.stats.circuit_opens,
            "circuit-breaker trips to open",
        )
        reg.counter_fn(
            "repro_frontend_served_batches_total",
            lambda: self.stats.served_batches,
            "worker micro-batches actually served",
        )
        reg.gauge_fn(
            "repro_frontend_inflight",
            lambda: self._inflight,
            "submissions accepted but not yet resolved",
        )
        reg.gauge_fn(
            "repro_frontend_down_shards",
            lambda: len(self._down),
            "shards whose worker is dead and awaiting respawn",
        )
        if self.transport is not None:
            transport = self.transport
            reg.counter_fn(
                "repro_transport_frames_total",
                lambda: transport.frames_sent,
                "frames sent over worker pipes",
            )
            reg.counter_fn(
                "repro_transport_bytes_pipe_total",
                lambda: transport.bytes_pipe,
                "bytes shipped in-band over worker pipes",
            )
            reg.counter_fn(
                "repro_transport_bytes_shm_total",
                lambda: transport.bytes_shm,
                "bytes shipped out-of-band through shm rings",
            )
            reg.counter_fn(
                "repro_transport_shm_fallbacks_total",
                lambda: transport.shm_fallbacks,
                "out-of-band buffers that fell back to in-band transfer",
            )
            reg.counter_fn(
                "repro_transport_control_roundtrips_total",
                lambda: transport.control_roundtrips,
                "control-channel RPC round-trips",
            )

    def _breaker_callback(self, shard: int):
        """on_transition hook for shard ``shard``'s breaker. Runs under
        the breaker's lock — must not call back into the breaker."""

        def on_transition(old: str, new: str) -> None:
            if new == "open":
                with self._lock:
                    self.stats.circuit_opens += 1
                if self.telemetry is not None and self.telemetry.enabled:
                    self.telemetry.events.emit(
                        "circuit_open", shard=shard, previous=old
                    )
            elif new == "closed" and old == "half_open":
                if self.telemetry is not None and self.telemetry.enabled:
                    self.telemetry.events.emit("circuit_close", shard=shard)
            # Process mode: push the breaker state to the worker over
            # its control channel (shows up in the worker's heartbeat
            # payload / forensics). Best-effort: a dead worker is the
            # usual *reason* the breaker moved.
            service = self.services[shard]
            if isinstance(service, ProcessWorkerClient):
                service.notify_breaker(new)

        return on_transition

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        db,
        agent_or_policy,
        featurizer=None,
        serving_config: ServingConfig | None = None,
        config: FrontEndConfig | None = None,
        planner_factory=None,
        reward_source=None,
        telemetry: Telemetry | None = None,
        planner_kwargs: Dict[str, object] | None = None,
    ) -> "ServingFrontEnd":
        """A front end with the standard shard setup.

        Each shard gets its own :class:`~repro.optimizer.planner.Planner`
        (with a private sub-plan cost memo) and its own deep copy of the
        policy, so shards never contend on mutable planner or inference
        state. ``planner_factory()`` overrides the per-shard planner;
        ``planner_kwargs`` are extra ``Planner(...)`` arguments — the
        picklable alternative a process-mode shard can carry across the
        spawn boundary (closures cannot). The same recipe is installed
        as the respawn factory, so a shard that dies is rebuilt from
        scratch (a worker that died mid-batch may hold arbitrarily
        corrupt service state).

        With ``config.executor == "process"`` each shard becomes a
        :class:`~repro.serving.procpool.ProcessWorkerClient`: a spawned
        worker process that builds its own service from a picklable
        :class:`~repro.serving.procpool.WorkerSpec`, fed over a framed
        pipe + shared-memory transport. Everything above this method —
        routing, batching, retries, breakers, supervision, telemetry —
        is identical in both modes.
        """
        from repro.core.featurize import QueryFeaturizer
        from repro.optimizer.memo import SubPlanCostMemo
        from repro.optimizer.planner import Planner

        config = config or FrontEndConfig()
        featurizer = featurizer or QueryFeaturizer(db.schema)
        policy = getattr(agent_or_policy, "policy", agent_or_policy)

        if config.executor == "process":
            if planner_factory is not None:
                raise ValueError(
                    "planner_factory closures cannot cross the spawn "
                    "boundary; pass planner_kwargs instead"
                )
            transport = TransportStats()

            def make_spec(shard: int) -> WorkerSpec:
                return WorkerSpec(
                    shard=shard,
                    db=db,
                    policy=policy,
                    featurizer=featurizer,
                    serving_config=serving_config or ServingConfig(),
                    planner_kwargs=dict(planner_kwargs or {}),
                    reward_source=reward_source,
                )

            def make_worker(shard: int) -> ProcessWorkerClient:
                return ProcessWorkerClient(
                    make_spec(shard), transport=transport, telemetry=telemetry
                )

            workers = [make_worker(shard) for shard in range(config.n_shards)]
            return cls(
                workers,
                config=config,
                telemetry=telemetry,
                service_factory=make_worker,
            )

        make_planner = planner_factory or (
            lambda: Planner(
                db, cost_memo=SubPlanCostMemo(), **dict(planner_kwargs or {})
            )
        )

        def make_service(shard: int) -> OptimizerService:
            # Thread shards share one Database; only shard 0 exposes its
            # db-level metrics (estimator counters) so a registry merge
            # counts them once, not n_shards times.
            return OptimizerService(
                db,
                copy.deepcopy(policy),
                planner=make_planner(),
                featurizer=featurizer,
                config=serving_config,
                reward_source=reward_source,
                telemetry=telemetry,
                db_metrics=(shard == 0),
            )

        services = [
            OptimizerService(
                db,
                policy if shard == 0 else copy.deepcopy(policy),
                planner=make_planner(),
                featurizer=featurizer,
                config=serving_config,
                reward_source=reward_source,
                telemetry=telemetry,
                db_metrics=(shard == 0),
            )
            for shard in range(config.n_shards)
        ]
        return cls(
            services,
            config=config,
            telemetry=telemetry,
            service_factory=make_service,
        )

    def install_fault_injector(self, injector: FaultInjector) -> None:
        """Arm the chaos harness on the front end and every shard."""
        self.fault_injector = injector
        for service in self.services:
            service.install_fault_injector(injector)

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(
        self, query: Query, deadline_ms: float | None = None
    ) -> "Future[ServedPlan]":
        """Queue one request; the returned future resolves to its
        :class:`ServedPlan` or to a structured
        :class:`~repro.serving.errors.OptimizeError`.

        ``deadline_ms`` is this request's total budget (submit to
        resolve); omitted, the config's ``default_deadline_ms`` applies.
        """
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        # Reject before canonicalizing: a saturated or closed front end
        # must turn submissions away in O(1), not after paying the WL
        # refinement that is the most expensive part of admission. The
        # check re-runs after canonicalization, which stays
        # authoritative against races.
        with self._work:
            self._check_accepting()
        # Canonicalize in the caller's thread: routing needs the
        # fingerprint anyway, and the shard reuses both instead of
        # recomputing them.
        names = canonical_alias_map(query)
        fp = fingerprint(query, names)
        shard = self.ring.shard_for(fp)
        trace = (
            self.telemetry.begin_trace(
                "request", query=query.name, fingerprint=fp, shard=shard
            )
            if self.telemetry is not None
            else None
        )
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        now = self.clock()
        submission = _Submission(
            query=query,
            fp=fp,
            alias_map=names,
            shard=shard,
            future=Future(),
            submitted_at=now,
            deadline=None if deadline_ms is None else now + deadline_ms / 1000.0,
            trace=trace,
        )
        with self._work:
            self._check_accepting()
            self.stats.submitted += 1
            submission.seq = self.stats.submitted
            self._pending.append(submission)
            self._inflight += 1
            self._work.notify_all()
        # Register after queueing, but never resurrect: if a worker
        # already resolved (claimed) it, adding it back would leak.
        with self._state_lock:
            if not submission.settled:
                self._outstanding.add(submission)
        return submission.future

    def _check_accepting(self) -> None:
        """Raise if the front end cannot take another submission.

        Call with ``self._work`` held: the rejected counter is a
        read-modify-write and the counters are promised to be exact.
        """
        if self._closing:
            raise ServiceClosed(
                "submit() after close(): front end no longer accepts work"
            )
        shed_at = max(1, int(self.config.max_pending * self.config.shed_watermark))
        if self._inflight >= shed_at:
            self.stats.rejected += 1
            self.stats.load_shed += 1
            hint = self.config.shed_retry_after_s
            if self.telemetry is not None and self.telemetry.enabled:
                # Rate-limited: a sustained overload sheds thousands of
                # submissions per second; one event a second with a
                # suppressed count is the useful signal.
                self.telemetry.events.emit_limited(
                    "load_shed",
                    inflight=self._inflight,
                    max_pending=self.config.max_pending,
                    retry_after_s=hint,
                )
            raise LoadShedded(
                f"backpressure: {self._inflight} submissions in flight "
                f"(shedding at {shed_at}, max_pending="
                f"{self.config.max_pending}); retry after {hint:.2f}s",
                retry_after_s=hint,
            )

    def optimize(
        self,
        query: Query,
        timeout: float | None = None,
        deadline_ms: float | None = None,
    ) -> ServedPlan:
        """Synchronous wrapper: submit and wait (the old one-call API)."""
        return self.submit(query, deadline_ms=deadline_ms).result(timeout)

    def optimize_batch(
        self,
        queries: Sequence[Query],
        timeout: float | None = None,
        deadline_ms: float | None = None,
    ) -> List[ServedPlan]:
        """Synchronous wrapper: submit all, wait for all, submit order."""
        futures = [self.submit(q, deadline_ms=deadline_ms) for q in queries]
        return [future.result(timeout) for future in futures]

    # ------------------------------------------------------------------
    # Exactly-once resolution
    # ------------------------------------------------------------------
    def _claim(self, s: _Submission) -> bool:
        """Atomically claim the right to resolve ``s`` (True at most
        once per submission); deregisters it and cancels its timer."""
        with self._state_lock:
            if s.settled:
                return False
            s.settled = True
            self._outstanding.discard(s)
            timer = self._timers.pop(s, None)
        if timer is not None:
            timer.cancel()
        return True

    def _resolve(
        self,
        s: _Submission,
        plan: ServedPlan | None = None,
        error: BaseException | None = None,
        counter: str | None = None,
    ) -> bool:
        """The one choke point that settles a submission: finish its
        trace, set the future, release inflight, bump counters."""
        if not self._claim(s):
            return False
        # Finish before resolving: the caller must never see a future
        # whose trace is still open.
        if self.telemetry is not None and s.trace is not None:
            if error is not None:
                self.telemetry.finish_trace(s.trace, error=repr(error))
            else:
                self.telemetry.finish_trace(s.trace, source=plan.source)
        try:
            if error is not None:
                s.future.set_exception(error)
            else:
                s.future.set_result(plan)
        except InvalidStateError:
            # The caller cancelled between our claim and the set: the
            # outcome is lost but the bookkeeping below must still run.
            pass
        if plan is not None:
            # Latency describes what was actually served; failures and
            # cancellations only release inflight.
            self.latency_ms_hist.observe((self.clock() - s.submitted_at) * 1000.0)
        with self._work:
            self._inflight -= 1
            if counter == "deadline_expired":
                self.stats.deadline_expired += 1
            elif counter == "retries_exhausted":
                self.stats.retries_exhausted += 1
            self._work.notify_all()
        return True

    def _resolve_cancelled(self, s: _Submission) -> None:
        """A future the caller cancelled while it was still queued:
        nothing to set, but inflight must be released exactly once."""
        if not self._claim(s):
            return
        with self._work:
            self._inflight -= 1
            self._work.notify_all()

    # ------------------------------------------------------------------
    # Flusher
    # ------------------------------------------------------------------
    def _flusher_loop(self) -> None:
        try:
            self._flusher_body()
        except BaseException:
            # A crashed flusher would silently stall every submission;
            # wake the supervisor, which respawns it.
            if self.supervisor is not None:
                self.supervisor.poke()

    def _flusher_body(self) -> None:
        while True:
            with self._work:
                while not self._pending and not self._closing:
                    self._work.wait()
                if not self._pending:  # closing with nothing queued
                    break
                # Capacity gate: every shard down with the supervisor
                # mid-respawn is an outage, not a request failure —
                # dispatching now could only burn retry attempts
                # against a guaranteed all-down route, and a process
                # respawn (interpreter spawn + service rebuild) takes
                # far longer than the whole ms-scale backoff schedule.
                # Park until a shard returns; close() drains us out.
                while (
                    self.supervisor is not None
                    and not self._closing
                    and len(self._down) >= len(self.services)
                ):
                    self._work.wait(0.05)
                head = self._pending[0]
                deadline = head.submitted_at + self.config.max_delay_ms / 1000.0
                if head.deadline is not None and head.deadline < deadline:
                    # Fail fast: an expiring head is flushed (and failed
                    # at dispatch) instead of held for batch filler.
                    deadline = head.deadline
                while True:
                    if len(self._pending) >= self.config.max_batch:
                        reason = "size"
                        break
                    if self._closing or self._flush_asap:
                        reason = "drain"
                        break
                    remaining = deadline - self.clock()
                    if remaining <= 0:
                        reason = "deadline"
                        break
                    self._work.wait(remaining)
                take = min(len(self._pending), self.config.max_batch)
                batch = [self._pending.popleft() for _ in range(take)]
                self.stats.flushes += 1
                self.stats.occupancy_sum += take
                if reason == "size":
                    self.stats.flushes_size += 1
                elif reason == "deadline":
                    self.stats.flushes_deadline += 1
                else:
                    self.stats.flushes_drain += 1
                down = set(self._down)
            # Dispatch outside the lock: queue puts never block, and
            # workers must be able to grab the lock to finish batches.
            self._dispatch(batch, reason, down)

    def _dispatch(
        self, batch: List[_Submission], reason: str, down: Set[int]
    ) -> None:
        """Expire, route, and enqueue one flushed batch."""
        flushed_at = self.clock()
        by_shard: Dict[int, List[_Submission]] = {}
        rerouted = 0
        for s in batch:
            if s.settled:
                continue
            if s.deadline is not None and flushed_at >= s.deadline:
                waited = (flushed_at - s.submitted_at) * 1000.0
                self._resolve(
                    s,
                    error=DeadlineExceeded(
                        f"deadline expired after {waited:.1f}ms in the "
                        "pending queue",
                        stage="queue",
                        query_name=s.query.name,
                        fingerprint=s.fp,
                        shard=s.shard,
                        attempts=s.attempts,
                    ),
                    counter="deadline_expired",
                )
                continue
            try:
                target = self._route(s, down)
            except OptimizeError as exc:
                self._retry_or_fail(s, exc)
                continue
            if target != s.shard:
                rerouted += 1
                s.shard = target
            s.flushed_at = flushed_at
            if s.trace is not None:
                s.trace.record(
                    "queue_wait",
                    (flushed_at - s.submitted_at) * 1000.0,
                    reason=reason,
                )
            by_shard.setdefault(target, []).append(s)
        if rerouted:
            with self._work:
                self.stats.rerouted += rerouted
        for shard, submissions in by_shard.items():
            self._queues[shard].put(submissions)

    def _route(self, s: _Submission, down: Set[int]) -> int:
        """First healthy shard in ``s.fp``'s ring fallback order.

        The order is a pure function of the ring, so every request for
        a fingerprint fails over to the *same* surviving shard and its
        caches stay warm through the outage. Raises ``ShardFailed``
        when every shard is down, ``CircuitOpen`` when the survivors
        all have open breakers.
        """
        waits: List[float] = []
        for shard in self.ring.fallback_order(s.fp):
            if shard in down:
                continue
            if self.breakers[shard].allow():
                return shard
            waits.append(self.breakers[shard].retry_after())
        if not waits:
            # With supervision live, every dead shard is already being
            # respawned — hand the retry loop a stall hint sized to
            # notice-plus-respawn so it waits the outage out. Without
            # the hint a total outage burns all attempts on the ms-scale
            # backoff schedule, which no process respawn (interpreter
            # spawn + service rebuild: seconds) can beat.
            hint = None
            if self.supervisor is not None:
                hint = 2.0 * max(
                    self.config.breaker_cooldown_s,
                    self.config.heartbeat_interval_s,
                )
            raise ShardFailed(
                "every worker shard is down",
                query_name=s.query.name,
                fingerprint=s.fp,
                shard=s.shard,
                attempts=s.attempts,
                retry_after_s=hint,
            )
        raise CircuitOpen(
            "every live shard's circuit breaker is open",
            query_name=s.query.name,
            fingerprint=s.fp,
            shard=s.shard,
            attempts=s.attempts,
            retry_after_s=min(waits),
        )

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _worker_loop(self, shard: int) -> None:
        try:
            self._worker_body(shard)
        except BaseException as exc:
            self._on_worker_death(shard, exc)

    def _worker_body(self, shard: int) -> None:
        queue = self._queues[shard]
        stop = False
        while not stop:
            item = queue.get()
            if item is _STOP:
                break
            if item is _KILL:
                raise RuntimeError("injected worker kill")
            submissions = list(item)
            # Hand the batch to the death handler *before* serving: if
            # this thread dies mid-batch, these requests are retried or
            # failed structurally, never stranded.
            self._holding[shard] = submissions
            # Coalesce: when this worker fell behind, several flusher
            # dispatches are waiting in its queue — serving them as one
            # micro-batch is the whole point of the front end, so drain
            # up to max_batch before running the rollout.
            while len(submissions) < self.config.max_batch:
                try:
                    extra = queue.get_nowait()
                except Empty:
                    break
                if extra is _STOP:
                    stop = True
                    break
                if extra is _KILL:
                    raise RuntimeError("injected worker kill")
                submissions.extend(extra)
            self._serve_batch(shard, submissions)
            self._holding[shard] = []

    def _serve_batch(self, shard: int, submissions: List[_Submission]) -> None:
        # Transition futures to RUNNING; a future the caller already
        # cancelled is released here, and one already settled elsewhere
        # (drain force-expiry, close sweep) is skipped.
        live: List[_Submission] = []
        for s in submissions:
            if s.settled:
                continue
            if s.started:
                live.append(s)  # a retry: the future is already RUNNING
                continue
            try:
                if s.future.set_running_or_notify_cancel():
                    s.started = True
                    live.append(s)
                else:
                    self._resolve_cancelled(s)
            except InvalidStateError:
                continue  # settled in the race window; nothing to do
        picked_up = self.clock()
        for s in live:
            if s.trace is not None and s.flushed_at is not None:
                s.trace.record(
                    "worker_queue", (picked_up - s.flushed_at) * 1000.0, shard=shard
                )
        ready: List[_Submission] = []
        for s in live:
            if s.deadline is not None and picked_up >= s.deadline:
                self._resolve(
                    s,
                    error=DeadlineExceeded(
                        "deadline budget exhausted when the shard picked "
                        "the request up",
                        stage="serve",
                        query_name=s.query.name,
                        fingerprint=s.fp,
                        shard=shard,
                        attempts=s.attempts,
                    ),
                    counter="deadline_expired",
                )
            else:
                ready.append(s)
        injector = self.fault_injector
        if injector is not None and ready:
            # Draw a spike decision for *every* request (no any()
            # short-circuit: the deterministic schedule must not depend
            # on evaluation order), then stall once per batch.
            spiked = [
                s
                for s in ready
                if injector.fires("latency_spike", f"req{s.seq}a{s.attempts}")
            ]
            if spiked:
                time.sleep(injector.config.spike_ms / 1000.0)
            kept: List[_Submission] = []
            faulted: List[_Submission] = []
            for s in ready:
                if injector.fires("worker_fault", f"req{s.seq}a{s.attempts}"):
                    faulted.append(s)
                else:
                    kept.append(s)
            for s in faulted:
                self._retry_or_fail(
                    s,
                    InjectedFault(
                        f"chaos: injected worker fault on shard {shard}",
                        query_name=s.query.name,
                        fingerprint=s.fp,
                        shard=shard,
                        attempts=s.attempts,
                    ),
                )
            # The breaker tracks *shard* health, not per-request noise:
            # a batch whose surviving requests still serve proves the
            # shard alive, so request-scoped faults only count as a
            # breaker failure when they consume the entire batch (one
            # observation, not one per request — a clumped batch of
            # faults is a single piece of evidence, and counting it N
            # times would trip the breaker on request-level noise a
            # healthy shard absorbs fine).
            if faulted and not kept:
                self.breakers[shard].record_failure()
            ready = kept
        if not ready:
            return
        service = self.services[shard]
        if (
            injector is not None
            and ready
            and isinstance(service, ProcessWorkerClient)
        ):
            # Chaos: SIGKILL the worker *process* under the batch. The
            # serve call below then hits EOF and raises
            # WorkerProcessDied, driving the exact recovery path a real
            # OOM-kill would: breaker failure, request retries, shard
            # thread death, supervisor respawn. Draw per request with
            # no short-circuit (the schedule must not depend on
            # evaluation order).
            killed = [
                s
                for s in ready
                if injector.fires("worker_kill", f"req{s.seq}a{s.attempts}")
            ]
            if killed:
                service.kill()
        serve_start = self.clock()
        budgets = [
            None
            if s.deadline is None
            else max(0.0, (s.deadline - serve_start) * 1000.0)
            for s in ready
        ]
        try:
            served = service.optimize_batch(
                [s.query for s in ready],
                fingerprints=[s.fp for s in ready],
                alias_maps=[s.alias_map for s in ready],
                traces=[s.trace for s in ready],
                budgets_ms=budgets,
                # Experience collection is the one non-idempotent side
                # effect on this path: only attempt 1 collects, so a
                # retry can never double-count a trajectory.
                collect=[s.attempts == 1 for s in ready],
            )
        except WorkerProcessDied as exc:
            # The shard's process is gone. Back off the held requests
            # like any retryable failure, then die like the process did:
            # re-raising runs the worker-death path (drain + failover)
            # and has the supervisor respawn both the process and this
            # thread together.
            self.breakers[shard].record_failure()
            for s in ready:
                self._retry_or_fail(s, exc)
            raise
        except OptimizeError as exc:
            self.breakers[shard].record_failure()
            for s in ready:
                self._retry_or_fail(s, exc)
        except Exception as exc:
            # A deterministic serving bug (bad query, broken featurizer
            # state): retrying the identical request cannot help, so
            # resolve now — and the worker survives the poisoned batch.
            self.breakers[shard].record_failure()
            for s in ready:
                self._resolve(s, error=exc)
        else:
            self.breakers[shard].record_success()
            for s, plan in zip(ready, served):
                if s.attempts > 1:
                    plan = replace(plan, attempts=s.attempts)
                self._resolve(s, plan=plan)
        with self._work:
            self.stats.served_batches += 1
            self.stats.served_occupancy_sum += len(ready)

    # ------------------------------------------------------------------
    # Retry / backoff
    # ------------------------------------------------------------------
    def _retry_or_fail(self, s: _Submission, error: OptimizeError) -> None:
        """Schedule a backoff retry for a retryable failure, or settle
        the future (``RetriesExhausted`` chains the last cause)."""
        if not (isinstance(error, OptimizeError) and error.retryable):
            self._resolve(s, error=error)
            return
        if s.attempts >= self.config.max_attempts:
            exhausted = RetriesExhausted(
                f"request {s.query.name!r} failed all "
                f"{s.attempts} attempts (last: {error.code})",
                query_name=s.query.name,
                fingerprint=s.fp,
                shard=s.shard,
                attempts=s.attempts,
            )
            exhausted.__cause__ = error
            self._resolve(s, error=exhausted, counter="retries_exhausted")
            return
        base_ms = min(
            self.config.backoff_base_ms * (2 ** (s.attempts - 1)),
            self.config.backoff_cap_ms,
        )
        # Deterministic jitter in [0.5, 1.0)x, seeded by request
        # identity + attempt: chaos runs replay the same backoff
        # schedule, yet concurrent retries decorrelate.
        jitter = 0.5 + 0.5 * seeded_uniform(f"backoff:{s.seq}:{s.attempts}")
        delay_s = base_ms * jitter / 1000.0
        if error.retry_after_s is not None:
            # The failure told us when retrying can possibly succeed
            # (e.g. a circuit breaker's cooldown): retrying sooner just
            # burns an attempt against a still-open breaker.
            delay_s = max(delay_s, error.retry_after_s)
        if s.deadline is not None and self.clock() + delay_s >= s.deadline:
            self._resolve(
                s,
                error=DeadlineExceeded(
                    f"deadline would expire during the attempt-"
                    f"{s.attempts + 1} backoff",
                    stage="queue",
                    query_name=s.query.name,
                    fingerprint=s.fp,
                    shard=s.shard,
                    attempts=s.attempts,
                ),
                counter="deadline_expired",
            )
            return
        s.attempts += 1
        timer = threading.Timer(delay_s, self._requeue, args=(s,))
        timer.daemon = True
        with self._state_lock:
            if s.settled:  # raced with the close sweep
                return
            self._timers[s] = timer
        with self._work:
            self.stats.retries += 1
        timer.start()

    def _requeue(self, s: _Submission) -> None:
        """Timer callback: put a backed-off submission back in line."""
        with self._state_lock:
            self._timers.pop(s, None)
            if s.settled:
                return
        with self._work:
            if not self._closing:
                self._pending.append(s)
                self._work.notify_all()
                return
        self._resolve(
            s,
            error=ServiceClosed(
                "front end closed while the request awaited its retry",
                query_name=s.query.name,
                fingerprint=s.fp,
                shard=s.shard,
                attempts=s.attempts,
            ),
        )

    # ------------------------------------------------------------------
    # Death and repair
    # ------------------------------------------------------------------
    def kill_worker(self, shard: int) -> None:
        """Crash one worker thread on purpose (tests, chaos drills).
        The death handler fails over its queue; the supervisor (when
        enabled) respawns it with a rebuilt service."""
        self._queues[shard].put(_KILL)

    def _on_worker_death(self, shard: int, exc: BaseException) -> None:
        """Runs *in* the dying worker thread: mark the shard down, fail
        over everything it held or had queued, wake the supervisor."""
        with self._work:
            already = shard in self._down
            self._down.add(shard)
            closing = self._closing
        if already:
            return  # a restarted worker died before repair finished
        self.breakers[shard].record_failure()
        held = self._holding[shard]
        self._holding[shard] = []
        requeued: List[_Submission] = []
        while True:
            try:
                item = self._queues[shard].get_nowait()
            except Empty:
                break
            if item is _STOP or item is _KILL:
                continue
            requeued.extend(item)
        with self._state_lock:
            awaiting_retry = set(self._timers)
        for s in held:
            if s.settled or s in awaiting_retry:
                continue  # already resolved or already backed off
            self._retry_or_fail(
                s,
                ShardFailed(
                    f"worker shard {shard} died mid-batch: {exc!r}",
                    query_name=s.query.name,
                    fingerprint=s.fp,
                    shard=shard,
                    attempts=s.attempts,
                ),
            )
        if requeued:
            with self._work:
                # Front of the line: these already waited one full
                # flush; the next dispatch reroutes them around the
                # down shard.
                self._pending.extendleft(reversed(requeued))
                self._work.notify_all()
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.events.emit(
                "worker_death",
                shard=shard,
                error=repr(exc),
                held=len(held),
                requeued=len(requeued),
            )
        if self.supervisor is not None and not closing:
            self.supervisor.poke()

    def _dead_shards(self) -> List[int]:
        """Supervisor hook: shards needing a respawn."""
        with self._work:
            if self._closing:
                return []
            return sorted(self._down)

    def _restart_shard(self, shard: int) -> None:
        """Supervisor hook: respawn one dead worker.

        With a service factory the shard's service is rebuilt from
        scratch — fresh policy copy, planner, caches — because a worker
        that died mid-batch may hold arbitrarily corrupt state (the
        restarted shard's counters restart with it). Without one, the
        surviving service object is reused. Either way the breaker is
        force-closed and routing returns to normal.
        """
        with self._work:
            if self._closing or shard not in self._down:
                return
        if self._service_factory is not None:
            old = self.services[shard]
            service = self._service_factory(shard)
            if service.telemetry is None:
                service.telemetry = self.telemetry
            # The rebuilt policy is a private copy: private lock.
            service.engine.inference_lock = threading.Lock()
            if self.fault_injector is not None:
                service.install_fault_injector(self.fault_injector)
            if isinstance(service, ProcessWorkerClient) and isinstance(
                old, ProcessWorkerClient
            ):
                # Carry forward what the old worker had been told since
                # its spawn: the guardrail threshold and the last
                # hot-swapped weights, so the replacement rejoins at the
                # live policy version even without a retraining daemon
                # (policy_sync, when wired, re-confirms right after).
                if old.router.threshold is not None:
                    service.router.set_threshold(old.router.threshold)
                if old._applied_weights is not None:
                    params, version = old._applied_weights
                    try:
                        service.apply_policy_weights(params, version)
                    except Exception:
                        pass  # fresh worker still serves at spec version
            self.services[shard] = service
            if isinstance(old, ProcessWorkerClient):
                # Reap the zombie and release its pipes and rings (the
                # restarted shard's counters restart with it, same as a
                # rebuilt thread-mode service).
                old.shutdown()
        if self.policy_sync is not None:
            # Rejoin at the current promoted policy version before any
            # request reaches the rebuilt service (its worker thread
            # has not started; no lock needed on the fresh engine).
            self.policy_sync(self.services[shard], shard)
        thread = threading.Thread(
            target=self._worker_loop,
            args=(shard,),
            name=f"serving-shard-{shard}",
            daemon=True,
        )
        self._workers[shard] = thread
        self.breakers[shard].reset()
        with self._work:
            # Reopen routing before the thread starts: anything
            # dispatched in the gap just waits in the shard queue.
            self._down.discard(shard)
            self.stats.worker_restarts += 1
            self._work.notify_all()
        thread.start()
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.events.emit(
                "worker_restart",
                shard=shard,
                rebuilt=self._service_factory is not None,
            )

    def _flusher_dead(self) -> bool:
        """Supervisor hook: does the flusher thread need a respawn?"""
        with self._work:
            if self._closing:
                return False
        return not self._flusher.is_alive()

    def _restart_flusher(self) -> None:
        """Supervisor hook: respawn a crashed flusher thread."""
        with self._work:
            if self._closing:
                return
        self._flusher = threading.Thread(
            target=self._flusher_loop, name="serving-flusher", daemon=True
        )
        self._flusher.start()

    def _check_worker_processes(self) -> None:
        """Supervisor hook (process mode): catch worker-process deaths
        the shard threads cannot see, and hung workers.

        A shard thread blocked in ``recv`` notices its process dying by
        EOF on its own; one parked on an *empty queue* would sit on a
        corpse forever, so an exit code on a not-down shard gets the
        thread nudged with the kill sentinel (the normal death path then
        runs; a sentinel made stale by a racing EOF is discarded by the
        death handler's queue drain). Every ``heartbeat_interval_s`` the
        live workers are pinged over the control channel; a worker that
        is alive but unresponsive past one interval is SIGKILL'd here
        and reaped by the exit-code check on the next tick.
        """
        now = self.clock()
        beat = now - self._last_heartbeat >= self.config.heartbeat_interval_s
        if beat:
            self._last_heartbeat = now
        for shard, service in enumerate(self.services):
            if not isinstance(service, ProcessWorkerClient):
                continue
            with self._work:
                if self._closing:
                    return
                if shard in self._down:
                    continue
            if service.exitcode() is not None:
                self._queues[shard].put(_KILL)
            elif beat and not service.ping(
                timeout=self.config.heartbeat_interval_s
            ):
                service.kill()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def drain(self, timeout: float | None = None) -> None:
        """Block until every accepted submission has resolved.

        Pending submissions are flushed immediately (no deadline wait),
        and deadline-carrying submissions that go overdue while
        draining are force-expired (``DeadlineExceeded``,
        ``stage="drain"``) — so a drain can never hang past the longest
        outstanding request deadline. Raises ``TimeoutError`` if
        ``timeout`` seconds pass first; the front end keeps serving
        either way.
        """
        deadline = None if timeout is None else self.clock() + timeout
        with self._work:
            self._flush_asap = True
            self._work.notify_all()
        try:
            while True:
                now = self.clock()
                with self._state_lock:
                    overdue = [
                        s
                        for s in self._outstanding
                        if s.deadline is not None and now >= s.deadline
                    ]
                    next_dl = min(
                        (
                            s.deadline
                            for s in self._outstanding
                            if s.deadline is not None and now < s.deadline
                        ),
                        default=None,
                    )
                for s in overdue:
                    self._resolve(
                        s,
                        error=DeadlineExceeded(
                            "request deadline expired during drain",
                            stage="drain",
                            query_name=s.query.name,
                            fingerprint=s.fp,
                            shard=s.shard,
                            attempts=s.attempts,
                        ),
                        counter="deadline_expired",
                    )
                with self._work:
                    if self._inflight <= 0:
                        return
                    remaining = (
                        None if deadline is None else deadline - self.clock()
                    )
                    if remaining is not None and remaining <= 0:
                        raise TimeoutError(
                            f"drain timed out with {self._inflight} in flight"
                        )
                    wait = remaining
                    if next_dl is not None:
                        # Wake at the next request deadline to force-expire.
                        until = max(0.0, next_dl - self.clock()) + 0.001
                        wait = until if wait is None else min(wait, until)
                    self._work.wait(wait)
        finally:
            with self._work:
                self._flush_asap = False
                self._work.notify_all()

    def close(self, timeout: float | None = None) -> None:
        """Stop accepting work, serve everything queued, stop threads.

        Every future handed out before ``close`` resolves: the flusher
        drains the pending queue into the shard queues before exiting,
        each worker finishes its queue before seeing the stop sentinel,
        and anything still unresolved after that (parked in a retry
        backoff, stranded on a dead shard) is swept with a structured
        ``ServiceClosed``. Idempotent.
        """
        with self._work:
            if self._closed:
                return
            self._closing = True
            self._work.notify_all()
        if self.supervisor is not None:
            self.supervisor.stop()
        self._flusher.join(timeout)
        if self._flusher.is_alive():
            # The flusher may still be dispatching pending submissions;
            # stopping workers now would strand those futures. Leave
            # everything running and let the caller retry close().
            raise TimeoutError(
                "close() timed out waiting for the flusher; retry close()"
            )
        for queue in self._queues:
            queue.put(_STOP)
        for worker in self._workers:
            worker.join(timeout)
            if worker.is_alive():
                raise TimeoutError(
                    f"close() timed out waiting for {worker.name}; retry close()"
                )
        # Workers are gone: no new retry timers can start. Cancel the
        # parked ones and sweep every submission still unresolved.
        with self._state_lock:
            timers = list(self._timers.values())
            self._timers.clear()
        for timer in timers:
            timer.cancel()
        with self._state_lock:
            leftovers = list(self._outstanding)
        for s in leftovers:
            self._resolve(
                s,
                error=ServiceClosed(
                    "front end closed before the request resolved",
                    query_name=s.query.name,
                    fingerprint=s.fp,
                    shard=s.shard,
                    attempts=s.attempts,
                ),
            )
        # Process mode: pull one last metric/fault snapshot into each
        # proxy's cache (so counters()/metrics after close still
        # answer), then stop the children and release pipes and rings.
        for service in self.services:
            if isinstance(service, ProcessWorkerClient):
                service.registry
                service.fault_fired_counts()
                service.shutdown()
        self._closed = True

    def __enter__(self) -> "ServingFrontEnd":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def refresh_statistics(
        self,
        seed: int = 1,
        sample_size: int = 30_000,
        tables: Sequence[str] | None = None,
    ) -> None:
        """Re-ANALYZE the shared database once and invalidate every
        shard's caches (all of them, or only the entries reading
        ``tables`` when given). Safe to call while shards are serving —
        the caches are thread-safe, and in-flight requests complete
        against a consistent view at worst one refresh behind.

        Process mode: each worker owns a private database copy, so the
        epoch bump travels the control channel — the worker re-runs the
        *same seeded* ANALYZE on its copy (bit-identical statistics,
        plan parity with the parent) and evicts its staled caches, all
        synchronously before this method returns. No request served
        after the return can use pre-refresh cached decisions.
        """
        self.services[0].db.analyze(seed=seed, sample_size=sample_size, tables=tables)
        for service in self.services:
            if isinstance(service, ProcessWorkerClient):
                try:
                    service.remote_refresh_statistics(
                        seed=seed, sample_size=sample_size, tables=tables
                    )
                except OptimizeError:
                    # Dead worker: its respawn rebuilds from the parent
                    # database copy, already re-analyzed above.
                    pass
            else:
                service.invalidate_statistics_caches(tables=tables)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def drain_experience(self):
        """Collected trajectories from every shard, oldest first per
        shard (feed to ``Trainer.replay`` for hands-free retraining)."""
        out = []
        for service in self.services:
            if service.experience is not None:
                out.extend(service.experience.drain())
        return out

    def latency_summary(self) -> Dict[str, float]:
        """p50/p95/mean submit-to-resolve latency (queueing included),
        from the shared log-bucket histogram (worst-case percentile
        error documented in :mod:`repro.obs.metrics`; mean is exact)."""
        hist = self.latency_ms_hist
        if not hist.count:
            return {"p50_ms": 0.0, "p95_ms": 0.0, "mean_ms": 0.0}
        return {
            "p50_ms": hist.quantile(0.50),
            "p95_ms": hist.quantile(0.95),
            "mean_ms": hist.mean,
        }

    def metrics_registry(self) -> MetricsRegistry:
        """One merged registry over the whole stack: front-end queue
        metrics, every shard's serving metrics (counters summed, latency
        histograms pooled bucket-for-bucket), and the trace-derived
        per-stage histograms when telemetry is attached. This is what
        ``repro metrics`` exposes."""
        registries = [self.registry] + [s.registry for s in self.services]
        registries.extend(self.extra_registries)
        if self.telemetry is not None:
            registries.append(self.telemetry.registry)
        return MetricsRegistry.merge(registries)

    def counters(self) -> Dict[str, float]:
        """Front-end stats plus every shard's counters rolled up.

        The rollup is :meth:`MetricsRegistry.merge` over the shard
        registries rendered through the same legacy view the shards use
        — summed counts, rates recomputed from summed numerators and
        denominators, percentiles from the pooled histogram. Per-shard
        request counts are also exposed (``shard0_requests``, ...),
        which is how an operator sees the consistent-hash load split.
        """
        merged = MetricsRegistry.merge(service.registry for service in self.services)
        rolled = legacy_counters(merged)
        for shard, service in enumerate(self.services):
            rolled[f"shard{shard}_requests"] = service.stats.requests
        rolled.update(self.stats.as_dict())
        rolled["frontend_shards"] = self.config.n_shards
        rolled["frontend_breakers_open"] = sum(
            1 for breaker in self.breakers if breaker.state != "closed"
        )
        if self.transport is not None:
            rolled["frontend_executor_processes"] = sum(
                1
                for s in self.services
                if isinstance(s, ProcessWorkerClient) and s.is_alive()
            )
            rolled.update(self.transport.as_dict())
        return rolled

    def fault_fired_counts(self) -> Dict[str, int]:
        """Merged chaos counters across the process boundary.

        The parent injector draws request-scoped faults
        (``worker_fault``, ``latency_spike``, ``worker_kill``); each
        worker process draws its own service-scoped ones
        (``stats_race``, ``policy_nan``) from the same seed. The sites
        are disjoint, so a plain sum is the whole schedule.
        """
        counts: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        if self.fault_injector is not None:
            for kind, n in self.fault_injector.fired_counts().items():
                counts[kind] = counts.get(kind, 0) + n
        for service in self.services:
            if isinstance(service, ProcessWorkerClient):
                for kind, n in service.fault_fired_counts().items():
                    counts[kind] = counts.get(kind, 0) + n
        return counts
