"""The concurrent serving front end: batch-or-timeout + sharded workers.

``OptimizerService`` answers a burst only when callers arrive
pre-batched; production traffic arrives as independent concurrent
requests. This front end converts the serving path from call-and-return
to queue-and-flush:

1. ``submit(query)`` fingerprints the query, routes it to a worker
   shard via a consistent-hash ring, and returns a
   :class:`concurrent.futures.Future` immediately;
2. a background **flusher** drains the pending queue on a
   *batch-or-timeout* deadline — it flushes as soon as ``max_batch``
   submissions accumulate, or when the oldest submission has waited
   ``max_delay_ms``, whichever comes first — so a lone query is never
   stuck waiting for filler and a burst is never served one by one;
3. each flush is split by shard and dispatched to **N worker threads**,
   one :class:`~repro.serving.service.OptimizerService` each. Because
   the ring keys on the canonical query fingerprint, every
   fingerprint-equivalent query lands on the same shard's plan cache,
   guardrail memo, and experience buffer — shard-private caches need no
   cross-shard coherence, yet still see every repeat of "their" query
   shapes.

Micro-batched inference inside each shard is what amortizes the
policy's forward passes across the concurrent callers; the front end
exists to manufacture those batches out of unbatched traffic.

Lifecycle: ``drain()`` blocks until every accepted submission has
resolved; ``close()`` additionally stops the flusher and workers
(flushing everything still queued first, so every future returned by
``submit`` resolves — with a plan or an error — never dangles). The
class is a context manager; ``submit`` after ``close`` raises.
"""

from __future__ import annotations

import copy
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from queue import Empty, SimpleQueue
from typing import Deque, Dict, List, Sequence

from repro.db.query import Query
from repro.obs import Telemetry
from repro.obs.metrics import MetricsRegistry
from repro.serving.fingerprint import canonical_alias_map, fingerprint
from repro.serving.service import (
    OptimizerService,
    ServedPlan,
    ServingConfig,
    legacy_counters,
)
from repro.serving.sharding import HashRing

__all__ = ["FrontEndConfig", "FrontEndStats", "ServingFrontEnd"]

#: Sentinel telling a worker thread its queue is finished.
_STOP = object()


@dataclass(frozen=True)
class FrontEndConfig:
    """Knobs for the concurrent front end."""

    #: Worker shards (each owns a private OptimizerService).
    n_shards: int = 2
    #: Flush as soon as this many submissions are pending...
    max_batch: int = 32
    #: ...or when the oldest pending submission has waited this long.
    max_delay_ms: float = 2.0
    #: Backpressure: max submissions accepted but not yet resolved.
    max_pending: int = 65_536
    #: Virtual nodes per shard on the consistent-hash ring.
    hash_replicas: int = 64
    #: Kept for config compatibility: submit-to-resolve percentiles now
    #: come from a cumulative log-bucket histogram (fixed memory, no
    #: window), so this knob no longer bounds anything.
    latency_window: int = 8192

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.max_delay_ms < 0:
            raise ValueError("max_delay_ms must be non-negative")
        if self.max_pending < 1:
            raise ValueError("max_pending must be at least 1")


@dataclass
class FrontEndStats:
    """Flusher/queue health counters (per-shard serving counters live on
    each shard's service and are rolled up by :meth:`ServingFrontEnd.counters`)."""

    submitted: int = 0
    flushes: int = 0
    #: Flushes triggered by a full batch...
    flushes_size: int = 0
    #: ...by the max_delay deadline on a partial batch...
    flushes_deadline: int = 0
    #: ...or by drain()/close() forcing everything out.
    flushes_drain: int = 0
    #: Sum of flush sizes, for mean flush occupancy.
    occupancy_sum: int = 0
    #: Batches actually served by workers (a worker coalesces every
    #: dispatch waiting in its queue into one serve call, so under
    #: backlog the served occupancy exceeds the flush occupancy).
    served_batches: int = 0
    served_occupancy_sum: int = 0
    rejected: int = 0

    @property
    def batch_occupancy_mean(self) -> float:
        return self.occupancy_sum / self.flushes if self.flushes else 0.0

    @property
    def served_occupancy_mean(self) -> float:
        return (
            self.served_occupancy_sum / self.served_batches
            if self.served_batches
            else 0.0
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "frontend_submitted": self.submitted,
            "frontend_flushes": self.flushes,
            "frontend_flushes_size": self.flushes_size,
            "frontend_flushes_deadline": self.flushes_deadline,
            "frontend_flushes_drain": self.flushes_drain,
            "frontend_rejected": self.rejected,
            "frontend_batch_occupancy_mean": round(self.batch_occupancy_mean, 2),
            "frontend_served_batches": self.served_batches,
            "frontend_served_occupancy_mean": round(self.served_occupancy_mean, 2),
        }


@dataclass
class _Submission:
    """One accepted request travelling from queue to shard to future."""

    query: Query
    fp: str
    alias_map: Dict[str, str]
    shard: int
    future: "Future[ServedPlan]"
    submitted_at: float
    #: Per-request trace (None when telemetry is off). Ownership follows
    #: the submission: submitter -> flusher -> one worker, sequentially.
    trace: object = None
    #: When the flusher dispatched this submission (worker_queue span).
    flushed_at: float | None = None


class ServingFrontEnd:
    """Queue-and-flush concurrency over per-shard optimizer services.

    ``services`` is one :class:`OptimizerService` per shard; use
    :meth:`build` to construct a standard set (shard-private planners,
    memos, and policy copies) from a database and an agent. Services
    must not share mutable inference state — the constructor installs a
    per-policy-object lock on each shard's micro-batch engine as a
    safety net, so even a shared policy stays correct (just serialized).
    """

    def __init__(
        self,
        services: Sequence[OptimizerService],
        config: FrontEndConfig | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if not services:
            raise ValueError("need at least one shard service")
        self.config = config or FrontEndConfig(n_shards=len(services))
        if self.config.n_shards != len(services):
            raise ValueError(
                f"config says {self.config.n_shards} shards but "
                f"{len(services)} services were given"
            )
        self.services = list(services)
        self.ring = HashRing(self.config.n_shards, self.config.hash_replicas)
        self.stats = FrontEndStats()
        self.clock = time.monotonic
        #: Shared telemetry spine: traces begin at submit and finish in
        #: the worker that resolves the future; shard services reuse it
        #: for their event hooks (guardrail fallbacks, invalidations).
        self.telemetry = telemetry
        if telemetry is not None:
            for service in self.services:
                if service.telemetry is None:
                    service.telemetry = telemetry
        self.registry = MetricsRegistry()
        self.latency_ms_hist = self.registry.histogram(
            "repro_request_latency_ms",
            "submit-to-resolve latency (queueing included)",
        )
        self._register_metrics()
        # The nn layers stash forward activations on the policy object,
        # so concurrent forward passes on one shared policy would read
        # each other's state; one lock per distinct policy object keeps
        # distinct-policy shards fully parallel and shared-policy
        # setups merely serialized at the forward pass.
        locks: Dict[int, threading.Lock] = {}
        for service in self.services:
            policy = service.engine.policy
            service.engine.inference_lock = locks.setdefault(
                id(policy), threading.Lock()
            )
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._pending: Deque[_Submission] = deque()
        self._inflight = 0
        self._flush_asap = False
        self._closing = False
        self._closed = False
        self._queues: List["SimpleQueue"] = [
            SimpleQueue() for _ in range(self.config.n_shards)
        ]
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                args=(shard,),
                name=f"serving-shard-{shard}",
                daemon=True,
            )
            for shard in range(self.config.n_shards)
        ]
        for worker in self._workers:
            worker.start()
        self._flusher = threading.Thread(
            target=self._flusher_loop, name="serving-flusher", daemon=True
        )
        self._flusher.start()

    def _register_metrics(self) -> None:
        """Expose the flusher/queue stats as pull-style registry metrics
        (same pattern as ``OptimizerService._register_metrics``)."""
        reg = self.registry
        reg.counter_fn(
            "repro_frontend_submitted_total",
            lambda: self.stats.submitted,
            "submissions accepted",
        )
        reg.counter_fn(
            "repro_frontend_flushes_total",
            lambda: self.stats.flushes,
            "flusher dispatches",
        )
        reg.counter_fn(
            "repro_frontend_flushes_size_total",
            lambda: self.stats.flushes_size,
            "flushes triggered by a full batch",
        )
        reg.counter_fn(
            "repro_frontend_flushes_deadline_total",
            lambda: self.stats.flushes_deadline,
            "flushes triggered by the max_delay deadline",
        )
        reg.counter_fn(
            "repro_frontend_flushes_drain_total",
            lambda: self.stats.flushes_drain,
            "flushes forced by drain()/close()",
        )
        reg.counter_fn(
            "repro_frontend_rejected_total",
            lambda: self.stats.rejected,
            "submissions rejected by backpressure",
        )
        reg.counter_fn(
            "repro_frontend_served_batches_total",
            lambda: self.stats.served_batches,
            "worker micro-batches actually served",
        )
        reg.gauge_fn(
            "repro_frontend_inflight",
            lambda: self._inflight,
            "submissions accepted but not yet resolved",
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        db,
        agent_or_policy,
        featurizer=None,
        serving_config: ServingConfig | None = None,
        config: FrontEndConfig | None = None,
        planner_factory=None,
        reward_source=None,
        telemetry: Telemetry | None = None,
    ) -> "ServingFrontEnd":
        """A front end with the standard shard setup.

        Each shard gets its own :class:`~repro.optimizer.planner.Planner`
        (with a private sub-plan cost memo) and its own deep copy of the
        policy, so shards never contend on mutable planner or inference
        state. ``planner_factory()`` overrides the per-shard planner.
        """
        from repro.core.featurize import QueryFeaturizer
        from repro.optimizer.memo import SubPlanCostMemo
        from repro.optimizer.planner import Planner

        config = config or FrontEndConfig()
        featurizer = featurizer or QueryFeaturizer(db.schema)
        policy = getattr(agent_or_policy, "policy", agent_or_policy)
        make_planner = planner_factory or (
            lambda: Planner(db, cost_memo=SubPlanCostMemo())
        )
        services = [
            OptimizerService(
                db,
                policy if shard == 0 else copy.deepcopy(policy),
                planner=make_planner(),
                featurizer=featurizer,
                config=serving_config,
                reward_source=reward_source,
                telemetry=telemetry,
            )
            for shard in range(config.n_shards)
        ]
        return cls(services, config=config, telemetry=telemetry)

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(self, query: Query) -> "Future[ServedPlan]":
        """Queue one request; the returned future resolves to its
        :class:`ServedPlan` (or to the error that served it)."""
        # Reject before canonicalizing: a saturated or closed front end
        # must turn submissions away in O(1), not after paying the WL
        # refinement that is the most expensive part of admission. The
        # check re-runs after canonicalization, which stays
        # authoritative against races.
        with self._work:
            self._check_accepting()
        # Canonicalize in the caller's thread: routing needs the
        # fingerprint anyway, and the shard reuses both instead of
        # recomputing them.
        names = canonical_alias_map(query)
        fp = fingerprint(query, names)
        shard = self.ring.shard_for(fp)
        trace = (
            self.telemetry.begin_trace(
                "request", query=query.name, fingerprint=fp, shard=shard
            )
            if self.telemetry is not None
            else None
        )
        submission = _Submission(
            query=query,
            fp=fp,
            alias_map=names,
            shard=shard,
            future=Future(),
            submitted_at=self.clock(),
            trace=trace,
        )
        with self._work:
            self._check_accepting()
            self._pending.append(submission)
            self._inflight += 1
            self.stats.submitted += 1
            self._work.notify_all()
        return submission.future

    def _check_accepting(self) -> None:
        """Raise if the front end cannot take another submission.

        Call with ``self._work`` held: the rejected counter is a
        read-modify-write and the counters are promised to be exact.
        """
        if self._closing:
            raise RuntimeError(
                "submit() after close(): front end no longer accepts work"
            )
        if self._inflight >= self.config.max_pending:
            self.stats.rejected += 1
            raise RuntimeError(
                f"backpressure: {self._inflight} submissions in flight "
                f"(max_pending={self.config.max_pending})"
            )

    def optimize(self, query: Query, timeout: float | None = None) -> ServedPlan:
        """Synchronous wrapper: submit and wait (the old one-call API)."""
        return self.submit(query).result(timeout)

    def optimize_batch(
        self, queries: Sequence[Query], timeout: float | None = None
    ) -> List[ServedPlan]:
        """Synchronous wrapper: submit all, wait for all, submit order."""
        futures = [self.submit(query) for query in queries]
        return [future.result(timeout) for future in futures]

    # ------------------------------------------------------------------
    # Flusher / workers
    # ------------------------------------------------------------------
    def _flusher_loop(self) -> None:
        while True:
            with self._work:
                while not self._pending and not self._closing:
                    self._work.wait()
                if not self._pending:  # closing with nothing queued
                    break
                deadline = (
                    self._pending[0].submitted_at + self.config.max_delay_ms / 1000.0
                )
                while True:
                    if len(self._pending) >= self.config.max_batch:
                        reason = "size"
                        break
                    if self._closing or self._flush_asap:
                        reason = "drain"
                        break
                    remaining = deadline - self.clock()
                    if remaining <= 0:
                        reason = "deadline"
                        break
                    self._work.wait(remaining)
                take = min(len(self._pending), self.config.max_batch)
                batch = [self._pending.popleft() for _ in range(take)]
                self.stats.flushes += 1
                self.stats.occupancy_sum += take
                if reason == "size":
                    self.stats.flushes_size += 1
                elif reason == "deadline":
                    self.stats.flushes_deadline += 1
                else:
                    self.stats.flushes_drain += 1
            # Dispatch outside the lock: queue puts never block, and
            # workers must be able to grab the lock to finish batches.
            flushed_at = self.clock()
            by_shard: Dict[int, List[_Submission]] = {}
            for submission in batch:
                submission.flushed_at = flushed_at
                if submission.trace is not None:
                    submission.trace.record(
                        "queue_wait",
                        (flushed_at - submission.submitted_at) * 1000.0,
                        reason=reason,
                    )
                by_shard.setdefault(submission.shard, []).append(submission)
            for shard, submissions in by_shard.items():
                self._queues[shard].put(submissions)

    def _worker_loop(self, shard: int) -> None:
        service = self.services[shard]
        queue = self._queues[shard]
        stop = False
        while not stop:
            submissions = queue.get()
            if submissions is _STOP:
                break
            submissions = list(submissions)
            # Coalesce: when this worker fell behind, several flusher
            # dispatches are waiting in its queue — serving them as one
            # micro-batch is the whole point of the front end, so drain
            # up to max_batch before running the rollout.
            while len(submissions) < self.config.max_batch:
                try:
                    extra = queue.get_nowait()
                except Empty:
                    break
                if extra is _STOP:
                    stop = True
                    break
                submissions.extend(extra)
            # Transition futures to RUNNING; a future the caller already
            # cancelled is dropped here (set_result on it would raise
            # InvalidStateError and kill the worker).
            live = [
                s for s in submissions if s.future.set_running_or_notify_cancel()
            ]
            picked_up = self.clock()
            for submission in live:
                if submission.trace is not None and submission.flushed_at is not None:
                    submission.trace.record(
                        "worker_queue",
                        (picked_up - submission.flushed_at) * 1000.0,
                        shard=shard,
                    )
            try:
                served = service.optimize_batch(
                    [s.query for s in live],
                    fingerprints=[s.fp for s in live],
                    alias_maps=[s.alias_map for s in live],
                    traces=[s.trace for s in live],
                )
            except BaseException as exc:  # resolve, never dangle
                for submission in live:
                    # Finish before resolving: the caller must never see
                    # a future whose trace is still open.
                    if self.telemetry is not None:
                        self.telemetry.finish_trace(
                            submission.trace, error=repr(exc)
                        )
                    submission.future.set_exception(exc)
            else:
                for submission, plan in zip(live, served):
                    if self.telemetry is not None:
                        self.telemetry.finish_trace(
                            submission.trace, source=plan.source
                        )
                    submission.future.set_result(plan)
            now = self.clock()
            # Latency describes what was actually served; cancelled
            # submissions only release inflight. The histogram has its
            # own lock, so observe outside the flusher lock.
            for submission in live:
                self.latency_ms_hist.observe(
                    (now - submission.submitted_at) * 1000.0
                )
            with self._work:
                self._inflight -= len(submissions)
                if live:
                    self.stats.served_batches += 1
                    self.stats.served_occupancy_sum += len(live)
                self._work.notify_all()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def drain(self, timeout: float | None = None) -> None:
        """Block until every accepted submission has resolved.

        Pending submissions are flushed immediately (no deadline wait).
        Raises ``TimeoutError`` if ``timeout`` seconds pass first; the
        front end keeps serving either way.
        """
        deadline = None if timeout is None else self.clock() + timeout
        with self._work:
            self._flush_asap = True
            self._work.notify_all()
            try:
                while self._inflight > 0:
                    remaining = None if deadline is None else deadline - self.clock()
                    if remaining is not None and remaining <= 0:
                        raise TimeoutError(
                            f"drain timed out with {self._inflight} in flight"
                        )
                    self._work.wait(remaining)
            finally:
                self._flush_asap = False

    def close(self, timeout: float | None = None) -> None:
        """Stop accepting work, serve everything queued, stop threads.

        Every future handed out before ``close`` resolves: the flusher
        drains the pending queue into the shard queues before exiting,
        and each worker finishes its queue before seeing the stop
        sentinel. Idempotent.
        """
        with self._work:
            if self._closed:
                return
            self._closing = True
            self._work.notify_all()
        self._flusher.join(timeout)
        if self._flusher.is_alive():
            # The flusher may still be dispatching pending submissions;
            # stopping workers now would strand those futures. Leave
            # everything running and let the caller retry close().
            raise TimeoutError(
                "close() timed out waiting for the flusher; retry close()"
            )
        for queue in self._queues:
            queue.put(_STOP)
        for worker in self._workers:
            worker.join(timeout)
            if worker.is_alive():
                raise TimeoutError(
                    f"close() timed out waiting for {worker.name}; retry close()"
                )
        self._closed = True

    def __enter__(self) -> "ServingFrontEnd":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def refresh_statistics(
        self,
        seed: int = 1,
        sample_size: int = 30_000,
        tables: Sequence[str] | None = None,
    ) -> None:
        """Re-ANALYZE the shared database once and invalidate every
        shard's caches (all of them, or only the entries reading
        ``tables`` when given). Safe to call while shards are serving —
        the caches are thread-safe, and in-flight requests complete
        against a consistent view at worst one refresh behind.
        """
        self.services[0].db.analyze(seed=seed, sample_size=sample_size, tables=tables)
        for service in self.services:
            service.invalidate_statistics_caches(tables=tables)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def drain_experience(self):
        """Collected trajectories from every shard, oldest first per
        shard (feed to ``Trainer.replay`` for hands-free retraining)."""
        out = []
        for service in self.services:
            if service.experience is not None:
                out.extend(service.experience.drain())
        return out

    def latency_summary(self) -> Dict[str, float]:
        """p50/p95/mean submit-to-resolve latency (queueing included),
        from the shared log-bucket histogram (worst-case percentile
        error documented in :mod:`repro.obs.metrics`; mean is exact)."""
        hist = self.latency_ms_hist
        if not hist.count:
            return {"p50_ms": 0.0, "p95_ms": 0.0, "mean_ms": 0.0}
        return {
            "p50_ms": hist.quantile(0.50),
            "p95_ms": hist.quantile(0.95),
            "mean_ms": hist.mean,
        }

    def metrics_registry(self) -> MetricsRegistry:
        """One merged registry over the whole stack: front-end queue
        metrics, every shard's serving metrics (counters summed, latency
        histograms pooled bucket-for-bucket), and the trace-derived
        per-stage histograms when telemetry is attached. This is what
        ``repro metrics`` exposes."""
        registries = [self.registry] + [s.registry for s in self.services]
        if self.telemetry is not None:
            registries.append(self.telemetry.registry)
        return MetricsRegistry.merge(registries)

    def counters(self) -> Dict[str, float]:
        """Front-end stats plus every shard's counters rolled up.

        The rollup is :meth:`MetricsRegistry.merge` over the shard
        registries rendered through the same legacy view the shards use
        — summed counts, rates recomputed from summed numerators and
        denominators, percentiles from the pooled histogram. Per-shard
        request counts are also exposed (``shard0_requests``, ...),
        which is how an operator sees the consistent-hash load split.
        """
        merged = MetricsRegistry.merge(service.registry for service in self.services)
        rolled = legacy_counters(merged)
        for shard, service in enumerate(self.services):
            rolled[f"shard{shard}_requests"] = service.stats.requests
        rolled.update(self.stats.as_dict())
        rolled["frontend_shards"] = self.config.n_shards
        return rolled
