"""Seeded chaos harness: deterministic fault injection for the serving path.

Fault tolerance that is never exercised is a comment, not a feature.
:class:`FaultInjector` deliberately breaks the serving path — worker
exceptions, latency spikes, policy NaNs, statistics-epoch races — at
configurable rates, and does it **deterministically**: every injection
decision is a pure function of ``(seed, kind, key)``, so the same seed
replays the exact same fault schedule regardless of thread interleaving,
retry timing, or batch composition. A chaos run that fails in CI can be
re-run locally with the same seed and hit the same faults.

Injection sites (each passes a site-specific ``key``):

- ``worker_fault`` — the shard worker raises :class:`InjectedFault`
  for a request *before* serving it (keyed by request seq + attempt, so
  a retry draws fresh luck);
- ``latency_spike`` — the worker sleeps ``spike_ms`` before serving a
  batch containing a spiked request (tail-latency pressure, deadline
  expiry mid-serve);
- ``policy_nan`` — the micro-batch engine corrupts one forward pass's
  log-probs to NaN (keyed by forward-pass ordinal), exercising the
  degradation ladder;
- ``stats_race`` — the service observes a statistics-epoch bump racing
  its batch (keyed by batch ordinal), exercising the epoch guards on
  every cache put;
- ``replay_poison`` — the retraining daemon corrupts a shadow replay
  batch's rewards to NaN before learning from it (keyed by retraining
  cycle), exercising the eval gate that must refuse to promote the
  poisoned weights.

The injector is handed to components as a plain attribute (``None``
means no chaos — the default, and the hot path pays one attribute check
per site). Rates are independent probabilities per decision, not a
global budget.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["FaultConfig", "FaultInjector", "seeded_uniform"]

#: The fault kinds an injector draws decisions for.
FAULT_KINDS = (
    "worker_fault",
    "latency_spike",
    "policy_nan",
    "stats_race",
    "replay_poison",
    "worker_kill",
)


def seeded_uniform(key: str) -> float:
    """Deterministic uniform [0, 1) draw from a string key.

    One blake2b digest, no shared state — safe to call from any thread
    and stable across processes/platforms. Also used by the front end's
    retry backoff jitter (same property wanted: deterministic given the
    request identity, uncorrelated across requests).
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return struct.unpack(">Q", digest)[0] / 2**64


@dataclass
class FaultConfig:
    """Chaos knobs. All rates are probabilities in [0, 1] evaluated
    independently per decision; 0 disables that fault kind."""

    worker_fault_rate: float = 0.0
    latency_spike_rate: float = 0.0
    #: How long a latency spike stalls the worker, in milliseconds.
    spike_ms: float = 25.0
    policy_nan_rate: float = 0.0
    stats_race_rate: float = 0.0
    replay_poison_rate: float = 0.0
    #: SIGKILL a worker *process* before it serves a batch holding the
    #: fired request (``executor="process"`` only — thread workers have
    #: no process to kill, so the front end skips the draw there).
    worker_kill_rate: float = 0.0
    #: Seed for the deterministic fault schedule.
    seed: int = 0

    def rate(self, kind: str) -> float:
        return {
            "worker_fault": self.worker_fault_rate,
            "latency_spike": self.latency_spike_rate,
            "policy_nan": self.policy_nan_rate,
            "stats_race": self.stats_race_rate,
            "replay_poison": self.replay_poison_rate,
            "worker_kill": self.worker_kill_rate,
        }[kind]


class FaultInjector:
    """Deterministic, thread-safe fault scheduler.

    ``fires(kind, key)`` is pure given ``(config.seed, kind, key)`` —
    the counters/log it updates are bookkeeping for tests and reports,
    not inputs to the decision.
    """

    def __init__(self, config: FaultConfig | None = None) -> None:
        self.config = config or FaultConfig()
        self._lock = threading.Lock()
        self._fired: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self._log: List[Tuple[str, str]] = []

    def fires(self, kind: str, key: str) -> bool:
        """Should fault ``kind`` fire at injection site ``key``?"""
        rate = self.config.rate(kind)
        if rate <= 0.0:
            return False
        fired = seeded_uniform(f"{self.config.seed}:{kind}:{key}") < rate
        if fired:
            with self._lock:
                self._fired[kind] += 1
                self._log.append((kind, key))
        return fired

    def fired_counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._fired)

    def fired_log(self) -> List[Tuple[str, str]]:
        """Every (kind, key) that fired, in observation order. Order can
        differ run-to-run under concurrency; the *set* cannot."""
        with self._lock:
            return list(self._log)

    def total_fired(self) -> int:
        with self._lock:
            return sum(self._fired.values())
