"""Process workers: the GIL escape hatch for the sharded front end.

Thread-mode sharding (``executor="thread"``) interleaves every shard's
numpy rollouts on one interpreter lock, so adding shards buys memory
isolation and fault containment but almost no throughput. This module
promotes each shard to a **worker process** behind the same
:class:`~repro.serving.sharding.HashRing`:

- :class:`WorkerSpec` is the picklable recipe (database copy, policy,
  featurizer, planner kwargs) a ``spawn``-ed child uses to build its own
  :class:`~repro.serving.service.OptimizerService` — nothing is shared,
  so a SIGKILL'd worker takes only its own state with it.
- :func:`worker_main` is the child entrypoint: a **request loop** that
  serves micro-batches off one framed pipe, plus a **control thread**
  on a second pipe for statistics-epoch bumps, policy hot-swaps (weights
  broadcast through the shm ring, version ack'd), guardrail threshold
  sync, circuit-breaker notices, chaos arming, and metric/experience
  snapshots.
- :class:`ProcessWorkerClient` is the parent-side proxy that presents
  the exact attribute surface the front end, supervisor, and retraining
  daemon already program against (``optimize_batch``, ``stats``,
  ``registry``, ``experience``, ``router.set_threshold``,
  ``apply_policy_weights``, …), so every layer above is executor-
  agnostic. The front end's shard *threads* block in ``os.read`` on the
  reply pipe — which releases the GIL — while the children roll out
  policies truly in parallel.

BLAS pinning: each child is started with ``OMP_NUM_THREADS=1`` (and the
OpenBLAS/MKL/veclib/numexpr equivalents) exported *before* the spawn,
so the child's numpy import sees them — N workers x M BLAS threads
oversubscribing the box is the classic multiprocess perf cliff. Override
with ``REPRO_WORKER_BLAS_THREADS``; explicitly pre-set variables are
respected.

Tracing: the worker serves with a :class:`SpanRecorder` (a minimal
stand-in for :class:`repro.obs.trace.Trace`) and ships the finished
span events back with the batch reply; the proxy replays them into the
request's real trace, so ``repro trace`` output is unchanged in process
mode.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.serving.errors import WorkerProcessDied
from repro.serving.faults import FaultConfig, FaultInjector
from repro.serving.service import (
    OptimizerService,
    ServiceStats,
    ServingConfig,
)
from repro.serving.shm import ShmRing
from repro.serving.transport import (
    DEFAULT_SHM_THRESHOLD,
    FrameConn,
    TransportStats,
)

__all__ = [
    "WorkerSpec",
    "ProcessWorkerClient",
    "SpanRecorder",
    "worker_main",
    "WORKER_ENV_PINS",
    "worker_blas_threads",
]

# -- frame kinds -------------------------------------------------------
K_BATCH = 1  # parent -> worker: serve a micro-batch
K_RESULT = 2  # worker -> parent: plans + trace events
K_ERROR = 3  # worker -> parent: the batch raised (pickled exception)
K_CONTROL = 4  # parent -> worker: (op, kwargs) RPC
K_CONTROL_OK = 5  # worker -> parent: RPC result
K_CONTROL_ERR = 6  # worker -> parent: RPC raised (pickled exception)
K_SHUTDOWN = 7  # parent -> worker: exit the serve loop cleanly

#: Environment variables pinned for worker children so each process
#: runs single-threaded BLAS (N workers x M BLAS threads oversubscribes
#: the box and destroys the multiprocess speedup).
WORKER_ENV_PINS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


def worker_blas_threads() -> str:
    """The BLAS thread count exported to worker children (the
    ``REPRO_WORKER_BLAS_THREADS`` knob; default ``"1"``)."""
    return os.environ.get("REPRO_WORKER_BLAS_THREADS", "1")


@contextmanager
def _pinned_spawn_env():
    """Export the BLAS pins around a ``Process.start()``.

    ``spawn`` children inherit the environment as of exec, and numpy
    reads these variables at import — which happens while the child
    unpickles its :class:`WorkerSpec` — so pinning must bracket the
    spawn itself. Variables the operator already set are left alone,
    and the parent's environment is restored either way.
    """
    value = worker_blas_threads()
    touched: Dict[str, Optional[str]] = {}
    for key in WORKER_ENV_PINS:
        if key not in os.environ:
            touched[key] = None
            os.environ[key] = value
    try:
        yield
    finally:
        for key, previous in touched.items():
            if previous is None:
                os.environ.pop(key, None)
            else:  # pragma: no cover - defensive
                os.environ[key] = previous


@dataclass
class WorkerSpec:
    """Everything a spawned worker needs to build its shard service.

    Must stay picklable end to end: it crosses the spawn boundary as a
    ``Process`` argument. ``planner_kwargs`` replaces the thread-mode
    ``planner_factory`` closure (closures do not pickle); the worker
    constructs ``Planner(db, cost_memo=SubPlanCostMemo(),
    **planner_kwargs)`` itself.
    """

    shard: int
    db: object
    policy: object
    featurizer: object
    serving_config: ServingConfig = field(default_factory=ServingConfig)
    planner_kwargs: Dict[str, object] = field(default_factory=dict)
    policy_version: int = 1
    fault_config: Optional[FaultConfig] = None
    #: Optional reward object for experience collection (must pickle;
    #: its ``db`` reference dedupes against :attr:`db` in the same
    #: pickle graph, so it does not ship a second database copy).
    reward_source: object = None
    #: Per-direction control-ring capacity (weights broadcasts, metric
    #: and experience snapshots travel here out-of-band).
    ring_capacity: int = 8 << 20
    shm_threshold: int = DEFAULT_SHM_THRESHOLD


# ----------------------------------------------------------------------
# Worker-side tracing
# ----------------------------------------------------------------------
class _RecSpan:
    __slots__ = ("name", "attrs", "start_ms", "duration_ms")

    def __init__(self, name: str, attrs: dict, start_ms: float) -> None:
        self.name = name
        self.attrs = attrs
        self.start_ms = start_ms
        self.duration_ms = 0.0


class _RecRoot:
    __slots__ = ("attrs", "children")

    def __init__(self) -> None:
        self.attrs: dict = {}
        self.children: list = []


class SpanRecorder:
    """A pipe-sized stand-in for :class:`repro.obs.trace.Trace`.

    Implements exactly the surface the service's serving path touches
    (``root.attrs``, ``start_span``/``end_span``, ``record``) and keeps
    a flat event list instead of a span tree — the parent proxy replays
    the events into the request's real trace, where per-stage rollups
    (``stage_durations`` sums by name) come out identical.
    """

    def __init__(self) -> None:
        self._t0 = time.perf_counter()
        self.root = _RecRoot()
        self._spans: List[_RecSpan] = []

    def now_ms(self) -> float:
        return (time.perf_counter() - self._t0) * 1000.0

    def start_span(self, name: str, parent=None, **attrs) -> _RecSpan:
        span = _RecSpan(name, dict(attrs), self.now_ms())
        return span

    def end_span(self, span: _RecSpan) -> _RecSpan:
        span.duration_ms = self.now_ms() - span.start_ms
        self._spans.append(span)
        return span

    def record(self, name: str, duration_ms: float, parent=None, **attrs):
        span = _RecSpan(name, dict(attrs), self.now_ms())
        span.duration_ms = float(duration_ms)
        self._spans.append(span)
        return span

    def payload(self) -> dict:
        """Snapshot for the reply frame (attrs copied: callers may have
        mutated span attrs after ``end_span``)."""
        return {
            "spans": [
                (s.name, s.duration_ms, dict(s.attrs)) for s in self._spans
            ],
            "root": dict(self.root.attrs),
        }


# ----------------------------------------------------------------------
# Worker process entrypoint
# ----------------------------------------------------------------------
def _build_worker_service(spec: WorkerSpec) -> OptimizerService:
    from repro.optimizer.memo import SubPlanCostMemo
    from repro.optimizer.planner import Planner

    planner = Planner(
        spec.db, cost_memo=SubPlanCostMemo(), **dict(spec.planner_kwargs)
    )
    service = OptimizerService(
        spec.db,
        spec.policy,
        planner=planner,
        featurizer=spec.featurizer,
        config=spec.serving_config,
        reward_source=spec.reward_source,
    )
    service.policy_version = spec.policy_version
    # The control thread hot-swaps weights while the request loop rolls
    # out: same single-policy/many-threads hazard the front end guards,
    # solved with the same lock.
    service.engine.inference_lock = threading.Lock()
    if spec.fault_config is not None:
        service.install_fault_injector(FaultInjector(spec.fault_config))
    return service


def _control_dispatch(service: OptimizerService, op: str, kwargs: dict):
    if op == "ping":
        return {
            "pid": os.getpid(),
            "version": service.policy_version,
            "stats_epoch": service.db.stats_epoch,
            "breaker": getattr(service, "breaker_state", "closed"),
        }
    if op == "apply_weights":
        service.apply_policy_weights(kwargs["params"], kwargs["version"])
        return service.policy_version
    if op == "refresh_statistics":
        # The worker re-runs the *same seeded* ANALYZE on its own copy
        # of the database, so parent and worker statistics stay
        # bit-identical (plan parity) without shipping the stats.
        service.refresh_statistics(
            seed=kwargs["seed"],
            sample_size=kwargs["sample_size"],
            tables=kwargs["tables"],
        )
        return service.db.stats_epoch
    if op == "invalidate":
        service.invalidate_statistics_caches(tables=kwargs["tables"])
        return service.db.stats_epoch
    if op == "set_threshold":
        service.router.set_threshold(kwargs["threshold"])
        return kwargs["threshold"]
    if op == "breaker":
        service.breaker_state = kwargs["state"]
        return True
    if op == "install_faults":
        service.install_fault_injector(FaultInjector(kwargs["config"]))
        return True
    if op == "fault_counts":
        injector = service.fault_injector
        return injector.fired_counts() if injector is not None else {}
    if op == "metrics":
        return service.registry.dump_state()
    if op == "drain_experience":
        if service.experience is None:
            return []
        return service.experience.drain()
    raise ValueError(f"unknown control op: {op!r}")


def _control_loop(service: OptimizerService, ctl: FrameConn) -> None:
    while True:
        try:
            kind, msg = ctl.recv()
        except EOFError:
            return  # parent gone; the request loop exits the same way
        except Exception as exc:  # noqa: BLE001 - decode failure
            # The frame was fully consumed before decoding failed, so
            # framing is still in sync — answer the pending RPC instead
            # of dying and leaving the parent blocked on the reply.
            try:
                ctl.send(K_CONTROL_ERR, RuntimeError(f"control decode failed: {exc!r}"))
            except EOFError:
                return
            continue
        if kind != K_CONTROL:
            continue
        op, kwargs = msg
        try:
            result = _control_dispatch(service, op, kwargs)
        except BaseException as exc:  # noqa: BLE001 - shipped to parent
            try:
                ctl.send(K_CONTROL_ERR, exc)
            except EOFError:
                return
            except Exception:
                ctl.send(K_CONTROL_ERR, RuntimeError(repr(exc)))
            continue
        try:
            ctl.send(K_CONTROL_OK, result)
        except EOFError:
            return


def worker_main(
    spec: WorkerSpec,
    req_conn,
    ctl_conn,
    ring_in_name: str,
    ring_out_name: str,
) -> None:
    """Child entrypoint (top-level so ``spawn`` can import it)."""
    # Defense in depth: the parent exported these before spawning (the
    # values numpy actually read at import); keep them for any later
    # library initialization in this process.
    for key in WORKER_ENV_PINS:
        os.environ.setdefault(key, worker_blas_threads())

    service = _build_worker_service(spec)
    # Parent produces into ring_in (weights), worker produces into
    # ring_out (metric/experience snapshots); each end attaches to the
    # segments the parent created and owns.
    ring_in = ShmRing(name=ring_in_name)
    ring_out = ShmRing(name=ring_out_name)
    req = FrameConn(req_conn, shm_threshold=spec.shm_threshold)
    ctl = FrameConn(
        ctl_conn,
        send_ring=ring_out,
        recv_ring=ring_in,
        shm_threshold=spec.shm_threshold,
    )
    control = threading.Thread(
        target=_control_loop,
        args=(service, ctl),
        name=f"repro-shard-{spec.shard}-control",
        daemon=True,
    )
    control.start()

    try:
        while True:
            try:
                kind, msg = req.recv()
            except EOFError:
                break  # parent closed / died
            except Exception as exc:  # noqa: BLE001 - decode failure
                # Frame already consumed: reply with the decode error so
                # the proxy's pending batch resolves instead of hanging.
                try:
                    req.send(K_ERROR, RuntimeError(f"request decode failed: {exc!r}"))
                except EOFError:
                    break
                continue
            if kind == K_SHUTDOWN:
                break
            if kind != K_BATCH:
                continue
            recorders = [
                SpanRecorder() if want else None for want in msg["trace"]
            ]
            try:
                plans = service.optimize_batch(
                    msg["queries"],
                    fingerprints=msg["fps"],
                    alias_maps=msg["maps"],
                    traces=recorders,
                    budgets_ms=msg["budgets"],
                    collect=msg["collect"],
                )
            except BaseException as exc:  # noqa: BLE001 - shipped to parent
                try:
                    req.send(K_ERROR, exc)
                except EOFError:
                    break
                except Exception:
                    req.send(
                        K_ERROR,
                        RuntimeError(f"unpicklable worker error: {exc!r}"),
                    )
                continue
            reply = {
                "plans": plans,
                "events": [
                    rec.payload() if rec is not None else None
                    for rec in recorders
                ],
                "version": service.policy_version,
            }
            try:
                req.send(K_RESULT, reply)
            except EOFError:
                break
    finally:
        req.close()
        ctl.close()
        ring_in.close()
        ring_out.close()


# ----------------------------------------------------------------------
# Parent-side proxy
# ----------------------------------------------------------------------
class _RemoteRouter:
    """Guardrail-threshold surface of the in-worker router."""

    def __init__(self, client: "ProcessWorkerClient") -> None:
        self._client = client
        self.threshold: Optional[float] = None

    def set_threshold(self, threshold: float) -> None:
        # safe: a threshold push must not crash on a SIGKILL'd shard —
        # the respawn path replays the last threshold to the new worker.
        self.threshold = threshold
        self._client._control("set_threshold", safe=True, threshold=threshold)


class _RemoteExperience:
    """Drain-only view of the in-worker experience buffer. The
    trajectories' state stacks come back out-of-band through the shm
    ring — the parent never pickles a float matrix to collect them."""

    def __init__(self, client: "ProcessWorkerClient") -> None:
        self._client = client
        self.drained = 0

    def drain(self) -> list:
        out = self._client._control("drain_experience", safe=True)
        if out is None:
            return []
        self.drained += len(out)
        return out


class _EngineStub:
    """Stands in for :class:`MicroBatchEngine` on the proxy: the front
    end keys per-policy inference locks by ``id(engine.policy)`` and
    installs the lock here; each worker process serializes its own
    forward passes, so the parent-side lock has nothing to exclude."""

    def __init__(self) -> None:
        self.policy = object()  # unique identity -> unique lock
        self.inference_lock = None
        self.fault_injector = None


class ProcessWorkerClient:
    """Parent-side handle to one shard worker process.

    Presents the ``OptimizerService`` surface the front end programs
    against. ``optimize_batch`` is a blocking request/reply over the
    framed request pipe (the calling shard *thread* sleeps in
    ``os.read``, releasing the GIL); everything operational rides the
    control pipe. Raises :class:`WorkerProcessDied` when the child is
    gone — the front end's shard-death path (supervisor respawn,
    held-request failover) takes it from there.
    """

    def __init__(
        self,
        spec: WorkerSpec,
        transport: TransportStats | None = None,
        telemetry=None,
    ) -> None:
        self.spec = spec
        self.shard = spec.shard
        self.db = spec.db
        self.featurizer = spec.featurizer
        self.config = spec.serving_config
        self.telemetry = telemetry
        self.transport = transport if transport is not None else TransportStats()
        #: Parent-side mirror of the worker's serve counters, updated
        #: from each batch reply (exact: every plan's ``source`` comes
        #: back). Survives the worker's death, unlike the worker.
        self.stats = ServiceStats()
        #: Parent-side latency mirror for the retraining daemon's
        #: guardrail/latency reads (observed from replies).
        self.request_ms_hist = Histogram(
            "repro_serving_request_ms",
            "per-request serve latency (batch-attributed)",
        )
        self.policy_version = spec.policy_version
        self.engine = _EngineStub()
        self.router = _RemoteRouter(self)
        self.experience = (
            _RemoteExperience(self) if spec.serving_config.collect_experience else None
        )
        self.fault_injector = None
        self._applied_weights = None  # last (params, version) hot-swapped in
        self._last_fault_counts: Dict[str, int] = {}
        self._last_registry = MetricsRegistry()
        self._closed = False
        self._ctl_lock = threading.Lock()

        ctx = mp.get_context("spawn")
        self._ring_in = ShmRing(capacity=spec.ring_capacity, create=True)
        self._ring_out = ShmRing(capacity=spec.ring_capacity, create=True)
        parent_req, child_req = ctx.Pipe(duplex=True)
        parent_ctl, child_ctl = ctx.Pipe(duplex=True)
        self._proc = ctx.Process(
            target=worker_main,
            args=(
                spec,
                child_req,
                child_ctl,
                self._ring_in.name,
                self._ring_out.name,
            ),
            name=f"repro-shard-{spec.shard}",
            daemon=True,
        )
        with _pinned_spawn_env():
            self._proc.start()
        # Close the child's ends in the parent so a dead child reads as
        # EOF here instead of a silent hang.
        child_req.close()
        child_ctl.close()
        self._req = FrameConn(
            parent_req, stats=self.transport, shm_threshold=spec.shm_threshold
        )
        self._ctl = FrameConn(
            parent_ctl,
            send_ring=self._ring_in,
            recv_ring=self._ring_out,
            stats=self.transport,
            shm_threshold=spec.shm_threshold,
        )

    # -- process facts -------------------------------------------------
    @property
    def pid(self) -> int | None:
        return self._proc.pid

    def exitcode(self) -> int | None:
        """None while alive; negative signal number after a SIGKILL."""
        return self._proc.exitcode

    def is_alive(self) -> bool:
        return self._proc.is_alive()

    def kill(self) -> None:
        """SIGKILL the worker (chaos ``worker_kill`` and hung-worker
        reaping both land here)."""
        if self._proc.pid is not None and self._proc.is_alive():
            try:
                os.kill(self._proc.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass

    def _died(self, cause: BaseException | None = None) -> WorkerProcessDied:
        self._proc.join(timeout=1.0)  # reap; SIGKILL delivery can lag
        exc = WorkerProcessDied(
            f"shard {self.shard} worker process died "
            f"(pid={self.pid}, exitcode={self._proc.exitcode})",
            exitcode=self._proc.exitcode,
            shard=self.shard,
        )
        if cause is not None:
            exc.__cause__ = cause
        return exc

    # -- serving surface -----------------------------------------------
    def optimize_batch(
        self,
        queries: Sequence,
        fingerprints: Sequence[str] | None = None,
        alias_maps: Sequence[Dict[str, str]] | None = None,
        traces: Sequence | None = None,
        budgets_ms: Sequence[float | None] | None = None,
        collect=True,
    ) -> list:
        want = (
            [t is not None for t in traces]
            if traces is not None
            else [False] * len(queries)
        )
        msg = {
            "queries": list(queries),
            "fps": list(fingerprints) if fingerprints is not None else None,
            "maps": list(alias_maps) if alias_maps is not None else None,
            "budgets": list(budgets_ms) if budgets_ms is not None else None,
            "collect": list(collect) if isinstance(collect, (list, tuple)) else collect,
            "trace": want,
        }
        try:
            self._req.send(K_BATCH, msg)
            kind, reply = self._req.recv()
        except EOFError as exc:
            raise self._died(exc) from exc
        if kind == K_ERROR:
            raise reply
        plans = reply["plans"]
        self.policy_version = reply["version"]
        if traces is not None:
            for trace, events in zip(traces, reply["events"]):
                if trace is None or events is None:
                    continue
                for name, duration_ms, attrs in events["spans"]:
                    clean = {
                        k: v
                        for k, v in attrs.items()
                        if k not in ("name", "duration_ms", "parent")
                    }
                    trace.record(name, duration_ms, **clean)
                for key, value in events["root"].items():
                    trace.root.attrs.setdefault(key, value)
        self._mirror(queries, plans)
        return plans

    def optimize(self, query):
        return self.optimize_batch([query])[0]

    def _mirror(self, queries, plans) -> None:
        self.stats.requests += len(queries)
        self.stats.batches += 1
        for plan in plans:
            source = plan.source
            if source == "cache":
                self.stats.cache_served += 1
            elif source == "policy":
                self.stats.policy_served += 1
            elif source == "fallback":
                self.stats.fallbacks += 1
            elif source == "expert":
                self.stats.expert_served += 1
            elif source.startswith("degraded_"):
                self.stats.degraded_served += 1
                rung = source[len("degraded_") :]
                if rung == "cache":
                    self.stats.degraded_cache += 1
                elif rung == "dp":
                    self.stats.degraded_dp += 1
                elif rung == "greedy":
                    self.stats.degraded_greedy += 1
            self.request_ms_hist.observe(plan.latency_ms)

    def latency_summary(self) -> Dict[str, float]:
        hist = self.request_ms_hist
        if not hist.count:
            return {"p50_ms": 0.0, "p95_ms": 0.0, "mean_ms": 0.0}
        return {
            "p50_ms": hist.quantile(0.50),
            "p95_ms": hist.quantile(0.95),
            "mean_ms": hist.mean,
        }

    # -- control channel -----------------------------------------------
    def _control(self, op: str, safe: bool = False, **kwargs):
        """One RPC round-trip on the control pipe.

        ``safe=True`` turns worker death into ``None`` (snapshot reads
        must survive a SIGKILL'd shard); otherwise raises
        :class:`WorkerProcessDied`.
        """
        with self._ctl_lock:
            if self._closed:
                if safe:
                    return None
                raise self._died()
            try:
                # Drop any orphaned reply a timed-out ping left behind,
                # so request/reply pairing cannot skew.
                while self._ctl.poll(0.0):
                    self._ctl.recv()
                self._ctl.send(K_CONTROL, (op, kwargs))
                kind, reply = self._ctl.recv()
            except EOFError as exc:
                if safe:
                    return None
                raise self._died(exc) from exc
        self.transport.control_roundtrip()
        if kind == K_CONTROL_ERR:
            if safe:
                return None
            raise reply
        return reply

    def ping(self, timeout: float = 1.0) -> bool:
        """Heartbeat. ``True`` when the worker answered (or the control
        channel is busy with a longer RPC — busy means alive); ``False``
        when it is gone or hung past ``timeout``."""
        if not self._ctl_lock.acquire(blocking=False):
            return True
        try:
            if self._closed:
                return False
            self._ctl.send(K_CONTROL, ("ping", {}))
            if not self._ctl.poll(timeout):
                return False  # hung: the stale reply is drained later
            kind, reply = self._ctl.recv()
            if kind == K_CONTROL_OK and isinstance(reply, dict):
                self.policy_version = reply.get("version", self.policy_version)
            return True
        except (EOFError, OSError):
            return False
        finally:
            self._ctl_lock.release()

    def apply_policy_weights(self, params: Dict[str, object], version: int) -> None:
        """Hot-swap: broadcast the promoted weights (out-of-band via the
        shm ring) and adopt the ack'd version. The applied snapshot is
        kept so a respawned replacement can rejoin at the live weights
        even without a retraining daemon's ``policy_sync``."""
        acked = self._control("apply_weights", params=params, version=version)
        self.policy_version = int(acked)
        self._applied_weights = (dict(params), self.policy_version)

    def invalidate_statistics_caches(self, tables=None) -> None:
        self._control("invalidate", tables=list(tables) if tables else None)

    def remote_refresh_statistics(
        self, seed: int = 1, sample_size: int = 30_000, tables=None
    ) -> int:
        """Have the worker re-run the seeded ANALYZE on its own database
        copy (same seed == same statistics == plan parity) and evict its
        staled caches. Returns the worker's new stats epoch."""
        return self._control(
            "refresh_statistics",
            seed=seed,
            sample_size=sample_size,
            tables=list(tables) if tables else None,
        )

    def install_fault_injector(self, injector) -> None:
        """Arm chaos on both sides: the parent keeps the injector (the
        front end draws ``worker_kill``/``latency_spike`` there), the
        worker arms its own from the same config + seed, so the merged
        fault schedule stays deterministic."""
        self.fault_injector = injector
        self._control("install_faults", safe=True, config=injector.config)

    def fault_fired_counts(self) -> Dict[str, int]:
        """The worker-side fired counters (stats_race/policy_nan fire in
        the child); the last good snapshot once the worker is gone."""
        out = self._control("fault_counts", safe=True)
        if out is not None:
            self._last_fault_counts = dict(out)
        return dict(self._last_fault_counts)

    def notify_breaker(self, state: str) -> None:
        """Push the parent-side circuit breaker state to the worker (it
        shows up in the worker's ping payload / forensics)."""
        self._control("breaker", safe=True, state=state)

    def drain_experience(self) -> list:
        return self.experience.drain() if self.experience is not None else []

    @property
    def registry(self) -> MetricsRegistry:
        """The worker's metric registry, snapshotted over the control
        channel and rebuilt parent-side. The last good snapshot keeps
        answering after the worker dies (counters never go backwards
        just because a shard was SIGKILL'd)."""
        snap = self._control("metrics", safe=True)
        if snap is not None:
            self._last_registry = MetricsRegistry.load_state(snap)
        return self._last_registry

    # -- lifecycle -----------------------------------------------------
    def respawn_spec(self) -> WorkerSpec:
        """The spec a replacement worker should start from: same recipe,
        but at this proxy's last-known policy version (the supervisor's
        ``policy_sync`` then brings it fully current)."""
        return replace(self.spec, policy_version=self.policy_version)

    def shutdown(self, timeout: float = 2.0) -> None:
        """Stop the child and release transport resources. Idempotent;
        escalates clean-exit -> SIGTERM -> SIGKILL."""
        if self._closed:
            return
        self._closed = True
        try:
            self._req.send(K_SHUTDOWN, None)
        except (EOFError, OSError):
            pass
        self._proc.join(timeout)
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(1.0)
        if self._proc.is_alive():
            self._proc.kill()
            self._proc.join(1.0)
        self._req.close()
        self._ctl.close()
        for ring in (self._ring_in, self._ring_out):
            ring.close()
            ring.unlink()

    close = shutdown
