"""Shared-memory ring buffers: zero-pickle float transport for
multiprocess serving.

The process-mode front end must move feature matrices, experience
trajectories, and policy-weight broadcasts between the parent and its
worker processes. Pickling a float matrix copies it twice (serialize,
then deserialize) and burns the pipe's syscall budget on bulk bytes;
this module gives the transport layer a better lane: a fixed-size
single-producer/single-consumer ring in
:mod:`multiprocessing.shared_memory`, where the producer memcpys a
buffer in, ships an ``(offset, length)`` descriptor over the pipe, and
the consumer memcpys it out — the float data itself is never pickled.

Design (bip-buffer-lite):

- ``head`` and ``tail`` are *monotonic* byte positions stored in the
  ring header; ``head`` is written only by the producer, ``tail`` only
  by the consumer, so each word has a single writer and no lock.
- Writes are contiguous: a write that would straddle the wrap point
  skips the tail fragment (pads ``head`` to the next wrap) so every
  descriptor maps to one contiguous slice.
- The descriptor travels on the pipe *after* the memcpy completes, so
  the pipe's FIFO ordering is the happens-before edge; the consumer
  frees space by advancing ``tail`` past what it copied out.
- A write that does not fit returns ``None`` and the transport falls
  back to inline (in-band pickle) transfer — the ring is a fast path,
  never a correctness dependency.
"""

from __future__ import annotations

import secrets
import struct
from multiprocessing import shared_memory
from typing import Optional

__all__ = ["ShmRing"]

#: Ring header: two little-endian uint64 monotonic positions.
_HEAD = struct.Struct("<Q")
_HEADER_BYTES = 16


class ShmRing:
    """A fixed-capacity SPSC byte ring over one shared-memory segment.

    One side constructs with ``create=True`` (owning the segment name
    and its eventual unlink); the other attaches by name. Exactly one
    process may call :meth:`try_write` (the producer) and exactly one
    may call :meth:`read`/:meth:`advance` (the consumer) — the serving
    transport holds one ring per direction per shard.
    """

    def __init__(
        self,
        name: str | None = None,
        capacity: int = 4 << 20,
        create: bool = False,
    ) -> None:
        if create:
            if capacity < 1:
                raise ValueError("capacity must be positive")
            name = name or f"repro-ring-{secrets.token_hex(8)}"
            self._shm = shared_memory.SharedMemory(
                name=name, create=True, size=_HEADER_BYTES + capacity
            )
            self.capacity = capacity
            self._write_pos(0, 0)
            self._write_pos(8, 0)
        else:
            if name is None:
                raise ValueError("attaching requires the segment name")
            self._shm = shared_memory.SharedMemory(name=name)
            self.capacity = self._shm.size - _HEADER_BYTES
            # CPython < 3.13 registers this *attach* with the resource
            # tracker as if the attacher owned the segment. In our
            # topology that is harmless-by-accident: the worker is a
            # child of the ring's creator, so both talk to the same
            # tracker process and its name cache is a set — the second
            # register coalesces, and the creator's unlink clears it.
            # Do NOT "fix" this by unregistering here: that would erase
            # the creator's registration too and make its unlink trip a
            # tracker KeyError.
        self.name = self._shm.name
        self._created = create
        self._closed = False

    # -- header words --------------------------------------------------
    def _read_pos(self, at: int) -> int:
        return _HEAD.unpack_from(self._shm.buf, at)[0]

    def _write_pos(self, at: int, value: int) -> None:
        _HEAD.pack_into(self._shm.buf, at, value)

    @property
    def head(self) -> int:
        return self._read_pos(0)

    @property
    def tail(self) -> int:
        return self._read_pos(8)

    # -- producer ------------------------------------------------------
    def try_write(self, data) -> Optional[int]:
        """Copy ``data`` (any buffer) into the ring; return its monotonic
        offset, or ``None`` when it does not fit (caller falls back to
        inline transfer). Contiguous: pads over the wrap point."""
        view = memoryview(data).cast("B")
        n = len(view)
        if n == 0 or n > self.capacity:
            return None
        head = self.head
        tail = self.tail
        used = head - tail
        # A torn/stale read of the consumer's tail can only understate
        # free space... unless it tears *upward* mid-write; clamp any
        # impossible reading to "full" and take the inline fallback.
        if used < 0 or used > self.capacity:
            return None
        idx = head % self.capacity
        pad = 0
        if idx + n > self.capacity:  # would straddle the wrap: skip to 0
            pad = self.capacity - idx
        if used + pad + n > self.capacity:
            return None
        start = head + pad
        at = _HEADER_BYTES + (start % self.capacity)
        self._shm.buf[at : at + n] = view
        self._write_pos(0, start + n)
        return start

    # -- consumer ------------------------------------------------------
    def read(self, offset: int, length: int) -> bytes:
        """Copy ``length`` bytes written at monotonic ``offset`` out of
        the ring. The caller must :meth:`advance` past consumed data to
        free it for the producer."""
        idx = offset % self.capacity
        if idx + length > self.capacity:
            raise ValueError("descriptor straddles the wrap point")
        at = _HEADER_BYTES + idx
        return bytes(self._shm.buf[at : at + length])

    def advance(self, upto: int) -> None:
        """Free every byte before monotonic position ``upto`` (typically
        ``offset + length`` of the last descriptor consumed)."""
        if upto > self.tail:
            self._write_pos(8, upto)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Detach this process's mapping (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner side, after both ends closed)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def __del__(self):  # best-effort: never leak a mapping
        try:
            self.close()
        except Exception:
            pass
