"""Online experience collection for hands-free retraining.

The paper's end state is an optimizer that keeps learning from the
queries it serves ("continuously learning as queries are sent"). The
service records every policy rollout it serves as a full trajectory —
(state, mask, action, terminal reward) plus the ``outcome``/``query``
info the :class:`~repro.core.trainer.Trainer` needs — into this bounded
replay buffer. A periodic job drains the buffer into
``Trainer.replay`` and the policy improves without anyone labelling
anything.

Trajectories served off the degradation ladder (cached fallback,
budgeted-prune DP, greedy) are **tagged** on the way in: the plan the
client received is not the plan the policy rolled out, so training on
it would teach the policy to take credit for someone else's work.
``Trainer.replay`` skips tagged trajectories; the buffer counts them
so the exclusion is observable.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, List

import numpy as np

from repro.rl.env import Trajectory

__all__ = ["ExperienceBuffer", "is_degraded"]


def is_degraded(trajectory: Trajectory) -> bool:
    """True when the trajectory came from a degradation-ladder serve.

    Checks the explicit ``degraded`` info flag first and falls back to
    the ``source`` string so trajectories built before the flag existed
    (or by tests constructing infos by hand) still classify correctly.
    """
    info = getattr(trajectory, "info", None)
    if not isinstance(info, dict):
        return False
    if "degraded" in info:
        return bool(info["degraded"])
    return str(info.get("source", "")).startswith("degraded")


class ExperienceBuffer:
    """A bounded FIFO of served-query trajectories.

    Thread-safe: worker shards append while a retraining job drains, so
    mutations and their counters move under one lock.
    """

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.added = 0
        self.dropped = 0
        self.degraded_tagged = 0
        self._lock = threading.Lock()
        self._trajectories: Deque[Trajectory] = deque(maxlen=capacity)

    def __len__(self) -> int:
        with self._lock:
            return len(self._trajectories)

    def add(self, trajectory: Trajectory) -> None:
        with self._lock:
            if len(self._trajectories) == self.capacity:
                self.dropped += 1
            self._trajectories.append(trajectory)
            self.added += 1
            if is_degraded(trajectory):
                self.degraded_tagged += 1

    def drain(self) -> List[Trajectory]:
        """Remove and return everything, oldest first."""
        with self._lock:
            out = list(self._trajectories)
            self._trajectories.clear()
            return out

    def sample(self, rng: np.random.Generator, n: int) -> List[Trajectory]:
        """``n`` trajectories without replacement (all of them if fewer)."""
        with self._lock:
            if n >= len(self._trajectories):
                return list(self._trajectories)
            picks = rng.choice(len(self._trajectories), size=n, replace=False)
            return [self._trajectories[int(i)] for i in picks]

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "experience_size": len(self._trajectories),
                "experience_added": self.added,
                "experience_dropped": self.dropped,
                "experience_degraded_tagged": self.degraded_tagged,
            }
