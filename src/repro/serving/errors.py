"""Structured serving errors: every way a request can fail, typed.

A fault-tolerant serving path needs more than a stack trace when it
refuses or abandons a request — callers decide whether to retry, back
off, or degrade based on *which* failure happened, and operators count
failures by class. Every error the front end or a shard service can
resolve a future with derives from :class:`OptimizeError`, which
carries:

- ``code`` — a stable machine-readable failure class;
- ``retryable`` — whether an identical resubmission can succeed (the
  front end's internal retry loop honors the same flag);
- ``retry_after_s`` — a backoff hint for load-shedding and open
  circuits (``None`` when retrying sooner cannot help);
- request context (``query_name``, ``fingerprint``, ``shard``,
  ``attempts``) filled in as far as the failure point knew it.

Everything subclasses ``RuntimeError`` so callers that predate the
typed hierarchy (``except RuntimeError``) keep working unchanged.
"""

from __future__ import annotations

from typing import Dict

__all__ = [
    "OptimizeError",
    "ServiceClosed",
    "LoadShedded",
    "DeadlineExceeded",
    "ShardFailed",
    "CircuitOpen",
    "RetriesExhausted",
    "InjectedFault",
    "WorkerProcessDied",
]


def _rebuild_error(cls, args, attrs, cause):
    """Unpickle helper: restore an :class:`OptimizeError` with its
    context attributes *and* its ``__cause__`` chain (the default
    exception reduce drops ``__cause__``, which would strip the last
    underlying failure off a ``RetriesExhausted`` crossing a process
    boundary)."""
    exc = cls(*args)
    exc.__dict__.update(attrs)
    if cause is not None:
        exc.__cause__ = cause
    return exc


class OptimizeError(RuntimeError):
    """Base class for every structured serving failure."""

    #: Stable failure class; subclasses override.
    code = "optimize_error"
    #: Whether resubmitting the identical request can succeed.
    retryable = False

    def __init__(
        self,
        message: str,
        query_name: str | None = None,
        fingerprint: str | None = None,
        shard: int | None = None,
        attempts: int = 1,
        retry_after_s: float | None = None,
    ) -> None:
        super().__init__(message)
        self.query_name = query_name
        self.fingerprint = fingerprint
        self.shard = shard
        self.attempts = attempts
        self.retry_after_s = retry_after_s

    def __reduce__(self):
        """Pickle bit-faithfully: message args, every context attribute,
        and the ``__cause__`` chain (process-mode serving resolves
        futures with errors that crossed a pipe)."""
        return (
            _rebuild_error,
            (type(self), self.args, dict(self.__dict__), self.__cause__),
        )

    def to_dict(self) -> Dict[str, object]:
        """Structured payload for events/logs (stable keys)."""
        return {
            "code": self.code,
            "message": str(self),
            "query": self.query_name,
            "fingerprint": self.fingerprint,
            "shard": self.shard,
            "attempts": self.attempts,
            "retryable": self.retryable,
            "retry_after_s": self.retry_after_s,
        }


class ServiceClosed(OptimizeError):
    """``submit()`` after ``close()``: the front end no longer accepts
    work, and any request still unresolved at shutdown is failed with
    this rather than left dangling."""

    code = "service_closed"
    retryable = False


class LoadShedded(OptimizeError):
    """Admission control turned the request away: the pending queue is
    past its high-watermark (or hard bound). ``retry_after_s`` is the
    shed hint — resubmitting sooner just feeds the overload."""

    code = "load_shed"
    retryable = True


class DeadlineExceeded(OptimizeError):
    """The request's deadline budget ran out before a plan could be
    produced. ``stage`` says where the expiry was detected:
    ``"queue"`` (still waiting for a worker), ``"serve"`` (budget
    exhausted when the shard picked it up), or ``"drain"``
    (force-expired by a deadline-aware drain)."""

    code = "deadline_exceeded"
    retryable = False

    def __init__(self, message: str, stage: str = "queue", **kwargs) -> None:
        super().__init__(message, **kwargs)
        self.stage = stage

    def to_dict(self) -> Dict[str, object]:
        out = super().to_dict()
        out["stage"] = self.stage
        return out


class ShardFailed(OptimizeError):
    """A worker shard died (thread exited, unhandled error outside the
    per-batch guard) while holding the request. Retryable: the
    supervisor respawns the shard and the retry is served by the fresh
    worker (or a rerouted one)."""

    code = "shard_failed"
    retryable = True


class CircuitOpen(OptimizeError):
    """Every candidate shard's circuit breaker is open: consecutive
    failures tripped them and the cooldown has not elapsed. Fail fast
    instead of queueing onto a broken shard; ``retry_after_s`` is the
    shortest remaining cooldown."""

    code = "circuit_open"
    retryable = True


class RetriesExhausted(OptimizeError):
    """The bounded retry loop gave up: every attempt failed. The last
    underlying failure is chained as ``__cause__``."""

    code = "retries_exhausted"
    retryable = False


class InjectedFault(OptimizeError):
    """A fault deliberately raised by the chaos harness
    (:mod:`repro.serving.faults`). Retryable by construction — the
    injector keys decisions by attempt, so a retry draws fresh luck."""

    code = "injected_fault"
    retryable = True


class WorkerProcessDied(OptimizeError):
    """A worker *process* (``executor="process"``) died while holding
    the request — SIGKILL chaos, OOM kill, or an interpreter crash.
    Retryable: the supervisor respawns the process and the retry is
    served by the fresh worker (or rerouted along the hash ring)."""

    code = "worker_process_died"
    retryable = True

    def __init__(self, message: str, exitcode: int | None = None, **kwargs) -> None:
        super().__init__(message, **kwargs)
        self.exitcode = exitcode

    def to_dict(self) -> Dict[str, object]:
        out = super().to_dict()
        out["exitcode"] = self.exitcode
        return out
