"""Consistent-hash routing of query fingerprints to worker shards.

The concurrent front end keeps one :class:`~repro.serving.service.OptimizerService`
per worker shard, each with its own plan cache, guardrail memo, sub-plan
cost memo, and experience buffer. For those shard-private caches to be
*useful* (and to need no cross-shard coherence protocol at all), every
fingerprint-equivalent query must always land on the same shard. A
consistent-hash ring gives that placement, and — unlike ``hash % K`` —
keeps ~(K-1)/K of the assignments stable when a shard is added or
removed, so an operator can resize the worker pool without invalidating
every warm cache at once.

The ring is deterministic (keyed BLAKE2b, no process-seeded ``hash()``),
so placements are reproducible across runs and processes.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Tuple

__all__ = ["HashRing"]


def _point(label: str) -> int:
    """A position on the 64-bit ring for ``label``."""
    return int.from_bytes(
        hashlib.blake2b(label.encode(), digest_size=8).digest(), "big"
    )


class HashRing:
    """Maps string keys (query fingerprints) to shard indices.

    Each shard owns ``replicas`` virtual nodes on a 64-bit ring; a key
    belongs to the first virtual node at or clockwise of its own hash.
    More replicas smooth the load split at the cost of a larger (still
    tiny) sorted table.
    """

    def __init__(self, n_shards: int, replicas: int = 64) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self.n_shards = n_shards
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for shard in range(n_shards):
            for replica in range(replicas):
                points.append((_point(f"shard:{shard}:vnode:{replica}"), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._shards = [s for _, s in points]

    def shard_for(self, key: str) -> int:
        """The shard owning ``key``; stable for a fixed ring."""
        if self.n_shards == 1:
            return 0
        where = bisect.bisect_right(self._points, _point(key))
        if where == len(self._points):  # wrap past the last virtual node
            where = 0
        return self._shards[where]

    def fallback_order(self, key: str) -> List[int]:
        """Every shard, in the order ``key`` would fail over to them.

        The first entry is :meth:`shard_for`; the rest are the distinct
        shards of the subsequent virtual nodes walking clockwise from
        the key's position. The front end routes around down shards and
        open circuits by taking the first *healthy* entry — and because
        the walk order is a pure function of the ring, every request
        for a fingerprint reroutes to the *same* surviving shard, so
        shard-private caches stay useful during the outage.
        """
        if self.n_shards == 1:
            return [0]
        where = bisect.bisect_right(self._points, _point(key))
        order: List[int] = []
        seen = 0
        for step in range(len(self._shards)):
            shard = self._shards[(where + step) % len(self._shards)]
            bit = 1 << shard
            if not seen & bit:
                seen |= bit
                order.append(shard)
                if len(order) == self.n_shards:
                    break
        return order

    def spread(self, keys) -> Dict[int, int]:
        """How many of ``keys`` each shard owns (diagnostics/tests)."""
        counts: Dict[int, int] = {shard: 0 for shard in range(self.n_shards)}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts
