"""An LRU+TTL plan cache with operator-visible statistics.

The cache is deliberately engine-agnostic: keys are canonical query
fingerprints (:mod:`repro.serving.fingerprint`) and values are whatever
the service wants to remember about a served plan. The clock is
injectable so TTL behaviour is testable without sleeping.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

__all__ = ["CacheStats", "PlanCache"]


@dataclass
class CacheStats:
    """Counters an operator needs to judge cache health."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_evictions": self.evictions,
            "cache_expirations": self.expirations,
            "cache_invalidations": self.invalidations,
            "cache_hit_rate": round(self.hit_rate, 4),
        }


class PlanCache:
    """LRU cache with optional TTL, keyed by query fingerprint."""

    def __init__(
        self,
        capacity: int = 512,
        ttl_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("ttl_s must be positive (or None to disable)")
        self.capacity = capacity
        self.ttl_s = ttl_s
        self.clock = clock
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, Tuple[Any, float]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Any | None:
        """Return the cached value or None; refreshes LRU recency."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        value, inserted_at = entry
        if self.ttl_s is not None and self.clock() - inserted_at > self.ttl_s:
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (value, self.clock())
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self, key: str) -> bool:
        """Drop one entry (e.g. after a schema change for its tables)."""
        if key in self._entries:
            del self._entries[key]
            self.stats.invalidations += 1
            return True
        return False

    def clear(self) -> int:
        """Drop everything (statistics refresh); returns entries dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        self.stats.invalidations += dropped
        return dropped

    def keys(self):
        """Current keys, least- to most-recently used."""
        return list(self._entries)
