"""An LRU+TTL plan cache with operator-visible statistics.

The cache is deliberately engine-agnostic: keys are canonical query
fingerprints (:mod:`repro.serving.fingerprint`) and values are whatever
the service wants to remember about a served plan. The clock is
injectable so TTL behaviour is testable without sleeping.

Two serving-layer needs shape the implementation:

- **thread safety** — worker shards, the flusher, and operator threads
  (``counters()``, ``refresh_statistics``) touch the cache
  concurrently, so every operation (including its stats update) runs
  under one re-entrant lock and the counters stay exact;
- **partial invalidation** — entries can be tagged with the tables the
  cached plan reads, and :meth:`invalidate_tables` evicts only the
  entries touching re-analyzed tables instead of dropping the whole
  cache.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Iterable, Tuple

__all__ = ["CacheStats", "PlanCache"]


@dataclass
class CacheStats:
    """Counters an operator needs to judge cache health."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0
    #: Entries evicted by table-scoped (partial) invalidation only.
    invalidations_partial: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_evictions": self.evictions,
            "cache_expirations": self.expirations,
            "cache_invalidations": self.invalidations,
            "cache_invalidations_partial": self.invalidations_partial,
            "cache_hit_rate": round(self.hit_rate, 4),
        }


class PlanCache:
    """Thread-safe LRU cache with optional TTL, keyed by fingerprint."""

    def __init__(
        self,
        capacity: int = 512,
        ttl_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("ttl_s must be positive (or None to disable)")
        self.capacity = capacity
        self.ttl_s = ttl_s
        self.clock = clock
        self.stats = CacheStats()
        # One re-entrant lock covers the entry map and the stats, so a
        # lookup and its counter bump are a single atomic step even when
        # worker shards and operator threads race.
        self._lock = threading.RLock()
        # key -> (value, inserted_at, tables the cached plan touches)
        self._entries: "OrderedDict[str, Tuple[Any, float, FrozenSet[str] | None]]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: str) -> Any | None:
        """Return the cached value or None; refreshes LRU recency."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            value, inserted_at, _tables = entry
            if self.ttl_s is not None and self.clock() - inserted_at > self.ttl_s:
                del self._entries[key]
                self.stats.expirations += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: str, value: Any, tables: Iterable[str] | None = None) -> None:
        """Insert ``value``; ``tables`` tags the entry for
        :meth:`invalidate_tables` (None means "unknown — evict on any
        partial invalidation", the conservative default)."""
        tagged = None if tables is None else frozenset(tables)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (value, self.clock(), tagged)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate(self, key: str) -> bool:
        """Drop one entry (e.g. after a schema change for its tables)."""
        with self._lock:
            if key in self._entries:
                del self._entries[key]
                self.stats.invalidations += 1
                return True
            return False

    def invalidate_tables(self, tables: Iterable[str]) -> int:
        """Drop only the entries touching any of ``tables``.

        Untagged entries (inserted with ``tables=None``) are dropped
        too — with no provenance recorded, staleness must be assumed.
        Returns the number of entries dropped.
        """
        changed = frozenset(tables)
        with self._lock:
            doomed = [
                key
                for key, (_v, _t, tagged) in self._entries.items()
                if tagged is None or tagged & changed
            ]
            for key in doomed:
                del self._entries[key]
            self.stats.invalidations_partial += len(doomed)
            return len(doomed)

    def clear(self) -> int:
        """Drop everything (statistics refresh); returns entries dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += dropped
            return dropped

    def keys(self):
        """Current keys, least- to most-recently used."""
        with self._lock:
            return list(self._entries)
