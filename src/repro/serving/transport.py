"""Length-prefixed pipe protocol with shared-memory buffer offload.

The process-mode front end speaks to each worker over two duplex pipes
(request + control). Every message is one **frame**::

    <kind: 1 byte> <payload length: 4 bytes LE> <payload>

written and read with plain ``os.write``/``os.read`` on the pipe's file
descriptor — the :class:`multiprocessing.connection.Connection` object
is used only as a picklable fd carrier for ``spawn``, never for its own
wire format, so the protocol is self-contained (the door to a network
front end: the same frames work on a socket fd).

Payloads are pickled at protocol 5 with **out-of-band buffers**: every
buffer ≥ ``shm_threshold`` (an ``EpisodeEncoder`` feature matrix, a
policy-weight tensor, a trajectory's state stack) is diverted into the
direction's :class:`~repro.serving.shm.ShmRing` and replaced on the
wire by an ``(offset, length)`` descriptor — the hot path never pickles
a float matrix. Buffers that do not fit the ring fall back to in-band
bytes (counted, so the fallback is observable), which keeps the ring a
pure fast path.

:class:`TransportStats` counts frames and bytes per lane (pipe vs shm)
plus control-channel round-trips; the front end surfaces the rollup
through ``counters()`` → ``repro info --probe``.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
from typing import Dict, List, Optional, Tuple

from repro.serving.shm import ShmRing

__all__ = ["FrameConn", "TransportStats", "DEFAULT_SHM_THRESHOLD"]

#: Buffers at or above this size are diverted to the shm ring.
DEFAULT_SHM_THRESHOLD = 1024

_HEADER = struct.Struct("<BI")


class TransportStats:
    """Thread-safe transport counters (one instance per front end)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_pipe = 0
        self.bytes_shm = 0
        #: Out-of-band buffers that did not fit the ring and went inline.
        self.shm_fallbacks = 0
        self.control_roundtrips = 0

    def frame_sent(self, payload_bytes: int) -> None:
        with self._lock:
            self.frames_sent += 1
            self.bytes_pipe += _HEADER.size + payload_bytes

    def frame_received(self, payload_bytes: int) -> None:
        with self._lock:
            self.frames_received += 1

    def shm_written(self, n: int) -> None:
        with self._lock:
            self.bytes_shm += n

    def shm_fallback(self) -> None:
        with self._lock:
            self.shm_fallbacks += 1

    def control_roundtrip(self) -> None:
        with self._lock:
            self.control_roundtrips += 1

    def as_dict(self) -> Dict[str, float]:
        with self._lock:
            return {
                "transport_frames_sent": self.frames_sent,
                "transport_frames_received": self.frames_received,
                "transport_bytes_pipe": self.bytes_pipe,
                "transport_bytes_shm": self.bytes_shm,
                "transport_shm_fallbacks": self.shm_fallbacks,
                "transport_control_roundtrips": self.control_roundtrips,
            }


def _write_exact(fd: int, data: bytes) -> None:
    view = memoryview(data)
    while view:
        n = os.write(fd, view)
        view = view[n:]


def _read_exact(fd: int, n: int) -> bytes:
    chunks: List[bytes] = []
    remaining = n
    while remaining:
        chunk = os.read(fd, remaining)
        if not chunk:
            raise EOFError("pipe closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class FrameConn:
    """One framed, typed-message endpoint over a pipe fd.

    ``send(kind, obj)`` pickles ``obj`` (protocol 5), diverting large
    buffers through ``send_ring`` when one is attached; ``recv()``
    returns ``(kind, obj)``, reading diverted buffers back out of
    ``recv_ring``. Sends are serialized by a lock (a control thread and
    an RPC caller may share one endpoint); receives are expected from a
    single reader thread. Raises :class:`EOFError` once the peer is
    gone — the caller translates that into its own death handling.
    """

    def __init__(
        self,
        conn,
        send_ring: Optional[ShmRing] = None,
        recv_ring: Optional[ShmRing] = None,
        stats: Optional[TransportStats] = None,
        shm_threshold: int = DEFAULT_SHM_THRESHOLD,
    ) -> None:
        #: The Connection is kept (not just its fd) so the underlying
        #: descriptor stays open exactly as long as this endpoint.
        self._conn = conn
        self._fd = conn.fileno()
        self.send_ring = send_ring
        self.recv_ring = recv_ring
        self.stats = stats
        self.shm_threshold = shm_threshold
        self._send_lock = threading.Lock()
        self._closed = False

    # -- send ----------------------------------------------------------
    def send(self, kind: int, obj) -> None:
        """Frame and write one message; never partially interleaved."""
        buffers: List[pickle.PickleBuffer] = []

        def divert(buf: pickle.PickleBuffer) -> bool:
            # pickle semantics: a *false* return serializes the buffer
            # out-of-band (the unpickler pulls it from ``buffers=``); a
            # true return keeps it in-band inside the pickle stream.
            if (
                self.send_ring is not None
                and buf.raw().nbytes >= self.shm_threshold
            ):
                buffers.append(buf)
                return False  # out-of-band: shipped via the ring
            return True  # small: stays in-band

        body = pickle.dumps(obj, protocol=5, buffer_callback=divert)
        descriptors: List[Tuple[str, object, int]] = []
        shm_bytes = 0
        for buf in buffers:
            raw = buf.raw()
            offset = self.send_ring.try_write(raw)
            if offset is None:
                # Ring full (or buffer larger than the ring): inline.
                descriptors.append(("inline", raw.tobytes(), raw.nbytes))
                if self.stats is not None:
                    self.stats.shm_fallback()
            else:
                descriptors.append(("shm", offset, raw.nbytes))
                shm_bytes += raw.nbytes
            buf.release()
        payload = pickle.dumps((descriptors, body), protocol=5)
        header = _HEADER.pack(kind, len(payload))
        with self._send_lock:
            if self._closed:
                raise EOFError("transport endpoint closed")
            try:
                _write_exact(self._fd, header + payload)
            except (BrokenPipeError, OSError) as exc:
                raise EOFError(f"peer gone: {exc}") from exc
        if self.stats is not None:
            self.stats.frame_sent(len(payload))
            if shm_bytes:
                self.stats.shm_written(shm_bytes)

    # -- receive -------------------------------------------------------
    def recv(self) -> Tuple[int, object]:
        """Read one frame; blocks until a full message arrives."""
        try:
            header = _read_exact(self._fd, _HEADER.size)
        except OSError as exc:
            raise EOFError(f"peer gone: {exc}") from exc
        kind, length = _HEADER.unpack(header)
        payload = _read_exact(self._fd, length)
        descriptors, body = pickle.loads(payload)
        buffers: List[bytes] = []
        free_upto = None
        for lane, ref, nbytes in descriptors:
            if lane == "shm":
                buffers.append(self.recv_ring.read(ref, nbytes))
                free_upto = ref + nbytes
            else:
                buffers.append(ref)
        if free_upto is not None:
            # Everything is copied out: hand the space back in one move.
            self.recv_ring.advance(free_upto)
        obj = pickle.loads(body, buffers=buffers)
        if self.stats is not None:
            self.stats.frame_received(length)
        return kind, obj

    def poll(self, timeout: float | None = 0.0) -> bool:
        """Is a frame (or EOF) ready to read?"""
        return self._conn.poll(timeout)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._conn.close()
        except OSError:
            pass
