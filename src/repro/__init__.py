"""handsfree-qo: a reproduction of "Towards a Hands-Free Query Optimizer
through Deep Learning" (Marcus & Papaemmanouil, CIDR 2019).

Subpackages
-----------
- :mod:`repro.nn` — numpy neural-network library (MLPs, Adam, masked
  softmax, action-layer surgery),
- :mod:`repro.db` — the relational engine substrate (storage, stats,
  cardinality estimation, cost model, executor with simulated latency),
- :mod:`repro.optimizer` — the traditional "expert" optimizer (Selinger
  DP, GEQO genetic search, physical selection),
- :mod:`repro.workloads` — the JOB-lite benchmark (IMDB-shaped schema,
  named templates ``1a``-``22d``, random query generation),
- :mod:`repro.rl` — policy-gradient RL (REINFORCE, PPO),
- :mod:`repro.core` — the paper's contribution: ReJOIN featurization
  and environments, reward signals, trainers for learning from
  demonstration (§5.1), cost-model bootstrapping (§5.2), and
  incremental curricula (§5.3),
- :mod:`repro.serving` — optimizer-as-a-service: plan cache on
  canonical query fingerprints, micro-batched inference, guardrail
  fallback to the expert plan, and online experience collection for
  hands-free retraining.

Command line: ``python -m repro --help`` regenerates the paper's
figures from the terminal; ``python -m repro serve-bench`` drives the
serving layer. See README.md.
"""

__version__ = "1.0.0"
