"""Typed metrics: counters, gauges, and log-bucket histograms.

One registry per shard is the concurrency model: hot paths record into
their own shard's instruments (a tiny per-instrument lock keeps counts
exact against operator reads), and the cross-shard rollup happens at
*read* time via :meth:`MetricsRegistry.merge` — readers never take the
writers' locks for counters and gauges (single attribute loads are
atomic under the GIL), so monitoring cannot stall serving.

Metric naming follows ``repro_<subsystem>_<name>_<unit>`` with
``_total`` for counters (Prometheus conventions), e.g.
``repro_serving_request_latency_ms`` or ``repro_cache_hits_total``.

Histograms use fixed logarithmic buckets: ``BUCKETS_PER_DECADE`` edges
per factor of ten between ``HIST_LO`` and ``HIST_HI``. Quantiles are
read back by linear interpolation inside the bucket containing the
target rank and clamped to the observed min/max, so the worst-case
*relative* error of any reported percentile is the bucket edge ratio:
``10 ** (1 / BUCKETS_PER_DECADE) - 1`` (≈ 12.2% at the default 20
buckets per decade); a histogram whose samples all share one bucket
reports them exactly (the min/max clamp collapses the interpolation).
Two histograms with identical bucket edges merge by adding bucket
counts, which is *exactly* equivalent to pooling the raw samples and
re-bucketing — so per-shard percentiles and the merged rollup are
computed by one method with one documented error bound.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "BUCKETS_PER_DECADE",
    "Counter",
    "Gauge",
    "HIST_HI",
    "HIST_LO",
    "Histogram",
    "MetricsRegistry",
    "default_bucket_bounds",
    "parse_exposition",
    "quantile_error_bound",
    "quantile_from_counts",
]

#: Log-bucket resolution: edges per factor of ten.
BUCKETS_PER_DECADE = 20
#: Default histogram range (in the instrument's unit; ms in practice):
#: 1e-3 .. 1e5 covers a 1µs cache hit through a 100s stall.
HIST_LO = 1e-3
HIST_HI = 1e5

_NAME_RE = re.compile(r"^[a-z_][a-z0-9_]*$")


def default_bucket_bounds() -> Tuple[float, ...]:
    """The shared log-spaced bucket upper edges (ascending)."""
    lo_exp, hi_exp = -3, 5
    return tuple(
        10.0 ** (e / BUCKETS_PER_DECADE)
        for e in range(lo_exp * BUCKETS_PER_DECADE, hi_exp * BUCKETS_PER_DECADE + 1)
    )


_DEFAULT_BOUNDS = default_bucket_bounds()


def quantile_error_bound() -> float:
    """Worst-case relative error of a histogram percentile."""
    return 10.0 ** (1.0 / BUCKETS_PER_DECADE) - 1.0


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} must match {_NAME_RE.pattern} "
            "(taxonomy: repro_<subsystem>_<name>_<unit>)"
        )
    return name


class Counter:
    """A monotonically increasing count.

    Writers take a tiny lock so concurrent ``inc`` calls never lose an
    update; readers load ``value`` without any lock.
    """

    kind = "counter"
    __slots__ = ("name", "help", "_value", "_lock", "_fn")

    def __init__(self, name: str, help: str = "", fn: Callable[[], float] | None = None):
        self.name = _check_name(name)
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()
        #: Optional pull-style source: an existing exact counter (e.g. a
        #: locked stats dataclass) exposed through the registry without
        #: double-counting on the hot path.
        self._fn = fn

    def inc(self, n: float = 1.0) -> None:
        if self._fn is not None:
            raise RuntimeError(f"{self.name} is callback-backed; inc() is invalid")
        if n < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value


class Gauge:
    """A value that can go up and down (or be read from a callback)."""

    kind = "gauge"
    __slots__ = ("name", "help", "_value", "_lock", "_fn")

    def __init__(self, name: str, help: str = "", fn: Callable[[], float] | None = None):
        self.name = _check_name(name)
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()
        self._fn = fn

    def set(self, v: float) -> None:
        if self._fn is not None:
            raise RuntimeError(f"{self.name} is callback-backed; set() is invalid")
        with self._lock:
            self._value = float(v)

    def add(self, n: float) -> None:
        if self._fn is not None:
            raise RuntimeError(f"{self.name} is callback-backed; add() is invalid")
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value


class Histogram:
    """Fixed log-bucket histogram with interpolated percentiles.

    ``observe`` is the only hot-path operation: one bisect over the
    shared bucket edges plus a locked handful of scalar updates. Sum,
    count, min, and max are tracked exactly, so ``mean`` has no bucket
    error and percentile interpolation is clamped to the observed range.
    """

    kind = "histogram"
    __slots__ = (
        "name", "help", "bounds", "_counts", "_sum", "_count", "_min",
        "_max", "_lock",
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        bounds: Sequence[float] | None = None,
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        self.bounds: Tuple[float, ...] = (
            tuple(bounds) if bounds is not None else _DEFAULT_BOUNDS
        )
        if list(self.bounds) != sorted(self.bounds) or len(self.bounds) < 1:
            raise ValueError("histogram bounds must be ascending and non-empty")
        # counts[i] counts observations v with bounds[i-1] < v <= bounds[i];
        # the final slot is the overflow bucket (> bounds[-1]).
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        """Consistent snapshot minus the process-local lock (histograms
        ride inside picklable object graphs: worker specs, registry
        snapshots crossing the process-mode control channel)."""
        with self._lock:
            return {
                "name": self.name,
                "help": self.help,
                "bounds": self.bounds,
                "_counts": list(self._counts),
                "_sum": self._sum,
                "_count": self._count,
                "_min": self._min,
                "_max": self._max,
            }

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self._lock = threading.Lock()

    def observe(self, v: float) -> None:
        idx = bisect_left(self.bounds, v)
        with self._lock:
            self._counts[idx] += 1
            self._sum += v
            self._count += 1
            if v < self._min:
                self._min = v
            if v > self._max:
                self._max = v

    # -- reads ---------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Interpolated quantile; exact within the documented bound."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            counts = list(self._counts)
            total = self._count
            lo, hi = self._min, self._max
        if total == 0:
            return 0.0
        target = q * total
        cum = 0
        for i, c in enumerate(counts):
            if c == 0:
                continue
            if cum + c >= target:
                lower = 0.0 if i == 0 else self.bounds[i - 1]
                upper = self.bounds[i] if i < len(self.bounds) else hi
                inside = (target - cum) / c if c else 0.0
                value = lower + inside * (upper - lower)
                return min(max(value, lo), hi)
            cum += c
        return hi

    def counts_snapshot(self) -> List[int]:
        """A consistent copy of the bucket counts (overflow slot last).

        The building block for *windowed* percentiles: snapshot before
        and after an observation window, subtract bucket-for-bucket, and
        feed the delta to :func:`quantile_from_counts` — the retraining
        daemon's post-swap p95 watch works exactly this way.
        """
        with self._lock:
            return list(self._counts)

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def merge_from(self, other: "Histogram") -> None:
        """Add ``other``'s buckets into this histogram (exact pooling)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge {other.name}: bucket bounds differ from {self.name}"
            )
        with other._lock:
            counts = list(other._counts)
            osum, ocount = other._sum, other._count
            omin, omax = other._min, other._max
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._sum += osum
            self._count += ocount
            if omin < self._min:
                self._min = omin
            if omax > self._max:
                self._max = omax


def quantile_from_counts(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """Interpolated quantile over raw bucket counts (same rule as
    :meth:`Histogram.quantile`, minus the observed min/max clamp — a
    count delta has no min/max). ``counts`` must have one slot more
    than ``bounds`` (the overflow bucket); returns 0.0 when empty."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    if len(counts) != len(bounds) + 1:
        raise ValueError("counts must have one overflow slot past bounds")
    total = sum(counts)
    if total == 0:
        return 0.0
    target = q * total
    cum = 0
    for i, c in enumerate(counts):
        if c == 0:
            continue
        if cum + c >= target:
            lower = 0.0 if i == 0 else bounds[i - 1]
            upper = bounds[i] if i < len(bounds) else bounds[-1]
            inside = (target - cum) / c if c else 0.0
            return lower + inside * (upper - lower)
        cum += c
    return bounds[-1]


class MetricsRegistry:
    """A named collection of instruments with get-or-create semantics.

    Each serving shard owns one registry; :meth:`merge` folds any number
    of registries into a fresh read-only rollup, summing counters and
    gauges and pooling histograms bucket-for-bucket — the single home of
    the sum-vs-rate rollup rules that used to be hand-rolled in three
    ``counters()`` methods.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    # -- registration --------------------------------------------------
    def _get_or_create(self, name: str, factory, cls):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"{name} already registered as {type(metric).__name__}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help), Counter)

    def counter_fn(self, name: str, fn: Callable[[], float], help: str = "") -> Counter:
        """A pull-style counter reading an existing exact count."""
        return self._get_or_create(name, lambda: Counter(name, help, fn=fn), Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help), Gauge)

    def gauge_fn(self, name: str, fn: Callable[[], float], help: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help, fn=fn), Gauge)

    def histogram(
        self, name: str, help: str = "", bounds: Sequence[float] | None = None
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help, bounds=bounds), Histogram
        )

    def register(self, metric) -> None:
        """Adopt a pre-built instrument (e.g. a histogram the planner
        owns) so it appears in this registry's snapshots and merges."""
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None and existing is not metric:
                raise ValueError(f"{metric.name} already registered")
            self._metrics[metric.name] = metric

    def get(self, name: str):
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def _items(self):
        with self._lock:
            return list(self._metrics.items())

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    # -- rollup --------------------------------------------------------
    @staticmethod
    def merge(registries: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        """Fold registries into a fresh rollup registry.

        Counters and gauges sum; histograms pool bucket counts (exactly
        equivalent to pooling raw samples). Reading the source values
        takes no source-registry locks for counters/gauges.
        """
        merged = MetricsRegistry()
        for registry in registries:
            for name, metric in registry._items():
                if isinstance(metric, Histogram):
                    target = merged.histogram(name, metric.help, bounds=metric.bounds)
                    target.merge_from(metric)
                elif isinstance(metric, Counter):
                    merged.counter(name, metric.help).inc(metric.value)
                elif isinstance(metric, Gauge):
                    merged.gauge(name, metric.help).add(metric.value)
                else:  # pragma: no cover - registry only stores the three
                    raise TypeError(f"unknown metric type for {name}")
        return merged

    # -- cross-process snapshot ----------------------------------------
    def dump_state(self) -> Dict[str, dict]:
        """A plain-data snapshot of every instrument, suitable for
        shipping across a process boundary (the multiprocess serving
        workers snapshot their shard registry this way; the parent
        rebuilds with :meth:`load_state` and merges at read time).

        Callback-backed counters/gauges are captured by *value* — the
        receiving side has no access to the callback's closure, so the
        rebuilt instrument is a frozen reading, which is exactly what a
        merge-at-read-time rollup wants.
        """
        out: Dict[str, dict] = {}
        for name, metric in self._items():
            if isinstance(metric, Histogram):
                with metric._lock:
                    out[name] = {
                        "kind": "histogram",
                        "help": metric.help,
                        "bounds": list(metric.bounds),
                        "counts": list(metric._counts),
                        "sum": metric._sum,
                        "count": metric._count,
                        "min": metric._min,
                        "max": metric._max,
                    }
            else:
                out[name] = {
                    "kind": metric.kind,
                    "help": metric.help,
                    "value": metric.value,
                }
        return out

    @classmethod
    def load_state(cls, state: Dict[str, dict]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`dump_state` output. The result
        holds plain (non-callback) instruments frozen at the snapshot's
        values; it merges and rolls up exactly like a live registry."""
        registry = cls()
        for name, payload in state.items():
            kind = payload["kind"]
            if kind == "histogram":
                hist = registry.histogram(
                    name, payload["help"], bounds=payload["bounds"]
                )
                with hist._lock:
                    hist._counts = list(payload["counts"])
                    hist._sum = payload["sum"]
                    hist._count = payload["count"]
                    hist._min = payload["min"]
                    hist._max = payload["max"]
            elif kind == "counter":
                registry.counter(name, payload["help"]).inc(payload["value"])
            elif kind == "gauge":
                registry.gauge(name, payload["help"]).add(payload["value"])
            else:
                raise ValueError(f"unknown metric kind {kind!r} for {name}")
        return registry

    # -- export --------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view: scalars for counters/gauges, summary dicts
        (count/sum/mean/min/max/p50/p95/p99) for histograms."""
        out: Dict[str, object] = {}
        for name, metric in sorted(self._items()):
            if isinstance(metric, Histogram):
                out[name] = metric.summary()
            else:
                out[name] = metric.value
        return out

    def exposition(self) -> str:
        """Prometheus text exposition (histograms as cumulative ``_bucket``
        series plus ``_sum``/``_count``)."""
        lines: List[str] = []
        for name, metric in sorted(self._items()):
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                with metric._lock:
                    counts = list(metric._counts)
                    total = metric._count
                    vsum = metric._sum
                cum = 0
                for bound, c in zip(metric.bounds, counts):
                    cum += c
                    lines.append(f'{name}_bucket{{le="{bound:g}"}} {cum}')
                lines.append(f'{name}_bucket{{le="+Inf"}} {total}')
                lines.append(f"{name}_sum {vsum:g}")
                lines.append(f"{name}_count {total}")
            else:
                lines.append(f"{name} {metric.value:g}")
        return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?\s+"
    r"(?P<value>[-+]?(?:\d+\.?\d*(?:[eE][-+]?\d+)?|\d*\.\d+(?:[eE][-+]?\d+)?|Inf|NaN))$"
)


def parse_exposition(text: str) -> Dict[str, float]:
    """Parse Prometheus text exposition back into ``{sample: value}``.

    The inverse of :meth:`MetricsRegistry.exposition`, used by the CI
    smoke lane to prove the exposition stays machine-readable. Raises
    ``ValueError`` on any malformed line.
    """
    samples: Dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line {lineno}: {line!r}")
        key = match.group("name") + (match.group("labels") or "")
        samples[key] = float(match.group("value"))
    return samples
