"""Structured event stream: the serving stack's flight recorder.

Rare-but-important happenings — a request blowing through the latency
SLO (with its full trace attached), a guardrail fallback, a hands-free
retraining pass, a statistics-epoch invalidation — land here as
structured events: an in-memory ring buffer for `repro` commands and
tests, plus an optional append-only JSONL file so the record survives
the process. Events are emitted off the per-request hot path (slow
queries, fallbacks, and operator actions only), so the file sink's
open-append-close per event is irrelevant to throughput.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Deque, Dict, List

__all__ = ["EventLog"]


class EventLog:
    """Bounded in-memory event ring with an optional JSONL file sink."""

    def __init__(
        self,
        capacity: int = 2048,
        path=None,
        clock=time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.path = path
        self.clock = clock
        self.emitted = 0
        self._lock = threading.Lock()
        self._events: Deque[dict] = deque(maxlen=capacity)
        #: Per-kind (last-emit timestamp, suppressed-since count) for
        #: :meth:`emit_limited`.
        self._limited: Dict[str, list] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def emit(self, kind: str, **payload) -> dict:
        """Record one event; returns the stored dict (with timestamp)."""
        event = {"ts": round(self.clock(), 6), "kind": kind, **payload}
        line = json.dumps(event, default=str)
        with self._lock:
            self._events.append(event)
            self.emitted += 1
            if self.path is not None:
                with open(self.path, "a") as fh:
                    fh.write(line + "\n")
        return event

    def emit_limited(
        self, kind: str, min_interval_s: float = 1.0, **payload
    ) -> dict | None:
        """Rate-limited :meth:`emit` for events that can storm.

        Load-shedding under a sustained overload would otherwise emit
        one event per rejected request — thousands per second, burying
        everything else in the ring. At most one event per ``kind`` per
        ``min_interval_s`` is recorded; suppressed emissions are counted
        and reported as ``suppressed`` on the next event that gets
        through. Returns the stored event, or ``None`` if suppressed.
        """
        now = self.clock()
        with self._lock:
            state = self._limited.get(kind)
            if state is not None and now - state[0] < min_interval_s:
                state[1] += 1
                return None
            suppressed = state[1] if state is not None else 0
            self._limited[kind] = [now, 0]
        if suppressed:
            payload["suppressed"] = suppressed
        return self.emit(kind, **payload)

    def all(self) -> List[dict]:
        with self._lock:
            return list(self._events)

    def tail(self, n: int) -> List[dict]:
        with self._lock:
            return list(self._events)[-n:]

    def of_kind(self, kind: str) -> List[dict]:
        return [e for e in self.all() if e["kind"] == kind]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self.all():
            out[event["kind"]] = out.get(event["kind"], 0) + 1
        return out

    def to_jsonl(self) -> str:
        return "".join(json.dumps(e, default=str) + "\n" for e in self.all())

    @staticmethod
    def parse_jsonl(text: str) -> List[dict]:
        """Parse a JSONL dump back into events, validating the envelope
        (every line must be an object with ``ts`` and ``kind``)."""
        events: List[dict] = []
        for lineno, line in enumerate(text.splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            if not isinstance(event, dict) or "ts" not in event or "kind" not in event:
                raise ValueError(f"malformed event on line {lineno}: {line!r}")
            events.append(event)
        return events
