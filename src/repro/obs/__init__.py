"""Unified telemetry for the serving stack (zero dependencies).

Three cooperating pieces, one facade:

- :mod:`repro.obs.metrics` — typed ``Counter``/``Gauge``/``Histogram``
  instruments in per-shard :class:`MetricsRegistry` objects, merged at
  read time (``MetricsRegistry.merge``) into one rollup with Prometheus
  text exposition and a JSON snapshot;
- :mod:`repro.obs.trace` — per-request :class:`Trace` span trees
  (queue wait → batch flush → shard dispatch → cache lookup → policy
  forward → guardrail → expert DP → plan construction), head-sampled by
  a seeded :class:`TraceSampler`, always retained for requests over the
  latency SLO;
- :mod:`repro.obs.events` — a structured :class:`EventLog` (ring buffer
  + optional JSONL file) of slow queries, guardrail fallbacks,
  retraining passes, and statistics-epoch invalidations.

:class:`Telemetry` owns the sampler, trace store, event log, and a
registry for trace-derived metrics, and is shared by the front end and
its shard services. Construct with ``TelemetryConfig(enabled=False)``
(or :func:`disabled`) to turn the tracing/event layer off — metric
registries keep working either way, because pull-style counters cost
nothing on the hot path.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List

from repro.obs.events import EventLog
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_exposition,
    quantile_error_bound,
)
from repro.obs.trace import Span, Trace, TraceSampler, TraceStore

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TELEMETRY_STAGES",
    "Telemetry",
    "TelemetryConfig",
    "Trace",
    "TraceSampler",
    "TraceStore",
    "disabled",
    "parse_exposition",
    "quantile_error_bound",
]

#: Canonical per-request stage names, in request order (drives the
#: serve-bench breakdown table and the ``repro_trace_<stage>_ms``
#: histogram family).
TELEMETRY_STAGES = (
    "queue_wait",
    "worker_queue",
    "serve",
    "cache_lookup",
    "policy_forward",
    "guardrail",
    "expert_dp",
    "plan_construction",
)


@dataclass(frozen=True)
class TelemetryConfig:
    """Operator knobs for the telemetry layer."""

    #: Master switch for tracing + events (metrics registries are
    #: independent of this and always available).
    enabled: bool = True
    #: Fraction of requests whose traces are retained (head sampling,
    #: seeded). Requests over the SLO are retained regardless.
    sample_rate: float = 0.05
    #: Latency SLO: a finished request slower than this is always
    #: retained and logged as a ``slow_query`` event.
    slo_ms: float = 100.0
    #: Seed for the deterministic sampler.
    seed: int = 0
    #: Ring-buffer capacity for retained traces.
    trace_capacity: int = 512
    #: Ring-buffer capacity for events.
    event_capacity: int = 2048
    #: Optional JSONL file every event is appended to.
    events_path: object = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        if self.slo_ms < 0:
            raise ValueError("slo_ms must be non-negative")


class Telemetry:
    """The shared telemetry spine for one serving stack.

    One instance is shared by a front end and all its shard services:
    traces begin at ``submit`` and finish when the shard worker resolves
    the request; finished traces feed the per-stage histograms, the
    slow-query event stream, and the retained-trace ring buffer.
    """

    def __init__(self, config: TelemetryConfig | None = None) -> None:
        self.config = config or TelemetryConfig()
        self.enabled = self.config.enabled
        self.registry = MetricsRegistry()
        self.sampler = TraceSampler(self.config.sample_rate, self.config.seed)
        self.store = TraceStore(self.config.trace_capacity)
        self.events = EventLog(
            capacity=self.config.event_capacity, path=self.config.events_path
        )
        self._id_lock = threading.Lock()
        self._next_id = 0
        if self.enabled:
            self._started = self.registry.counter(
                "repro_obs_traces_started_total", "traces begun (enabled requests)"
            )
            self._retained = self.registry.counter(
                "repro_obs_traces_retained_total", "traces kept (sampled or over SLO)"
            )
            self._slow = self.registry.counter(
                "repro_obs_slow_queries_total",
                f"requests over the {self.config.slo_ms}ms SLO",
            )
            self._e2e = self.registry.histogram(
                "repro_request_e2e_ms", "end-to-end latency of traced requests"
            )

    # -- trace lifecycle ----------------------------------------------
    def begin_trace(self, name: str, **attrs) -> Trace | None:
        """Start a trace for one request; ``None`` when disabled (every
        recording site is None-guarded, so disabled telemetry costs one
        attribute check per request)."""
        if not self.enabled:
            return None
        with self._id_lock:
            self._next_id += 1
            trace_id = f"{self._next_id:08d}"
        self._started.inc()
        return Trace(name, trace_id=trace_id, sampled=self.sampler.sample(), attrs=attrs)

    def finish_trace(self, trace: Trace | None, **attrs) -> None:
        """Close a trace: feed stage histograms, apply SLO retention,
        emit the slow-query event. None-safe."""
        if trace is None:
            return
        total_ms = trace.finish(**attrs)
        self._e2e.observe(total_ms)
        for stage, duration_ms in trace.stage_durations().items():
            self.registry.histogram(
                f"repro_trace_{stage}_ms", f"time in the {stage} stage"
            ).observe(duration_ms)
        slow = total_ms > self.config.slo_ms
        if slow:
            self._slow.inc()
            self.events.emit(
                "slow_query",
                trace_id=trace.trace_id,
                latency_ms=round(total_ms, 4),
                slo_ms=self.config.slo_ms,
                trace=trace.to_dict(),
            )
        if trace.sampled or slow:
            self.store.add(trace)
            self._retained.inc()

    # -- reads ---------------------------------------------------------
    def stage_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-stage latency summaries (count/mean/p50/p95/p99), request
        order first, any non-canonical stages after."""
        out: Dict[str, Dict[str, float]] = {}
        names = self.registry.names()
        ordered = [f"repro_trace_{s}_ms" for s in TELEMETRY_STAGES]
        for name in ordered + [n for n in names if n.startswith("repro_trace_") and n not in ordered]:
            metric = self.registry.get(name)
            if isinstance(metric, Histogram) and metric.count:
                stage = name[len("repro_trace_"):-len("_ms")]
                out[stage] = metric.summary()
        return out

    def slow_queries(self) -> List[dict]:
        return self.events.of_kind("slow_query")


def disabled() -> Telemetry:
    """A telemetry spine with tracing and events off."""
    return Telemetry(TelemetryConfig(enabled=False))
