"""Per-request tracing: where did this query's latency go?

A :class:`Trace` is created when a request is accepted and travels with
it through the serving stack — submit, queue wait, batch flush, shard
dispatch, cache lookup, policy forward, guardrail, expert DP, plan
construction — each stage recording a :class:`Span` with its duration
and the attributes an operator needs after the fact (fingerprint,
shard, cache hit/miss, fallback reason, dp_subsets, ...).

Ownership is a sequential handoff (submitter → flusher → one shard
worker), never concurrent, so spans need no locking; timestamps come
from one monotonic clock captured at trace start, so span offsets and
the end-to-end duration are mutually consistent.

Every request gets a trace while telemetry is enabled (recording a span
is a dataclass append — microseconds against a multi-millisecond
request); *retention* is what is sampled. A seeded
:class:`TraceSampler` decides up front whether a trace is kept in the
:class:`TraceStore` ring buffer; traces that finish over the latency
SLO are always kept (and logged as slow-query events), so the forensic
record for an outlier exists even at a 1% steady-state sampling rate.
"""

from __future__ import annotations

import json
import random
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List

__all__ = ["Span", "Trace", "TraceSampler", "TraceStore"]


@dataclass
class Span:
    """One named, timed stage of a request (offsets in ms from trace start)."""

    name: str
    start_ms: float
    duration_ms: float | None = None
    attrs: Dict[str, object] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    def to_dict(self) -> dict:
        out: dict = {
            "name": self.name,
            "start_ms": round(self.start_ms, 4),
            "duration_ms": (
                None if self.duration_ms is None else round(self.duration_ms, 4)
            ),
        }
        if self.attrs:
            out["attrs"] = self.attrs
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    @staticmethod
    def from_dict(data: dict) -> "Span":
        return Span(
            name=data["name"],
            start_ms=data["start_ms"],
            duration_ms=data.get("duration_ms"),
            attrs=dict(data.get("attrs", {})),
            children=[Span.from_dict(c) for c in data.get("children", [])],
        )

    def walk(self) -> Iterable["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()


class Trace:
    """One request's span tree, built against a single monotonic clock."""

    __slots__ = ("trace_id", "sampled", "root", "_clock", "_t0")

    def __init__(
        self,
        name: str,
        trace_id: str = "",
        sampled: bool = True,
        clock=time.perf_counter,
        attrs: Dict[str, object] | None = None,
    ) -> None:
        self.trace_id = trace_id
        self.sampled = sampled
        self._clock = clock
        self._t0 = clock()
        self.root = Span(name=name, start_ms=0.0, attrs=dict(attrs or {}))

    # -- recording -----------------------------------------------------
    def now_ms(self) -> float:
        """Milliseconds since the trace began."""
        return (self._clock() - self._t0) * 1000.0

    def start_span(self, name: str, parent: Span | None = None, **attrs) -> Span:
        span = Span(name=name, start_ms=self.now_ms(), attrs=attrs)
        (parent or self.root).children.append(span)
        return span

    def end_span(self, span: Span) -> Span:
        span.duration_ms = self.now_ms() - span.start_ms
        return span

    @contextmanager
    def span(self, name: str, parent: Span | None = None, **attrs):
        span = self.start_span(name, parent=parent, **attrs)
        try:
            yield span
        finally:
            self.end_span(span)

    def record(
        self,
        name: str,
        duration_ms: float,
        parent: Span | None = None,
        start_ms: float | None = None,
        **attrs,
    ) -> Span:
        """A completed span with an explicit duration — for stages timed
        elsewhere (e.g. queue wait measured from the submission stamp)."""
        start = self.now_ms() - duration_ms if start_ms is None else start_ms
        span = Span(name=name, start_ms=start, duration_ms=duration_ms, attrs=attrs)
        (parent or self.root).children.append(span)
        return span

    def finish(self, **attrs) -> float:
        """Close the root span; idempotent. Returns the total duration."""
        self.root.attrs.update(attrs)
        if self.root.duration_ms is None:
            self.root.duration_ms = self.now_ms()
        return self.root.duration_ms

    # -- reads ---------------------------------------------------------
    @property
    def duration_ms(self) -> float:
        return self.root.duration_ms if self.root.duration_ms is not None else self.now_ms()

    def stage_durations(self) -> Dict[str, float]:
        """Total time per span name over the whole tree (repeated stage
        names — e.g. one cache lookup per burst duplicate — sum)."""
        out: Dict[str, float] = {}
        for span in self.root.walk():
            if span is self.root or span.duration_ms is None:
                continue
            out[span.name] = out.get(span.name, 0.0) + span.duration_ms
        return out

    def coverage(self) -> float:
        """Fraction of the end-to-end duration explained by the root's
        direct children — the "do the spans add up" health check."""
        total = self.root.duration_ms
        if not total:
            return 0.0
        explained = sum(
            c.duration_ms for c in self.root.children if c.duration_ms is not None
        )
        return explained / total

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "sampled": self.sampled,
            "root": self.root.to_dict(),
        }

    @staticmethod
    def from_dict(data: dict) -> "Trace":
        trace = Trace(
            name=data["root"]["name"],
            trace_id=data.get("trace_id", ""),
            sampled=data.get("sampled", True),
        )
        trace.root = Span.from_dict(data["root"])
        return trace

    def format(self) -> str:
        """Human-readable span tree (``repro trace --slowest N``)."""
        lines: List[str] = []
        head_attrs = " ".join(f"{k}={v}" for k, v in sorted(self.root.attrs.items()))
        total = self.root.duration_ms
        lines.append(
            f"trace {self.trace_id or '-'} {self.root.name} "
            f"total={total:.2f}ms"
            + (f" [{head_attrs}]" if head_attrs else "")
            + ("" if self.sampled else " (kept: over SLO)")
        )

        def render(span: Span, depth: int) -> None:
            dur = "?" if span.duration_ms is None else f"{span.duration_ms:.2f}ms"
            attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
            lines.append(
                "  " * depth + f"{span.name:<20s} {dur:>10s}"
                + (f"  {attrs}" if attrs else "")
            )
            for child in span.children:
                render(child, depth + 1)

        for child in self.root.children:
            render(child, 1)
        if total:
            lines.append(f"  span coverage: {self.coverage() * 100.0:.1f}% of end-to-end")
        return "\n".join(lines)


class TraceSampler:
    """Seeded head sampler: deterministic keep/drop decisions.

    The decision sequence is a function of (rate, seed) alone, so a
    replayed request stream retains the same traces — reproducible
    forensics and testable sampling.
    """

    def __init__(self, rate: float = 1.0, seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("sample rate must be in [0, 1]")
        self.rate = rate
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def sample(self) -> bool:
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        with self._lock:
            return self._rng.random() < self.rate


class TraceStore:
    """Bounded ring buffer of retained (finished) traces."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.retained = 0
        self._lock = threading.Lock()
        self._traces: Deque[Trace] = deque(maxlen=capacity)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def add(self, trace: Trace) -> None:
        with self._lock:
            self._traces.append(trace)
            self.retained += 1

    def all(self) -> List[Trace]:
        with self._lock:
            return list(self._traces)

    def slowest(self, n: int) -> List[Trace]:
        """The ``n`` slowest retained traces, slowest first."""
        return sorted(self.all(), key=lambda t: t.duration_ms, reverse=True)[:n]

    def to_jsonl(self) -> str:
        return "".join(
            json.dumps(trace.to_dict(), default=str) + "\n" for trace in self.all()
        )

    def write_jsonl(self, path) -> int:
        """Dump every retained trace; returns how many were written."""
        traces = self.all()
        with open(path, "w") as fh:
            for trace in traces:
                fh.write(json.dumps(trace.to_dict(), default=str) + "\n")
        return len(traces)

    @staticmethod
    def read_jsonl(path) -> List[Trace]:
        traces: List[Trace] = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    traces.append(Trace.from_dict(json.loads(line)))
        return traces
