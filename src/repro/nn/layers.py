"""Feed-forward layers with manual backprop.

Layers follow a simple contract:

- ``forward(x)`` consumes a batch ``(batch, features_in)`` and returns
  ``(batch, features_out)``, caching whatever it needs for backprop;
- ``backward(grad_out)`` consumes the loss gradient w.r.t. the layer
  output and returns the gradient w.r.t. the layer input, accumulating
  parameter gradients in ``layer.grads``;
- ``params`` / ``grads`` expose parameters as ``{name: ndarray}`` so
  optimizers can update them in place.

The implementation is intentionally eager and minimal — the networks in
this reproduction are small MLPs, where explicit backprop is both exact
and fast.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List

import numpy as np

from repro.nn.initializers import xavier_init

__all__ = ["Layer", "Linear", "ReLU", "Tanh", "Sequential"]


class Layer:
    """Base class for all layers."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def params(self) -> Dict[str, np.ndarray]:
        """Trainable parameters, empty for stateless layers."""
        return {}

    @property
    def grads(self) -> Dict[str, np.ndarray]:
        """Accumulated parameter gradients, keyed like :attr:`params`."""
        return {}

    def zero_grad(self) -> None:
        for g in self.grads.values():
            g.fill(0.0)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Linear(Layer):
    """Affine layer ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        init: Callable[[int, int, np.random.Generator], np.ndarray] = xavier_init,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear layer dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = init(in_features, out_features, rng)
        self.bias = np.zeros(out_features)
        self._grad_weight = np.zeros_like(self.weight)
        self._grad_bias = np.zeros_like(self.bias)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[1] != self.in_features:
            raise ValueError(
                f"Linear expected {self.in_features} input features, got {x.shape[1]}"
            )
        self._x = x
        return x @ self.weight + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        grad_out = np.atleast_2d(grad_out)
        self._grad_weight += self._x.T @ grad_out
        self._grad_bias += grad_out.sum(axis=0)
        return grad_out @ self.weight.T

    def grow_outputs(self, n_new: int, rng: np.random.Generator) -> None:
        """Append ``n_new`` freshly initialized output units.

        Used by incremental learning (paper §5.3.1) to extend the action
        layer when a new optimization stage is introduced: existing
        outputs keep their learned weights; new outputs start small so
        the pre-trained policy is perturbed as little as possible.
        """
        if n_new <= 0:
            raise ValueError("n_new must be positive")
        extra_w = xavier_init(self.in_features, n_new, rng) * 0.1
        self.weight = np.concatenate([self.weight, extra_w], axis=1)
        self.bias = np.concatenate([self.bias, np.zeros(n_new)])
        self._grad_weight = np.zeros_like(self.weight)
        self._grad_bias = np.zeros_like(self.bias)
        self.out_features += n_new

    @property
    def params(self) -> Dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}

    @property
    def grads(self) -> Dict[str, np.ndarray]:
        return {"weight": self._grad_weight, "bias": self._grad_bias}


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._mask


class Tanh(Layer):
    """Hyperbolic-tangent activation."""

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_out * (1.0 - self._out**2)


class Sequential(Layer):
    """Composes layers in order."""

    def __init__(self, layers: Iterable[Layer]) -> None:
        self.layers: List[Layer] = list(layers)
        if not self.layers:
            raise ValueError("Sequential needs at least one layer")

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    @property
    def params(self) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            for name, value in layer.params.items():
                out[f"{i}.{name}"] = value
        return out

    @property
    def grads(self) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            for name, value in layer.grads.items():
                out[f"{i}.{name}"] = value
        return out
