"""Weight initializers.

All initializers take the weight shape ``(fan_in, fan_out)`` and an
explicit :class:`numpy.random.Generator` so that training runs are
reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = ["he_init", "xavier_init", "zeros_init"]


def xavier_init(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization, suited to tanh layers."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fan_in and fan_out must be positive, got {fan_in}, {fan_out}")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_init(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """He normal initialization, suited to ReLU layers."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fan_in and fan_out must be positive, got {fan_in}, {fan_out}")
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def zeros_init(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """All-zeros initialization (used for bias vectors and tests)."""
    del rng  # deterministic; accepted for interface uniformity
    return np.zeros((fan_in, fan_out))
