"""First-order optimizers operating on ``{name: ndarray}`` parameter maps.

Optimizers update parameters *in place* so that layers keep their views;
state (momenta, second moments) is keyed by parameter name.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["Optimizer", "SGD", "RMSProp", "Adam", "clip_gradients"]


def clip_gradients(grads: Dict[str, np.ndarray], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is ≤ ``max_norm``.

    Returns the pre-clip norm (useful for training diagnostics).
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = float(np.sqrt(sum(float((g**2).sum()) for g in grads.values())))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for g in grads.values():
            g *= scale
    return total


class Optimizer:
    """Base optimizer over a fixed parameter map."""

    def __init__(self, params: Dict[str, np.ndarray], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = params
        self.lr = lr

    def step(self, grads: Dict[str, np.ndarray]) -> None:
        raise NotImplementedError

    def _check(self, grads: Dict[str, np.ndarray]) -> None:
        missing = set(self.params) - set(grads)
        if missing:
            raise KeyError(f"missing gradients for parameters: {sorted(missing)}")

    def rebind(self, params: Dict[str, np.ndarray]) -> None:
        """Re-attach to a new parameter map (after action-layer growth).

        Per-parameter state whose shape no longer matches is reset; all
        other state is retained.
        """
        self.params = params


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self, params: Dict[str, np.ndarray], lr: float = 1e-2, momentum: float = 0.0
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity: Dict[str, np.ndarray] = {}

    def step(self, grads: Dict[str, np.ndarray]) -> None:
        self._check(grads)
        for name, param in self.params.items():
            g = grads[name]
            if self.momentum > 0:
                v = self._velocity.get(name)
                if v is None or v.shape != g.shape:
                    v = np.zeros_like(g)
                v = self.momentum * v + g
                self._velocity[name] = v
                g = v
            param -= self.lr * g


class RMSProp(Optimizer):
    """RMSProp with a moving average of squared gradients."""

    def __init__(
        self,
        params: Dict[str, np.ndarray],
        lr: float = 1e-3,
        decay: float = 0.99,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        self.decay = decay
        self.eps = eps
        self._sq: Dict[str, np.ndarray] = {}

    def step(self, grads: Dict[str, np.ndarray]) -> None:
        self._check(grads)
        for name, param in self.params.items():
            g = grads[name]
            s = self._sq.get(name)
            if s is None or s.shape != g.shape:
                s = np.zeros_like(g)
            s = self.decay * s + (1 - self.decay) * g**2
            self._sq[name] = s
            param -= self.lr * g / (np.sqrt(s) + self.eps)


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba)."""

    def __init__(
        self,
        params: Dict[str, np.ndarray],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        self._t = 0

    def step(self, grads: Dict[str, np.ndarray]) -> None:
        self._check(grads)
        self._t += 1
        b1t = 1 - self.beta1**self._t
        b2t = 1 - self.beta2**self._t
        for name, param in self.params.items():
            g = grads[name]
            m = self._m.get(name)
            v = self._v.get(name)
            if m is None or m.shape != g.shape:
                m = np.zeros_like(g)
                self._m[name] = m
            if v is None or v.shape != g.shape:
                v = np.zeros_like(g)
                self._v[name] = v
            # In-place moment updates: same arithmetic (and bit results)
            # as `beta*m + (1-beta)*g`, without reallocating the moment
            # buffers on every step — the optimizer was allocation-bound.
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * g**2
            update = self.lr * (m / b1t)
            update /= np.sqrt(v / b2t) + self.eps
            param -= update
