"""A small, self-contained neural-network library built on numpy.

The offline reproduction environment has no deep-learning framework, so
this package provides exactly the pieces the paper's agents need:

- dense feed-forward networks with manual, gradient-checked backprop
  (:mod:`repro.nn.layers`, :mod:`repro.nn.network`),
- policy-gradient friendly losses, including masked softmax over
  variable action sets (:mod:`repro.nn.losses`),
- first-order optimizers with gradient clipping (:mod:`repro.nn.optim`),
- deterministic weight initializers (:mod:`repro.nn.initializers`).

Everything is deterministic given an explicit
:class:`numpy.random.Generator`.
"""

from repro.nn.initializers import he_init, xavier_init, zeros_init
from repro.nn.layers import Layer, Linear, ReLU, Sequential, Tanh
from repro.nn.losses import (
    masked_log_softmax,
    masked_softmax,
    mse_loss,
    policy_gradient_loss,
)
from repro.nn.network import MLP
from repro.nn.optim import SGD, Adam, Optimizer, RMSProp, clip_gradients

__all__ = [
    "Adam",
    "Layer",
    "Linear",
    "MLP",
    "Optimizer",
    "ReLU",
    "RMSProp",
    "SGD",
    "Sequential",
    "Tanh",
    "clip_gradients",
    "he_init",
    "masked_log_softmax",
    "masked_softmax",
    "mse_loss",
    "policy_gradient_loss",
    "xavier_init",
    "zeros_init",
]
