"""Losses and probability utilities for policy-gradient learning.

The central primitive is the *masked* softmax: query-optimization action
sets shrink as relations are combined (paper §3), so the policy network
has a fixed-size output layer and invalid actions are masked to
probability zero before sampling or computing gradients.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "masked_softmax",
    "masked_log_softmax",
    "masked_softmax_and_log",
    "mse_loss",
    "policy_gradient_loss",
    "entropy",
]

_NEG_INF = -1e30


def _apply_mask(logits: np.ndarray, mask: np.ndarray | None) -> np.ndarray:
    logits = np.atleast_2d(np.asarray(logits, dtype=np.float64))
    if mask is None:
        return logits
    mask = np.atleast_2d(np.asarray(mask, dtype=bool))
    if mask.shape != logits.shape:
        raise ValueError(f"mask shape {mask.shape} != logits shape {logits.shape}")
    if not mask.any(axis=1).all():
        raise ValueError("every row must have at least one valid action")
    return np.where(mask, logits, _NEG_INF)


def masked_softmax(logits: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
    """Softmax over valid actions only; invalid actions get probability 0."""
    masked = _apply_mask(logits, mask)
    shifted = masked - masked.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def masked_log_softmax(logits: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
    """Numerically stable log-softmax over valid actions.

    Entries for invalid actions are a very large negative number, never
    ``-inf``, so downstream arithmetic stays finite.
    """
    masked = _apply_mask(logits, mask)
    shifted = masked - masked.max(axis=1, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    return shifted - log_norm


def masked_softmax_and_log(
    logits: np.ndarray, mask: np.ndarray | None = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Both distributions from one shift/exp/normalize pass.

    Policy-gradient losses need probabilities (for gradients and
    entropy) *and* log-probabilities (for the surrogate) of the same
    logits; computing them together halves the softmax work without
    changing a single bit of either result.
    """
    masked = _apply_mask(logits, mask)
    shifted = masked - masked.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    norm = exp.sum(axis=1, keepdims=True)
    return exp / norm, shifted - np.log(norm)


def entropy(probs: np.ndarray) -> np.ndarray:
    """Per-row entropy of a probability matrix (zero-probability safe)."""
    probs = np.atleast_2d(probs)
    with np.errstate(divide="ignore", invalid="ignore"):
        term = np.where(probs > 0, probs * np.log(probs), 0.0)
    return -term.sum(axis=1)


def mse_loss(pred: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean-squared error and its gradient w.r.t. ``pred``."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    diff = pred - target
    loss = float(np.mean(diff**2))
    grad = 2.0 * diff / diff.size
    return loss, grad


def policy_gradient_loss(
    logits: np.ndarray,
    actions: np.ndarray,
    advantages: np.ndarray,
    mask: np.ndarray | None = None,
    entropy_coef: float = 0.0,
) -> Tuple[float, np.ndarray]:
    """REINFORCE-style surrogate loss and its gradient w.r.t. ``logits``.

    Minimizes ``-mean(advantage * log pi(action))`` with an optional
    entropy bonus. Returns ``(loss, dloss/dlogits)``; the gradient for an
    invalid (masked) action is exactly zero.
    """
    logits = np.atleast_2d(logits)
    actions = np.asarray(actions, dtype=np.int64).reshape(-1)
    advantages = np.asarray(advantages, dtype=np.float64).reshape(-1)
    n, k = logits.shape
    if actions.shape[0] != n or advantages.shape[0] != n:
        raise ValueError("actions/advantages must have one entry per logits row")
    if (actions < 0).any() or (actions >= k).any():
        raise ValueError("action index out of range")

    probs, log_probs = masked_softmax_and_log(logits, mask)
    picked = log_probs[np.arange(n), actions]
    if mask is not None:
        valid = np.atleast_2d(np.asarray(mask, dtype=bool))[np.arange(n), actions]
        if not valid.all():
            raise ValueError("a masked (invalid) action was taken")

    pg_loss = -float(np.mean(advantages * picked))
    # d(-adv * log p[a])/dlogits = -adv * (onehot(a) - p)
    onehot = np.zeros_like(probs)
    onehot[np.arange(n), actions] = 1.0
    grad = -(advantages[:, None] * (onehot - probs)) / n

    ent = entropy(probs)
    loss = pg_loss - entropy_coef * float(np.mean(ent))
    if entropy_coef != 0.0:
        # d(-H)/dlogits = p * (log p + H)  (per row); zero where p == 0.
        with np.errstate(divide="ignore"):
            logp = np.where(probs > 0, np.log(probs), 0.0)
        grad_ent = probs * (logp + ent[:, None]) / n
        grad += entropy_coef * grad_ent
    if mask is not None:
        grad = np.where(np.atleast_2d(np.asarray(mask, dtype=bool)), grad, 0.0)
    return loss, grad
