"""The :class:`MLP` facade used by every agent in the reproduction.

An MLP bundles a :class:`~repro.nn.layers.Sequential` stack with its
optimizer and adds the operations the paper's training strategies need:

- a single-call ``train_step`` (forward, loss, backward, clip, step);
- ``grow_outputs`` — action-layer surgery for incremental learning
  (paper §5.3.1: "the action space can be extended");
- ``copy_weights_from`` with per-layer selection — transfer learning for
  cost-model bootstrapping (paper §5.2: "transfer the weights of the
  later layers of the network into a new network");
- ``save`` / ``load`` checkpoints (``.npz``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.nn.initializers import he_init
from repro.nn.layers import Layer, Linear, ReLU, Sequential, Tanh
from repro.nn.optim import Adam, Optimizer, clip_gradients

__all__ = ["MLP"]

_ACTIVATIONS = {"relu": ReLU, "tanh": Tanh}


class MLP:
    """A multi-layer perceptron with hidden activations and a linear head."""

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        out_features: int,
        rng: np.random.Generator,
        activation: str = "relu",
        lr: float = 1e-3,
        max_grad_norm: float = 5.0,
        optimizer_factory: Callable[[dict, float], Optimizer] | None = None,
    ) -> None:
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        self.in_features = in_features
        self.out_features = out_features
        self.hidden = list(hidden)
        self.activation = activation
        self.max_grad_norm = max_grad_norm
        act = _ACTIVATIONS[activation]

        layers: List[Layer] = []
        prev = in_features
        for width in hidden:
            layers.append(Linear(prev, width, rng, init=he_init))
            layers.append(act())
            prev = width
        layers.append(Linear(prev, out_features, rng))
        self.net = Sequential(layers)
        factory = optimizer_factory or (lambda params, lr_: Adam(params, lr=lr_))
        self.optimizer = factory(self.net.params, lr)

    # ------------------------------------------------------------------
    # Inference / training
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Batch forward pass; accepts 1-D input and returns 2-D output."""
        return self.net.forward(np.atleast_2d(np.asarray(x, dtype=np.float64)))

    __call__ = forward

    def train_step(
        self,
        x: np.ndarray,
        loss_fn: Callable[[np.ndarray], Tuple[float, np.ndarray]],
    ) -> float:
        """Run ``forward``, apply ``loss_fn(output) -> (loss, dL/doutput)``,
        backprop, clip, and take one optimizer step. Returns the loss."""
        self.net.zero_grad()
        out = self.forward(x)
        loss, grad = loss_fn(out)
        self.net.backward(grad)
        grads = self.net.grads
        clip_gradients(grads, self.max_grad_norm)
        self.optimizer.step(grads)
        return loss

    # ------------------------------------------------------------------
    # Surgery and transfer
    # ------------------------------------------------------------------
    @property
    def output_layer(self) -> Linear:
        layer = self.net.layers[-1]
        if not isinstance(layer, Linear):
            raise TypeError("output layer is not Linear")
        return layer

    def grow_outputs(self, n_new: int, rng: np.random.Generator) -> None:
        """Extend the action layer by ``n_new`` outputs (incremental learning)."""
        self.output_layer.grow_outputs(n_new, rng)
        self.out_features += n_new
        self.optimizer.rebind(self.net.params)

    def linear_layers(self) -> List[Linear]:
        return [layer for layer in self.net.layers if isinstance(layer, Linear)]

    def copy_weights_from(self, other: "MLP", layers: Sequence[int] | None = None) -> None:
        """Copy weights of selected linear layers from ``other``.

        ``layers`` indexes into :meth:`linear_layers` (negative indices
        allowed); ``None`` copies every layer whose shape matches. Layers
        with mismatched shapes raise, so transfer is always explicit.
        """
        mine = self.linear_layers()
        theirs = other.linear_layers()
        if layers is None:
            pairs = [(m, t) for m, t in zip(mine, theirs) if m.weight.shape == t.weight.shape]
        else:
            pairs = []
            for idx in layers:
                m, t = mine[idx], theirs[idx]
                if m.weight.shape != t.weight.shape:
                    raise ValueError(
                        f"layer {idx} shape mismatch: {m.weight.shape} vs {t.weight.shape}"
                    )
                pairs.append((m, t))
        for m, t in pairs:
            m.weight[...] = t.weight
            m.bias[...] = t.bias

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write a checkpoint with architecture metadata and weights."""
        arrays = {f"param/{k}": v for k, v in self.net.params.items()}
        meta = np.array(
            [self.in_features, self.out_features, len(self.hidden), *self.hidden],
            dtype=np.int64,
        )
        np.savez(
            Path(path),
            __meta__=meta,
            __activation__=np.array(self.activation),
            **arrays,
        )

    @classmethod
    def load(cls, path: str | Path, lr: float = 1e-3) -> "MLP":
        """Rebuild an MLP from :meth:`save` output (optimizer state is fresh)."""
        data = np.load(Path(path), allow_pickle=False)
        meta = data["__meta__"]
        in_features, out_features, n_hidden = int(meta[0]), int(meta[1]), int(meta[2])
        hidden = [int(v) for v in meta[3 : 3 + n_hidden]]
        activation = str(data["__activation__"])
        model = cls(
            in_features,
            hidden,
            out_features,
            rng=np.random.default_rng(0),
            activation=activation,
            lr=lr,
        )
        params = model.net.params
        for key in data.files:
            if key.startswith("param/"):
                name = key[len("param/") :]
                params[name][...] = data[key]
        return model

    def clone(self, rng: np.random.Generator | None = None) -> "MLP":
        """A structural copy with identical weights and a fresh optimizer."""
        model = MLP(
            self.in_features,
            self.hidden,
            self.out_features,
            rng=rng or np.random.default_rng(0),
            activation=self.activation,
            lr=self.optimizer.lr,
            max_grad_norm=self.max_grad_norm,
        )
        model.copy_weights_from(self)
        return model
