"""Reward signals for the DRL query optimizer.

Section 4 of the paper analyzes the two available performance
indicators — the optimizer's cost model (dense-ish, cheap, but unitless
and imperfect) and the true query latency (the real objective, but
sparse, non-linear, and expensive for bad plans). Both are provided
here with a shared interface, plus the §5.2 latency→cost scaling that
lets a model switch signals without perceiving a reward-scale cliff.

Shaping. The paper's ReJOIN reward is the cost reciprocal ``1/M(t)``.
Reciprocal, negative-log, and relative-to-expert shapings are all
monotone transformations of the underlying metric — they induce the
same plan ordering — but differ greatly in variance, and therefore in
convergence speed at laptop episode budgets. ``neg_log`` is the default
used by the trainers; benches that reproduce Figure 3 note the shaping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Literal, Tuple

from repro.db.engine import Database
from repro.db.plans import PhysicalPlan
from repro.db.query import Query
from repro.optimizer.planner import Planner

__all__ = [
    "PlanOutcome",
    "ExpertBaseline",
    "CostModelReward",
    "LatencyReward",
    "ScaledLatencyReward",
    "shape_metric",
]

Shaping = Literal["reciprocal", "neg_log", "relative"]


@dataclass(frozen=True)
class PlanOutcome:
    """What evaluating one finished plan produced."""

    reward: float
    #: The raw metric the reward was derived from (cost units or ms).
    metric: float
    cost: float | None = None
    latency_ms: float | None = None
    timed_out: bool = False
    executed: bool = False


def shape_metric(metric: float, shaping: Shaping, expert_metric: float | None = None) -> float:
    """Turn a lower-is-better metric into a higher-is-better reward."""
    metric = max(metric, 1e-9)
    if shaping == "reciprocal":
        return 1.0 / metric
    if shaping == "neg_log":
        return -math.log(metric)
    if shaping == "relative":
        if expert_metric is None or expert_metric <= 0:
            raise ValueError("relative shaping needs a positive expert metric")
        # log-ratio: 0 when matching the expert, positive when better.
        return -math.log(metric / expert_metric)
    raise ValueError(f"unknown shaping {shaping!r}")


class ExpertBaseline:
    """Caches the expert planner's cost and latency per query.

    Used for relative reward shaping, for the relative-cost series of
    Figure 3a, and for sizing per-query latency budgets.
    """

    def __init__(self, db: Database, planner: Planner | None = None) -> None:
        self.db = db
        self.planner = planner or Planner(db)
        self._cost: Dict[str, float] = {}
        self._latency: Dict[str, float] = {}

    def cost(self, query: Query) -> float:
        value = self._cost.get(query.name)
        if value is None:
            value = self.planner.optimize(query).cost.total
            self._cost[query.name] = value
        return value

    def latency(self, query: Query) -> float:
        value = self._latency.get(query.name)
        if value is None:
            plan = self.planner.optimize(query).plan
            result = self.db.execute_plan(plan, query)
            value = result.latency_ms
            self._latency[query.name] = value
        return value


class CostModelReward:
    """Phase-1 signal: the optimizer cost model's opinion of the plan.

    Cheap to evaluate (no execution), available for catastrophic plans,
    but inherits every cost-model flaw — "kicking the can down the
    road", as §4 puts it.
    """

    def __init__(
        self,
        db: Database,
        shaping: Shaping = "neg_log",
        baseline: ExpertBaseline | None = None,
    ) -> None:
        self.db = db
        self.shaping: Shaping = shaping
        self.baseline = baseline
        if shaping == "relative" and baseline is None:
            raise ValueError("relative shaping requires an ExpertBaseline")

    def evaluate(self, plan: PhysicalPlan, query: Query) -> PlanOutcome:
        cost = self.db.plan_cost(plan, query).total
        return self._outcome_for_cost(cost, query)

    def evaluate_tree(
        self, tree, query: Query, planner: Planner, cards=None
    ) -> Tuple[PlanOutcome, PhysicalPlan]:
        """Score a finished join order through the planner's tree costing.

        Same outcome as completing the plan and calling :meth:`evaluate`
        — bitwise-equal cost — but routed through
        :meth:`Planner.evaluate_tree`, so a planner with a sub-plan cost
        memo answers repeated trees without rebuilding or re-costing
        them. The environments prefer this entry point when the reward
        source offers it.
        """
        if planner.db is not self.db:
            # The planner wraps a different database than this reward —
            # its memoized costs would be computed under the wrong
            # statistics. Preserve the pre-memo semantics: the planner
            # builds the plan, THIS reward's database scores it.
            plan = planner.complete_plan(tree, query)
            return self.evaluate(plan, query), plan
        result = planner.evaluate_tree(tree, query, cards=cards)
        return self._outcome_for_cost(result.cost.total, query), result.plan

    def _outcome_for_cost(self, cost: float, query: Query) -> PlanOutcome:
        expert = self.baseline.cost(query) if self.baseline else None
        reward = shape_metric(cost, self.shaping, expert)
        return PlanOutcome(reward=reward, metric=cost, cost=cost, executed=False)


class LatencyReward:
    """Phase-2 signal: actually execute the plan and observe latency.

    The budget censors catastrophic plans (footnote 2 of the paper): a
    plan that would run "for hours" is cut off at ``budget_factor`` times
    the expert's latency and scored at the budget.
    """

    def __init__(
        self,
        db: Database,
        shaping: Shaping = "neg_log",
        baseline: ExpertBaseline | None = None,
        budget_factor: float = 100.0,
        min_budget_ms: float = 100.0,
    ) -> None:
        if budget_factor <= 1:
            raise ValueError("budget_factor must exceed 1")
        self.db = db
        self.shaping: Shaping = shaping
        self.baseline = baseline or ExpertBaseline(db)
        self.budget_factor = budget_factor
        self.min_budget_ms = min_budget_ms

    def budget_for(self, query: Query) -> float:
        return max(
            self.min_budget_ms, self.baseline.latency(query) * self.budget_factor
        )

    def evaluate(self, plan: PhysicalPlan, query: Query) -> PlanOutcome:
        budget = self.budget_for(query)
        result = self.db.execute_plan(plan, query, budget_ms=budget)
        expert = self.baseline.latency(query) if self.shaping == "relative" else None
        reward = shape_metric(result.latency_ms, self.shaping, expert)
        cost = self.db.plan_cost(plan, query).total
        return PlanOutcome(
            reward=reward,
            metric=result.latency_ms,
            cost=cost,
            latency_ms=result.latency_ms,
            timed_out=result.timed_out,
            executed=True,
        )


class ScaledLatencyReward:
    """The §5.2 phase-switch scaling: map latency into cost-model units.

    Implements the paper's formula verbatim::

        r_l = C_min + (l - L_min) / (L_max - L_min) * (C_max - C_min)

    where ``C_min/C_max`` are the observed optimizer-cost range and
    ``L_min/L_max`` the observed latency range at the end of Phase 1.
    The scaled value is then shaped exactly like the Phase-1 cost was,
    so the agent sees a continuous reward scale across the switch.
    """

    def __init__(
        self,
        latency_reward: LatencyReward,
        scaler: "RewardScalerProtocol",
        shaping: Shaping = "neg_log",
        baseline: ExpertBaseline | None = None,
    ) -> None:
        self.latency_reward = latency_reward
        self.scaler = scaler
        self.shaping: Shaping = shaping
        self.baseline = baseline

    def evaluate(self, plan: PhysicalPlan, query: Query) -> PlanOutcome:
        outcome = self.latency_reward.evaluate(plan, query)
        scaled = self.scaler.scale(outcome.latency_ms)
        expert = self.baseline.cost(query) if self.shaping == "relative" else None
        reward = shape_metric(scaled, self.shaping, expert)
        return PlanOutcome(
            reward=reward,
            metric=scaled,
            cost=outcome.cost,
            latency_ms=outcome.latency_ms,
            timed_out=outcome.timed_out,
            executed=True,
        )


class RewardScalerProtocol:  # pragma: no cover - typing aid
    def scale(self, latency_ms: float) -> float: ...
