"""The episode loop with relative-cost tracking (Figure 3a's apparatus).

The trainer runs episodes against any planning environment, batches
them for the agent's policy update, and records — per episode — the
produced plan's cost (and latency when the reward executed it) both
absolutely and relative to the expert planner, which is precisely the
y-axis of Figure 3a ("Plan Cost relative to PostgreSQL").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.reporting import bucket_means, convergence_episode, moving_average
from repro.core.rewards import ExpertBaseline, PlanOutcome
from repro.db.query import Query
from repro.rl.env import Trajectory, Transition, rollout
from repro.rl.vector_env import VectorRolloutEngine

__all__ = ["TrainingConfig", "EpisodeRecord", "TrainingLog", "Trainer"]


@dataclass(frozen=True)
class TrainingConfig:
    """Episode budget and batching for the training loop."""

    episodes: int = 1000
    batch_size: int = 8
    max_steps_per_episode: int = 200
    #: Collect episodes in lockstep batches of ``batch_size`` with one
    #: stacked forward pass per step (the update cadence is unchanged:
    #: both paths update on every ``batch_size`` complete episodes).
    #: Falls back to sequential collection automatically when the env
    #: cannot be cloned (``spawn``) or the agent has no batched policy.
    vectorized: bool = True


@dataclass(frozen=True)
class EpisodeRecord:
    """One episode's outcome."""

    episode: int
    query_name: str
    reward: float
    cost: float | None
    expert_cost: float | None
    latency_ms: float | None
    expert_latency_ms: float | None
    timed_out: bool

    @property
    def relative_cost(self) -> float | None:
        if self.cost is None or not self.expert_cost:
            return None
        return self.cost / self.expert_cost

    @property
    def relative_latency(self) -> float | None:
        if self.latency_ms is None or not self.expert_latency_ms:
            return None
        return self.latency_ms / self.expert_latency_ms


@dataclass
class TrainingLog:
    """Accumulated episode records with Figure-3a style accessors."""

    records: List[EpisodeRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def append(self, record: EpisodeRecord) -> None:
        self.records.append(record)

    # ------------------------------------------------------------------
    def relative_costs(self) -> np.ndarray:
        return np.asarray(
            [r.relative_cost for r in self.records if r.relative_cost is not None]
        )

    def relative_latencies(self) -> np.ndarray:
        return np.asarray(
            [r.relative_latency for r in self.records if r.relative_latency is not None]
        )

    def rewards(self) -> np.ndarray:
        return np.asarray([r.reward for r in self.records])

    def moving_relative_cost(self, window: int = 100) -> np.ndarray:
        return moving_average(self.relative_costs(), window)

    def relative_cost_series(self, bucket_size: int = 100) -> List[Tuple[int, float]]:
        """The Figure 3a series: episode bucket -> mean relative cost."""
        return bucket_means(self.relative_costs(), bucket_size)

    def converged_at(self, threshold: float = 1.2, window: int = 100) -> int | None:
        return convergence_episode(self.relative_costs(), threshold, window)

    def timeout_fraction(self, first_n: int | None = None) -> float:
        records = self.records[:first_n] if first_n else self.records
        if not records:
            return 0.0
        return sum(r.timed_out for r in records) / len(records)

    def tail_mean_relative_cost(self, tail: int = 100) -> float:
        rel = self.relative_costs()
        if len(rel) == 0:
            raise ValueError("no relative costs recorded")
        return float(rel[-tail:].mean())

    def tail_median_relative_cost(self, tail: int = 100) -> float:
        """Median is the robust converged-quality summary: exploration
        episodes produce occasional catastrophic outliers that dominate
        a mean without reflecting the learned policy."""
        rel = self.relative_costs()
        if len(rel) == 0:
            raise ValueError("no relative costs recorded")
        return float(np.median(rel[-tail:]))


class Trainer:
    """Runs episodes, updates the agent, and logs relative metrics."""

    def __init__(
        self,
        env,
        agent,
        baseline: ExpertBaseline,
        rng: np.random.Generator,
        config: TrainingConfig | None = None,
    ) -> None:
        self.env = env
        self.agent = agent
        self.baseline = baseline
        self.rng = rng
        self.config = config or TrainingConfig()
        self._episode_counter = 0

    # ------------------------------------------------------------------
    def _vector_engine(self) -> VectorRolloutEngine | None:
        """A lockstep engine over env clones, or None when unsupported.

        Built fresh per call: ``spawn`` captures the env's *current*
        reward source, and trainers like the §5.2 bootstrap swap it
        between runs.
        """
        if not self.config.vectorized:
            return None
        policy = getattr(self.agent, "policy", None)
        if policy is None or not hasattr(policy, "act_batch"):
            return None
        if not hasattr(self.env, "spawn"):
            return None
        width = max(1, self.config.batch_size)
        envs = [self.env] + [self.env.spawn() for _ in range(width - 1)]
        return VectorRolloutEngine(envs, policy)

    def run(
        self,
        episodes: int | None = None,
        log: TrainingLog | None = None,
        update: bool = True,
    ) -> TrainingLog:
        """Train for ``episodes`` episodes (appending to ``log`` if given)."""
        episodes = episodes or self.config.episodes
        engine = self._vector_engine()
        if engine is None:
            trajectories = (
                rollout(
                    self.env,
                    self.agent.act,
                    self.rng,
                    max_steps=self.config.max_steps_per_episode,
                )
                for _ in range(episodes)
            )
            return self._learn(trajectories, log, update)
        # Lockstep collection: each wave is exactly one update batch,
        # collected under one policy — the same schedule the sequential
        # path follows, minus per-episode forward passes.
        log = log or TrainingLog()
        remaining = episodes
        while remaining > 0:
            wave = min(self.config.batch_size, remaining)
            batch = engine.collect(
                wave,
                self.rng,
                greedy=False,
                max_steps=self.config.max_steps_per_episode,
            )
            for trajectory in batch:
                log.append(self._record(trajectory))
            if update:
                self.agent.update(batch)
            remaining -= wave
        return log

    def replay(
        self,
        trajectories: Sequence[Trajectory],
        log: TrainingLog | None = None,
        update: bool = True,
        events=None,
    ) -> TrainingLog:
        """Learn from trajectories collected elsewhere (the serving
        layer's experience buffer): record each served episode and run
        the same batched policy updates as :meth:`run`. Empty
        trajectories (single-relation queries) are skipped, and so are
        trajectories tagged as degraded serves — the plan the client
        received came off the degradation ladder, not from the policy's
        rollout, so learning from it would reward actions the policy
        never took.

        ``events`` (an :class:`~repro.obs.events.EventLog`, or any object
        with ``emit(kind, **payload)``) records the hands-free retraining
        pass in the serving stack's flight recorder: how many
        trajectories were replayed and whether the policy weights were
        actually updated (the swap an operator wants an audit trail of).
        """
        from repro.serving.experience import is_degraded

        clean = [t for t in trajectories if not is_degraded(t)]
        usable = [t for t in clean if t.transitions]
        result = self._learn(usable, log, update)
        if events is not None:
            events.emit(
                "retraining_replay",
                trajectories=len(usable),
                skipped=len(clean) - len(usable),
                skipped_degraded=len(trajectories) - len(clean),
                weights_updated=bool(update and usable),
                mean_reward=(
                    round(
                        sum(t.total_reward for t in usable) / len(usable), 6
                    )
                    if usable
                    else None
                ),
            )
        return result

    def _learn(
        self, trajectories, log: TrainingLog | None, update: bool
    ) -> TrainingLog:
        """Record every trajectory and update the agent in batches."""
        log = log or TrainingLog()
        batch: List[Trajectory] = []
        for trajectory in trajectories:
            log.append(self._record(trajectory))
            batch.append(trajectory)
            if update and len(batch) >= self.config.batch_size:
                self.agent.update(batch)
                batch = []
        if update and batch:
            self.agent.update(batch)
        return log

    def _record(self, trajectory: Trajectory) -> EpisodeRecord:
        outcome: PlanOutcome = trajectory.info["outcome"]
        query: Query = trajectory.info["query"]
        self._episode_counter += 1
        expert_latency = (
            self.baseline.latency(query) if outcome.latency_ms is not None else None
        )
        return EpisodeRecord(
            episode=self._episode_counter,
            query_name=query.name,
            reward=trajectory.total_reward,
            cost=outcome.cost,
            expert_cost=self.baseline.cost(query),
            latency_ms=outcome.latency_ms,
            expert_latency_ms=expert_latency,
            timed_out=outcome.timed_out,
        )

    # ------------------------------------------------------------------
    def evaluate(
        self, queries: Sequence[Query], greedy: bool = True
    ) -> Dict[str, EpisodeRecord]:
        """Greedy (mode) evaluation on fixed queries, no learning."""
        queries = list(queries)
        engine = self._vector_engine()
        if engine is not None:
            trajectories = engine.collect(
                len(queries),
                self.rng,
                greedy=greedy,
                max_steps=self.config.max_steps_per_episode,
                queries=queries,
            )
            return {
                query.name: self._record(trajectory)
                for query, trajectory in zip(queries, trajectories)
            }
        results: Dict[str, EpisodeRecord] = {}
        for query in queries:
            trajectory = self._rollout_query(query, greedy)
            results[query.name] = self._record(trajectory)
        return results

    def _rollout_query(self, query: Query, greedy: bool) -> Trajectory:
        state, mask = self.env.reset(query)
        trajectory = Trajectory()
        for _ in range(self.config.max_steps_per_episode):
            action, log_prob = self.agent.act(state, mask, self.rng, greedy)
            result = self.env.step(action)
            trajectory.transitions.append(
                Transition(state, mask, action, result.reward, log_prob)
            )
            trajectory.info.update(result.info)
            state, mask = result.state, result.mask
            if result.done:
                return trajectory
        raise RuntimeError("evaluation episode did not terminate")
