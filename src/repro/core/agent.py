"""Agent factory sized for a planning environment."""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.rl.ppo import PPOAgent, PPOConfig
from repro.rl.reinforce import ReinforceAgent, ReinforceConfig

__all__ = ["make_agent"]

Algorithm = Literal["ppo", "reinforce"]


def make_agent(
    env,
    rng: np.random.Generator,
    algorithm: Algorithm = "ppo",
    config: PPOConfig | ReinforceConfig | None = None,
):
    """Build a policy-gradient agent matching ``env``'s dimensions.

    ReJOIN trained with PPO; REINFORCE is the lighter-weight option used
    by some ablations. Both share the act/update interface.
    """
    if algorithm == "ppo":
        if config is not None and not isinstance(config, PPOConfig):
            raise TypeError("ppo needs a PPOConfig")
        return PPOAgent(env.state_dim, env.n_actions, rng, config)
    if algorithm == "reinforce":
        if config is not None and not isinstance(config, ReinforceConfig):
            raise TypeError("reinforce needs a ReinforceConfig")
        return ReinforceAgent(env.state_dim, env.n_actions, rng, config)
    raise ValueError(f"unknown algorithm {algorithm!r}")
