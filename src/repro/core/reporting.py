"""Experiment reporting: series, tables, convergence detection.

These utilities produce the same artifacts the paper's figures show:
windowed relative-cost series (Figure 3a), per-query cost tables
(Figure 3b), and per-relation-count timing tables (Figure 3c).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "moving_average",
    "bucket_means",
    "convergence_episode",
    "geometric_mean",
    "ascii_table",
    "format_series",
]


def moving_average(values: Sequence[float], window: int) -> np.ndarray:
    """Trailing moving average; the first ``window-1`` entries average
    whatever prefix is available."""
    if window <= 0:
        raise ValueError("window must be positive")
    values = np.asarray(values, dtype=np.float64)
    out = np.empty_like(values)
    csum = np.concatenate(([0.0], np.cumsum(values)))
    for i in range(len(values)):
        lo = max(0, i - window + 1)
        out[i] = (csum[i + 1] - csum[lo]) / (i + 1 - lo)
    return out


def bucket_means(
    values: Sequence[float], bucket_size: int
) -> List[Tuple[int, float]]:
    """Mean per fixed-size bucket: [(bucket_end_index, mean), ...].

    This is the Figure 3a x-axis: episode buckets vs windowed metric.
    """
    if bucket_size <= 0:
        raise ValueError("bucket_size must be positive")
    values = np.asarray(values, dtype=np.float64)
    out = []
    for start in range(0, len(values), bucket_size):
        chunk = values[start : start + bucket_size]
        if len(chunk):
            out.append((start + len(chunk), float(chunk.mean())))
    return out


def convergence_episode(
    values: Sequence[float], threshold: float, window: int = 50
) -> int | None:
    """First episode whose trailing ``window``-average drops to
    ``threshold`` or below, or None if it never does."""
    avg = moving_average(values, window)
    below = np.nonzero(avg[window - 1 :] <= threshold)[0]
    if len(below) == 0:
        return None
    return int(below[0] + window - 1)


def geometric_mean(values: Iterable[float]) -> float:
    arr = np.asarray(list(values), dtype=np.float64)
    if len(arr) == 0:
        raise ValueError("geometric mean of empty sequence")
    if (arr <= 0).any():
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """A plain fixed-width table for experiment output."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        line = "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        lines.append(line.rstrip())
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0 or 0.01 <= abs(value) < 1e6:
            return f"{value:.2f}"
        return f"{value:.3g}"
    return str(value)


def format_series(series: List[Tuple[int, float]], label: str = "episodes") -> str:
    """Render a bucketed series as a two-column table."""
    return ascii_table([label, "value"], series)
