"""Checkpointing: persist agents and training logs across sessions.

The paper's optimizer is meant to run *continuously* ("continuously
learning as queries are sent", §3) — a production deployment must
survive restarts. Checkpoints cover:

- policy-gradient agents (policy + value networks, architecture
  metadata) via :func:`save_agent` / :func:`load_agent`,
- LfD agents (Q-network) via the same entry points,
- :class:`~repro.core.trainer.TrainingLog` via JSON
  (:func:`save_log` / :func:`load_log`), so convergence series can be
  re-plotted without re-training.

Optimizer state (Adam moments) is not persisted — resuming training
re-warms it within a few batches, which keeps the format simple and
framework-free.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.lfd import LfDAgent, LfDConfig
from repro.core.trainer import EpisodeRecord, TrainingLog
from repro.nn.network import MLP
from repro.rl.ppo import PPOAgent, PPOConfig
from repro.rl.reinforce import ReinforceAgent, ReinforceConfig

__all__ = ["save_agent", "load_agent", "save_log", "load_log"]

_AGENT_KINDS = {"ppo": PPOAgent, "reinforce": ReinforceAgent, "lfd": LfDAgent}


def _kind_of(agent) -> str:
    if isinstance(agent, PPOAgent):
        return "ppo"
    if isinstance(agent, ReinforceAgent):
        return "reinforce"
    if isinstance(agent, LfDAgent):
        return "lfd"
    raise TypeError(f"cannot checkpoint agent of type {type(agent).__name__}")


def save_agent(agent, directory: str | Path) -> Path:
    """Write an agent checkpoint into ``directory`` (created if needed).

    Returns the directory path. Files: ``meta.json`` plus one ``.npz``
    per network.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    kind = _kind_of(agent)
    if kind == "lfd":
        nets = {"q_net": agent.q_net}
        dims = {"state_dim": agent.q_net.in_features, "n_actions": agent.n_actions}
    else:
        nets = {"policy_net": agent.policy_net, "value_net": agent.value_net}
        dims = {
            "state_dim": agent.policy_net.in_features,
            "n_actions": agent.policy_net.out_features,
        }
    for name, net in nets.items():
        net.save(directory / f"{name}.npz")
    meta = {"kind": kind, **dims}
    (directory / "meta.json").write_text(json.dumps(meta, indent=2))
    return directory


def load_agent(directory: str | Path, rng: np.random.Generator | None = None):
    """Rebuild an agent from :func:`save_agent` output.

    The agent is reconstructed with default configs (checkpoints store
    weights and architecture, not hyperparameters — pass the original
    config if you intend to continue training with identical settings).
    """
    directory = Path(directory)
    meta = json.loads((directory / "meta.json").read_text())
    kind = meta["kind"]
    rng = rng or np.random.default_rng(0)
    if kind == "lfd":
        agent = LfDAgent(meta["state_dim"], meta["n_actions"], rng, LfDConfig())
        agent.q_net = MLP.load(directory / "q_net.npz")
        return agent
    cls = _AGENT_KINDS[kind]
    config = PPOConfig() if kind == "ppo" else ReinforceConfig()
    agent = cls(meta["state_dim"], meta["n_actions"], rng, config)
    agent.policy_net = MLP.load(directory / "policy_net.npz")
    agent.value_net = MLP.load(directory / "value_net.npz")
    agent.policy.net = agent.policy_net
    return agent


def save_log(log: TrainingLog, path: str | Path) -> Path:
    """Serialize a training log to JSON."""
    path = Path(path)
    records = [
        {
            "episode": r.episode,
            "query_name": r.query_name,
            "reward": r.reward,
            "cost": r.cost,
            "expert_cost": r.expert_cost,
            "latency_ms": r.latency_ms,
            "expert_latency_ms": r.expert_latency_ms,
            "timed_out": r.timed_out,
        }
        for r in log.records
    ]
    path.write_text(json.dumps(records))
    return path


def load_log(path: str | Path) -> TrainingLog:
    """Rebuild a training log from :func:`save_log` output."""
    records = json.loads(Path(path).read_text())
    log = TrainingLog()
    for r in records:
        log.append(EpisodeRecord(**r))
    return log
