"""Checkpointing: persist agents and training logs across sessions.

The paper's optimizer is meant to run *continuously* ("continuously
learning as queries are sent", §3) — a production deployment must
survive restarts. Checkpoints cover:

- policy-gradient agents (policy + value networks, architecture
  metadata) via :func:`save_agent` / :func:`load_agent`,
- LfD agents (Q-network) via the same entry points,
- :class:`~repro.core.trainer.TrainingLog` via JSON
  (:func:`save_log` / :func:`load_log`), so convergence series can be
  re-plotted without re-training.

Optimizer state (Adam moments) is not persisted — resuming training
re-warms it within a few batches, which keeps the format simple and
framework-free.

Checkpoints can additionally be **stamped** with the database context
they were trained under (``save_agent(..., db=db)``): the statistics
epoch and a schema fingerprint. Weights are a function of the
statistics that produced their training rewards — restoring a policy
trained before an ANALYZE (or against a different schema) into a
fresher database silently serves stale knowledge, so ``load_agent``
warns (``checkpoint_stale`` event + counter) when the stamp predates
the current epoch or the schema changed. The retraining daemon also
stamps its ``policy_version`` so a restarted service resumes the
promotion lineage instead of restarting it at 1.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from repro.core.lfd import LfDAgent, LfDConfig
from repro.core.trainer import EpisodeRecord, TrainingLog
from repro.nn.network import MLP
from repro.rl.ppo import PPOAgent, PPOConfig
from repro.rl.reinforce import ReinforceAgent, ReinforceConfig

__all__ = [
    "save_agent",
    "load_agent",
    "save_log",
    "load_log",
    "schema_fingerprint",
]

_AGENT_KINDS = {"ppo": PPOAgent, "reinforce": ReinforceAgent, "lfd": LfDAgent}


def _kind_of(agent) -> str:
    if isinstance(agent, PPOAgent):
        return "ppo"
    if isinstance(agent, ReinforceAgent):
        return "reinforce"
    if isinstance(agent, LfDAgent):
        return "lfd"
    raise TypeError(f"cannot checkpoint agent of type {type(agent).__name__}")


def schema_fingerprint(schema) -> str:
    """A stable digest of a :class:`~repro.db.schema.DatabaseSchema`.

    Hashes the sorted table/column names and rendered foreign keys —
    the structural facts training features depend on — so two databases
    with the same shape fingerprint identically regardless of data.
    """
    digest = hashlib.blake2b(digest_size=8)
    for name in sorted(schema.tables):
        table = schema.tables[name]
        digest.update(name.encode("utf-8"))
        for column in table.columns:
            digest.update(b"|")
            digest.update(column.name.encode("utf-8"))
        digest.update(b";")
    for fk in sorted(fk.render() for fk in schema.foreign_keys):
        digest.update(fk.encode("utf-8"))
        digest.update(b";")
    return digest.hexdigest()


def save_agent(
    agent,
    directory: str | Path,
    db=None,
    policy_version: int | None = None,
) -> Path:
    """Write an agent checkpoint into ``directory`` (created if needed).

    Returns the directory path. Files: ``meta.json`` plus one ``.npz``
    per network. With ``db``, the checkpoint is stamped with the
    database's statistics epoch and schema fingerprint so a later
    ``load_agent`` can detect staleness; ``policy_version`` records the
    serving lineage for the retraining daemon's hot-swap history.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    kind = _kind_of(agent)
    if kind == "lfd":
        nets = {"q_net": agent.q_net}
        dims = {"state_dim": agent.q_net.in_features, "n_actions": agent.n_actions}
    else:
        nets = {"policy_net": agent.policy_net, "value_net": agent.value_net}
        dims = {
            "state_dim": agent.policy_net.in_features,
            "n_actions": agent.policy_net.out_features,
        }
    for name, net in nets.items():
        net.save(directory / f"{name}.npz")
    meta = {"kind": kind, **dims}
    if db is not None:
        meta["stats_epoch"] = db.stats_epoch
        meta["schema_fingerprint"] = schema_fingerprint(db.schema)
    if policy_version is not None:
        meta["policy_version"] = policy_version
    (directory / "meta.json").write_text(json.dumps(meta, indent=2))
    return directory


def load_agent(
    directory: str | Path,
    rng: np.random.Generator | None = None,
    db=None,
    events=None,
    registry=None,
):
    """Rebuild an agent from :func:`save_agent` output.

    The agent is reconstructed with default configs (checkpoints store
    weights and architecture, not hyperparameters — pass the original
    config if you intend to continue training with identical settings).
    The raw checkpoint metadata is attached as ``agent.checkpoint_meta``.

    With ``db``, the checkpoint's statistics stamp is audited: weights
    saved before the database's current ANALYZE epoch, under a different
    schema, or with no stamp at all draw a ``checkpoint_stale`` event
    (via ``events.emit``) and bump the
    ``repro_checkpoint_stale_loads_total`` counter (via ``registry``).
    The load still succeeds — stale weights beat no weights — but the
    operator gets an audit trail.
    """
    directory = Path(directory)
    meta = json.loads((directory / "meta.json").read_text())
    kind = meta["kind"]
    if db is not None:
        _audit_staleness(meta, db, events, registry)
    rng = rng or np.random.default_rng(0)
    if kind == "lfd":
        agent = LfDAgent(meta["state_dim"], meta["n_actions"], rng, LfDConfig())
        agent.q_net = MLP.load(directory / "q_net.npz")
        agent.checkpoint_meta = meta
        return agent
    cls = _AGENT_KINDS[kind]
    config = PPOConfig() if kind == "ppo" else ReinforceConfig()
    agent = cls(meta["state_dim"], meta["n_actions"], rng, config)
    agent.policy_net = MLP.load(directory / "policy_net.npz")
    agent.value_net = MLP.load(directory / "value_net.npz")
    agent.policy.net = agent.policy_net
    agent.checkpoint_meta = meta
    return agent


def _audit_staleness(meta: dict, db, events, registry) -> None:
    """Emit the ``checkpoint_stale`` warning when ``meta``'s stamp
    predates ``db``'s current statistics or schema (or is missing)."""
    saved_epoch = meta.get("stats_epoch")
    saved_schema = meta.get("schema_fingerprint")
    current_schema = schema_fingerprint(db.schema)
    if saved_epoch is None or saved_schema is None:
        reason = "unstamped"
    elif saved_schema != current_schema:
        reason = "schema_changed"
    elif saved_epoch < db.stats_epoch:
        reason = "stats_epoch_behind"
    else:
        return
    if events is not None:
        events.emit(
            "checkpoint_stale",
            reason=reason,
            saved_epoch=saved_epoch,
            current_epoch=db.stats_epoch,
            saved_schema=saved_schema,
            current_schema=current_schema,
            policy_version=meta.get("policy_version"),
        )
    if registry is not None:
        registry.counter(
            "repro_checkpoint_stale_loads_total",
            "Checkpoints restored with statistics/schema stamps behind "
            "the live database (or missing entirely).",
        ).inc()


def save_log(log: TrainingLog, path: str | Path) -> Path:
    """Serialize a training log to JSON."""
    path = Path(path)
    records = [
        {
            "episode": r.episode,
            "query_name": r.query_name,
            "reward": r.reward,
            "cost": r.cost,
            "expert_cost": r.expert_cost,
            "latency_ms": r.latency_ms,
            "expert_latency_ms": r.expert_latency_ms,
            "timed_out": r.timed_out,
        }
        for r in log.records
    ]
    path.write_text(json.dumps(records))
    return path


def load_log(path: str | Path) -> TrainingLog:
    """Rebuild a training log from :func:`save_log` output."""
    records = json.loads(Path(path).read_text())
    log = TrainingLog()
    for r in records:
        log.append(EpisodeRecord(**r))
    return log
