"""Cost-model bootstrapping (paper §5.2, Figure 5).

Phase 1 trains with the optimizer's cost model as a heuristic reward —
"training wheels" that let the agent explore catastrophic strategies
without executing them. Once converged, Phase 2 switches to true query
latency. The switch is where the §5.2 complications live:

- **naive switch** — the reward scale jumps from cost-model units to
  milliseconds; the agent perceives a sudden performance change and may
  regress into re-exploration (the ablation mode ``naive``);
- **scaled switch** — the paper's linear formula maps observed latency
  into the cost range seen at the end of Phase 1 (mode ``scaled``)::

      r_l = C_min + (l - L_min) / (L_max - L_min) * (C_max - C_min)

- **transfer learning** — an alternative also sketched in §5.2: keep
  the trunk of the Phase-1 network, re-initialize the head, and train
  the new network directly on latency (mode ``transfer``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Sequence, Tuple

import numpy as np

from repro.core.agent import make_agent
from repro.core.envs.join_order import JoinOrderEnv
from repro.core.rewards import (
    CostModelReward,
    ExpertBaseline,
    LatencyReward,
    ScaledLatencyReward,
)
from repro.core.trainer import Trainer, TrainingConfig, TrainingLog
from repro.db.engine import Database
from repro.rl.ppo import PPOConfig
from repro.workloads.generator import Workload

__all__ = ["RewardScaler", "BootstrapConfig", "BootstrapResult", "BootstrapTrainer"]


class RewardScaler:
    """The §5.2 linear latency→cost mapping, fitted on calibration pairs."""

    def __init__(self) -> None:
        self.c_min: float | None = None
        self.c_max: float | None = None
        self.l_min: float | None = None
        self.l_max: float | None = None

    @property
    def fitted(self) -> bool:
        return self.c_min is not None

    def fit(self, costs: Sequence[float], latencies: Sequence[float]) -> "RewardScaler":
        if len(costs) == 0 or len(latencies) == 0:
            raise ValueError("need at least one calibration pair")
        if len(costs) != len(latencies):
            raise ValueError("costs and latencies must pair up")
        self.c_min, self.c_max = float(np.min(costs)), float(np.max(costs))
        self.l_min, self.l_max = float(np.min(latencies)), float(np.max(latencies))
        return self

    def scale(self, latency_ms: float) -> float:
        """Map a latency into cost-model units (the paper's r_l formula)."""
        if not self.fitted:
            raise RuntimeError("scaler not fitted")
        if self.l_max == self.l_min:
            return self.c_min  # degenerate calibration: constant latency
        frac = (latency_ms - self.l_min) / (self.l_max - self.l_min)
        return self.c_min + frac * (self.c_max - self.c_min)


@dataclass(frozen=True)
class BootstrapConfig:
    """Episode budgets and switch mode for the two-phase procedure."""

    phase1_episodes: int = 600
    phase2_episodes: int = 300
    calibration_episodes: int = 40
    mode: Literal["scaled", "naive", "transfer"] = "scaled"
    batch_size: int = 8
    algorithm: Literal["ppo", "reinforce"] = "ppo"
    #: Advantage normalization hides reward-scale jumps; §5.2 is about
    #: exactly those jumps, so it is off by default here.
    normalize_advantages: bool = False
    latency_budget_factor: float = 100.0


@dataclass
class BootstrapResult:
    """Both phase logs plus the fitted scaler and calibration pairs."""

    phase1_log: TrainingLog
    phase2_log: TrainingLog
    scaler: RewardScaler | None
    calibration_pairs: List[Tuple[float, float]]

    def regression_ratio(self, window: int = 50) -> float:
        """Post-switch quality regression: mean relative cost in the first
        ``window`` Phase-2 episodes over the last ``window`` of Phase 1.
        1.0 means a seamless switch; larger means a dip."""
        before = self.phase1_log.relative_costs()[-window:]
        after = self.phase2_log.relative_costs()[:window]
        if len(before) == 0 or len(after) == 0:
            raise ValueError("not enough episodes to compute regression")
        return float(after.mean() / before.mean())


class BootstrapTrainer:
    """Runs the two-phase §5.2 procedure in one of three switch modes."""

    def __init__(
        self,
        db: Database,
        workload: Workload,
        rng: np.random.Generator,
        config: BootstrapConfig | None = None,
    ) -> None:
        self.db = db
        self.workload = workload
        self.rng = rng
        self.config = config or BootstrapConfig()
        self.baseline = ExpertBaseline(db)
        self.env = JoinOrderEnv(
            db,
            workload,
            reward_source=CostModelReward(db, shaping="neg_log"),
            rng=rng,
        )
        agent_config = PPOConfig(
            normalize_advantages=self.config.normalize_advantages
        )
        self.agent = make_agent(
            self.env, rng, self.config.algorithm,
            agent_config if self.config.algorithm == "ppo" else None,
        )
        self.trainer = Trainer(
            self.env,
            self.agent,
            self.baseline,
            rng,
            TrainingConfig(batch_size=self.config.batch_size),
        )

    # ------------------------------------------------------------------
    def run(self) -> BootstrapResult:
        phase1_log = self.trainer.run(self.config.phase1_episodes)
        scaler, pairs = self._calibrate()
        self._switch_reward(scaler)
        phase2_log = self.trainer.run(self.config.phase2_episodes)
        return BootstrapResult(
            phase1_log=phase1_log,
            phase2_log=phase2_log,
            scaler=scaler if self.config.mode == "scaled" else None,
            calibration_pairs=pairs,
        )

    # ------------------------------------------------------------------
    def _calibrate(self) -> Tuple[RewardScaler, List[Tuple[float, float]]]:
        """End of Phase 1: note cost estimates and latencies (§5.2)."""
        pairs: List[Tuple[float, float]] = []
        for _ in range(self.config.calibration_episodes):
            query = self.workload.sample(self.rng)
            state, mask = self.env.reset(query)
            while True:
                action, _ = self.agent.act(state, mask, self.rng, greedy=True)
                result = self.env.step(action)
                state, mask = result.state, result.mask
                if result.done:
                    break
            plan = result.info["plan"]
            cost = self.db.plan_cost(plan, query).total
            budget = self.baseline.latency(query) * self.config.latency_budget_factor
            executed = self.db.execute_plan(plan, query, budget_ms=max(budget, 100.0))
            pairs.append((cost, executed.latency_ms))
        scaler = RewardScaler().fit(
            [c for c, _ in pairs], [l for _, l in pairs]
        )
        return scaler, pairs

    def _switch_reward(self, scaler: RewardScaler) -> None:
        latency = LatencyReward(
            self.db,
            shaping="neg_log",
            baseline=self.baseline,
            budget_factor=self.config.latency_budget_factor,
        )
        if self.config.mode == "naive":
            self.env.reward_source = latency
        elif self.config.mode == "scaled":
            self.env.reward_source = ScaledLatencyReward(
                latency, scaler, shaping="neg_log"
            )
        elif self.config.mode == "transfer":
            # New network trained on latency; trunk copied from phase 1.
            old_policy = self.agent.policy_net
            fresh = make_agent(
                self.env,
                self.rng,
                self.config.algorithm,
                PPOConfig(normalize_advantages=self.config.normalize_advantages)
                if self.config.algorithm == "ppo"
                else None,
            )
            n_hidden = len(fresh.policy_net.linear_layers()) - 1
            fresh.policy_net.copy_weights_from(
                old_policy, layers=list(range(n_hidden))
            )
            self.agent = fresh
            self.trainer.agent = fresh
            self.env.reward_source = latency
        else:  # pragma: no cover - config is validated by Literal
            raise ValueError(f"unknown mode {self.config.mode!r}")
