"""Learning from demonstration (paper §5.1, Figure 4).

The five-step process of §5.1, implemented directly:

1. A workload ``W`` is optimized by the traditional optimizer; each
   query's decision sequence is recorded as an *episode history*
   ``H_q = [(a_0, s_0), ..., (a_n, s_n)]``.
2. The expert's plans are executed and their latencies ``L_q`` saved.
3. The agent learns a **reward prediction function**: for every
   ``(s_i, a_i)`` in ``H_q`` it is taught to predict that taking ``a_i``
   in ``s_i`` eventually yields latency ``L_q`` (regression on
   log-latency — latencies span orders of magnitude).
4. Fine-tuning: the agent now plans queries itself, picking the action
   whose predicted latency is lowest (with a small exploration
   probability, as the paper's footnote 3 suggests), executing the
   result, and training on its own history and observed latency.
5. If performance slips — the recent average relative latency exceeds
   a threshold — the agent is partially re-trained on the expert's
   demonstrations until it recovers.

Because phase 2 starts from expert-shaped behaviour, the agent should
execute essentially no catastrophic plans — the property the §4
"performance evaluation overhead" challenge makes precious.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.rewards import ExpertBaseline, LatencyReward
from repro.core.trainer import EpisodeRecord, TrainingLog
from repro.db.query import Query
from repro.nn.network import MLP
from repro.rl.env import StepResult

__all__ = ["Demonstration", "DemonstrationSet", "LfDConfig", "LfDAgent", "LfDTrainer"]


@dataclass
class Demonstration:
    """One expert episode history plus the observed latency."""

    query_name: str
    states: np.ndarray  # (steps, state_dim)
    masks: np.ndarray  # (steps, n_actions)
    actions: np.ndarray  # (steps,)
    latency_ms: float
    timed_out: bool = False

    def __len__(self) -> int:
        return len(self.actions)


@dataclass
class DemonstrationSet:
    """A collection of expert demonstrations (steps 1-2 of §5.1)."""

    demonstrations: List[Demonstration] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.demonstrations)

    def __iter__(self):
        return iter(self.demonstrations)

    @classmethod
    def collect(cls, env, queries: Sequence[Query]) -> "DemonstrationSet":
        """Replay the expert's decisions through ``env`` and record
        (state, action) pairs plus the executed plan's latency.

        ``env`` must use a latency-based reward source so the terminal
        outcome carries the executed latency.
        """
        demos = []
        for query in queries:
            actions = env.expert_actions(query)
            states, masks = [], []
            state, mask = env.reset(query)
            result: StepResult | None = None
            for action in actions:
                states.append(state)
                masks.append(mask)
                result = env.step(action)
                state, mask = result.state, result.mask
            if result is None or not result.done:
                raise RuntimeError(
                    f"expert episode for {query.name} did not reach a terminal state"
                )
            outcome = result.info["outcome"]
            if outcome.latency_ms is None:
                raise ValueError(
                    "DemonstrationSet.collect needs a latency-based reward source"
                )
            demos.append(
                Demonstration(
                    query_name=query.name,
                    states=np.asarray(states),
                    masks=np.asarray(masks),
                    actions=np.asarray(actions, dtype=np.int64),
                    latency_ms=outcome.latency_ms,
                    timed_out=outcome.timed_out,
                )
            )
        return cls(demos)

    def flatten(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All (state, action, log-latency target) training triples."""
        states = np.concatenate([d.states for d in self.demonstrations])
        actions = np.concatenate([d.actions for d in self.demonstrations])
        targets = np.concatenate(
            [np.full(len(d), np.log(max(d.latency_ms, 1e-3))) for d in self.demonstrations]
        )
        return states, actions, targets

    def mean_latency(self) -> float:
        return float(np.mean([d.latency_ms for d in self.demonstrations]))


@dataclass(frozen=True)
class LfDConfig:
    """Hyperparameters for imitation, fine-tuning, and slip-retraining."""

    hidden: Tuple[int, ...] = (128, 128)
    lr: float = 1e-3
    imitation_epochs: int = 40
    imitation_batch: int = 64
    #: Weight of the supervised (large-margin-style) term that pushes
    #: the expert's action to be the argmin during imitation. Without
    #: it, Q-values of never-demonstrated actions are arbitrary and the
    #: greedy policy extrapolates into catastrophic plans — the failure
    #: mode Deep Q-learning from Demonstrations (the paper's [11])
    #: addresses with exactly such a term.
    margin_weight: float = 1.0
    #: Exploration probability during fine-tuning (footnote 3).
    epsilon: float = 0.02
    #: Re-train on demos when recent mean relative latency exceeds this.
    slip_threshold: float = 1.5
    slip_window: int = 20
    retrain_epochs: int = 10
    #: Online replay: how many recent episodes to train on per update.
    replay_batch: int = 32
    replay_capacity: int = 2000


class LfDAgent:
    """A reward-prediction agent: Q(s, a) ≈ log latency of the final plan.

    Action selection is argmin over predicted latency among valid
    actions (ε-greedy during fine-tuning). The ``act`` signature matches
    the policy-gradient agents so the same rollout machinery applies.
    """

    def __init__(
        self,
        state_dim: int,
        n_actions: int,
        rng: np.random.Generator,
        config: LfDConfig | None = None,
    ) -> None:
        self.config = config or LfDConfig()
        self.rng = rng
        self.n_actions = n_actions
        self.q_net = MLP(
            state_dim, self.config.hidden, n_actions, rng=rng, lr=self.config.lr
        )
        self.exploring = True

    # ------------------------------------------------------------------
    def predicted_log_latency(self, states: np.ndarray) -> np.ndarray:
        return self.q_net.forward(states)

    def act(
        self,
        state: np.ndarray,
        mask: np.ndarray,
        rng: np.random.Generator | None = None,
        greedy: bool = False,
    ) -> Tuple[int, float]:
        rng = rng or self.rng
        mask = np.asarray(mask, dtype=bool)
        valid = np.nonzero(mask)[0]
        if len(valid) == 0:
            raise ValueError("no valid actions")
        if not greedy and self.exploring and rng.uniform() < self.config.epsilon:
            return int(rng.choice(valid)), 0.0
        q = self.predicted_log_latency(state)[0]
        best = valid[int(np.argmin(q[valid]))]
        return int(best), 0.0

    # ------------------------------------------------------------------
    def train_regression(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        targets: np.ndarray,
        epochs: int,
        batch_size: int,
        margin_weight: float = 0.0,
    ) -> List[float]:
        """Regress Q(s, a) onto log-latency targets for taken actions.

        With ``margin_weight > 0``, adds the supervised term that makes
        the demonstrated action the argmin of Q (used for imitation and
        slip-retraining; online replay uses pure regression, since the
        agent's own actions carry real observed targets).
        """
        n = len(actions)
        losses: List[float] = []
        for _ in range(epochs):
            order = self.rng.permutation(n)
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                loss = self.q_net.train_step(
                    states[idx],
                    lambda out, a=actions[idx], t=targets[idx]: _imitation_loss(
                        out, a, t, margin_weight
                    ),
                )
                losses.append(loss)
        return losses


def _picked_mse(
    out: np.ndarray, actions: np.ndarray, targets: np.ndarray
) -> Tuple[float, np.ndarray]:
    """MSE on the outputs of the taken actions only."""
    n = len(actions)
    picked = out[np.arange(n), actions]
    diff = picked - targets
    loss = float(np.mean(diff**2))
    grad = np.zeros_like(out)
    grad[np.arange(n), actions] = 2.0 * diff / n
    return loss, grad


def _imitation_loss(
    out: np.ndarray,
    actions: np.ndarray,
    targets: np.ndarray,
    margin_weight: float,
) -> Tuple[float, np.ndarray]:
    """Regression on demonstrated actions plus a supervised margin term.

    The margin term is cross-entropy over ``softmax(-Q)`` toward the
    demonstrated action: minimizing it makes the expert's action the
    lowest-Q (best) choice, so argmin-Q action selection starts out
    mimicking the expert instead of extrapolating into unobserved
    actions (cf. DQfD's large-margin supervised loss).
    """
    loss, grad = _picked_mse(out, actions, targets)
    if margin_weight > 0.0:
        from repro.nn.losses import policy_gradient_loss

        ce_loss, ce_grad_logits = policy_gradient_loss(
            -out, actions, np.ones(len(actions))
        )
        loss += margin_weight * ce_loss
        grad = grad - margin_weight * ce_grad_logits  # d(-out)/d(out) = -1
    return loss, grad


class LfDTrainer:
    """Orchestrates the two phases of §5.1 and tracks safety metrics."""

    def __init__(
        self,
        env,
        agent: LfDAgent,
        demos: DemonstrationSet,
        baseline: ExpertBaseline,
        rng: np.random.Generator,
    ) -> None:
        self.env = env
        self.agent = agent
        self.demos = demos
        self.baseline = baseline
        self.rng = rng
        self._episode_counter = 0
        self.retrain_count = 0
        self._replay_states: List[np.ndarray] = []
        self._replay_actions: List[int] = []
        self._replay_targets: List[float] = []

    # ------------------------------------------------------------------
    def imitation_phase(self) -> List[float]:
        """Phase 1: learn to predict the expert's outcomes (steps 1-3)."""
        states, actions, targets = self.demos.flatten()
        return self.agent.train_regression(
            states,
            actions,
            targets,
            epochs=self.agent.config.imitation_epochs,
            batch_size=self.agent.config.imitation_batch,
            margin_weight=self.agent.config.margin_weight,
        )

    # ------------------------------------------------------------------
    def fine_tune(self, episodes: int, log: TrainingLog | None = None) -> TrainingLog:
        """Phase 2: plan, execute, learn from own latencies (steps 4-5)."""
        log = log or TrainingLog()
        recent_relative: List[float] = []
        cfg = self.agent.config
        for _ in range(episodes):
            record = self._episode()
            log.append(record)
            rel = record.relative_latency
            if rel is not None:
                recent_relative.append(rel)
                recent_relative = recent_relative[-cfg.slip_window :]
            self._train_from_replay()
            if (
                len(recent_relative) >= cfg.slip_window
                and float(np.mean(recent_relative)) > cfg.slip_threshold
            ):
                self._retrain_on_demos()
                recent_relative = []
        return log

    def _episode(self) -> EpisodeRecord:
        state, mask = self.env.reset()
        query = self.env.query
        states, actions = [], []
        while True:
            action, _ = self.agent.act(state, mask, self.rng)
            states.append(state)
            actions.append(action)
            result = self.env.step(action)
            state, mask = result.state, result.mask
            if result.done:
                break
        outcome = result.info["outcome"]
        target = float(np.log(max(outcome.latency_ms, 1e-3)))
        for s, a in zip(states, actions):
            self._replay_states.append(s)
            self._replay_actions.append(a)
            self._replay_targets.append(target)
        cap = self.agent.config.replay_capacity
        if len(self._replay_states) > cap:
            self._replay_states = self._replay_states[-cap:]
            self._replay_actions = self._replay_actions[-cap:]
            self._replay_targets = self._replay_targets[-cap:]
        self._episode_counter += 1
        return EpisodeRecord(
            episode=self._episode_counter,
            query_name=query.name,
            reward=outcome.reward,
            cost=outcome.cost,
            expert_cost=self.baseline.cost(query),
            latency_ms=outcome.latency_ms,
            expert_latency_ms=self.baseline.latency(query),
            timed_out=outcome.timed_out,
        )

    def _train_from_replay(self) -> None:
        cfg = self.agent.config
        n = len(self._replay_states)
        if n == 0:
            return
        size = min(cfg.replay_batch, n)
        idx = self.rng.choice(n, size=size, replace=False)
        states = np.asarray([self._replay_states[i] for i in idx])
        actions = np.asarray([self._replay_actions[i] for i in idx], dtype=np.int64)
        targets = np.asarray([self._replay_targets[i] for i in idx])
        self.agent.train_regression(states, actions, targets, epochs=1, batch_size=size)

    def _retrain_on_demos(self) -> None:
        """Step 5: partial re-training on the expert's demonstrations."""
        self.retrain_count += 1
        states, actions, targets = self.demos.flatten()
        self.agent.train_regression(
            states,
            actions,
            targets,
            epochs=self.agent.config.retrain_epochs,
            batch_size=self.agent.config.imitation_batch,
            margin_weight=self.agent.config.margin_weight,
        )
