"""RL environments over the query-planning substrate.

- :class:`~repro.core.envs.join_order.JoinOrderEnv` — ReJOIN's setting
  (§3): actions combine subtree pairs; the traditional optimizer fills
  in the physical details of the finished join order.
- :class:`~repro.core.envs.staged.StagedPlanEnv` — the Figure 8
  pipeline with a configurable set of learned stages (join order, index
  selection, join operators, aggregate operators); the substrate for
  the incremental curricula of §5.3.
- :class:`~repro.core.envs.staged.FullPlanEnv` — all stages at once:
  the naive search-space extension §4 reports failing to beat random.
"""

from repro.core.envs.join_order import JoinOrderEnv
from repro.core.envs.staged import FullPlanEnv, Stage, StagedPlanEnv

__all__ = ["FullPlanEnv", "JoinOrderEnv", "Stage", "StagedPlanEnv"]
