"""The staged planning environment (paper §5.3, Figure 8) and the naive
full-plan environment (§4).

The simplified optimization pipeline has four stages: join ordering,
index (access-path) selection, join-operator selection, and aggregate-
operator selection. :class:`StagedPlanEnv` lets any subset of stages be
*learned*; the traditional optimizer's cost-based choice fills in the
rest. Enabling stages grows the action space and lengthens episodes:

- pair actions (join ordering) — always learned,
- access-path actions — ``seq`` vs ``index`` per relation, decided
  up-front one relation at a time,
- join-operator actions — ``hash`` / ``merge`` / ``nested-loop``,
  decided immediately after each pair combination,
- aggregate actions — ``hash`` vs ``sort``, decided last.

:class:`FullPlanEnv` is the all-stages configuration: the "naive
extension of ReJOIN to cover the entire execution plan search space"
whose failure to beat random choice motivates §5's research directions.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Tuple

import numpy as np

from repro.core.featurize import EpisodeEncoder, QueryFeaturizer, SlotState
from repro.core.rewards import CostModelReward, PlanOutcome
from repro.db.engine import Database
from repro.db.plans import (
    HashAggregate,
    HashJoin,
    IndexScan,
    JoinTree,
    MergeJoin,
    NestedLoopJoin,
    PhysicalPlan,
    SeqScan,
    SortAggregate,
)
from repro.db.query import Query
from repro.optimizer.physical import access_path_candidates, build_physical_plan
from repro.optimizer.planner import Planner
from repro.rl.env import StepResult
from repro.workloads.generator import Workload

__all__ = ["Stage", "StagedPlanEnv", "FullPlanEnv"]


class Stage(enum.Flag):
    """Learned stages of the Figure 8 pipeline."""

    JOIN_ORDER = enum.auto()
    ACCESS_PATH = enum.auto()
    JOIN_OPERATOR = enum.auto()
    AGGREGATE = enum.auto()

    @classmethod
    def all(cls) -> "Stage":
        return cls.JOIN_ORDER | cls.ACCESS_PATH | cls.JOIN_OPERATOR | cls.AGGREGATE

    @classmethod
    def pipeline_order(cls) -> Tuple["Stage", ...]:
        """The order stages appear in the pipeline (Figure 8)."""
        return (cls.JOIN_ORDER, cls.ACCESS_PATH, cls.JOIN_OPERATOR, cls.AGGREGATE)


_JOIN_OPERATOR_CLASSES = (HashJoin, MergeJoin, NestedLoopJoin)
_AGGREGATE_CLASSES = (HashAggregate, SortAggregate)

# Decision phases (what kind of action is pending).
_PHASE_ACCESS = 0
_PHASE_PAIR = 1
_PHASE_JOIN_OP = 2
_PHASE_AGG = 3
_N_PHASES = 4


class StagedPlanEnv:
    """Plan construction with a configurable set of learned stages."""

    def __init__(
        self,
        db: Database,
        workload: Workload,
        stages: Stage = Stage.JOIN_ORDER,
        reward_source=None,
        featurizer: QueryFeaturizer | None = None,
        planner: Planner | None = None,
        rng: np.random.Generator | None = None,
        forbid_cross_products: bool = True,
    ) -> None:
        if not stages & Stage.JOIN_ORDER:
            raise ValueError("JOIN_ORDER is the pipeline's first stage and "
                             "must always be learned in this environment")
        self.db = db
        self.workload = workload
        self.stages = stages
        self.planner = planner or Planner(db)
        self.reward_source = reward_source or CostModelReward(db)
        max_rel = max((q.n_relations for q in workload), default=2)
        self.featurizer = featurizer or QueryFeaturizer(
            db.schema, max_relations=max(max_rel, 2)
        )
        self.rng = rng or np.random.default_rng(0)
        self.forbid_cross_products = forbid_cross_products

        # Action layout: pairs, then one block per enabled stage in
        # pipeline order. Disabled stages get no action ids, so the
        # layer size equals action_count_for(stages) and *growing* the
        # layer when a later stage unlocks keeps earlier ids stable
        # (incremental learning, §5.3.1).
        p = self.featurizer.n_pair_actions
        offset = p
        self._access_base = offset if stages & Stage.ACCESS_PATH else -1
        offset += 2 if stages & Stage.ACCESS_PATH else 0
        self._join_op_base = offset if stages & Stage.JOIN_OPERATOR else -1
        offset += 3 if stages & Stage.JOIN_OPERATOR else 0
        self._agg_base = offset if stages & Stage.AGGREGATE else -1
        offset += 2 if stages & Stage.AGGREGATE else 0
        self._n_actions = offset

        self._reset_episode_state()

    def _reset_episode_state(self) -> None:
        self._state: SlotState | None = None
        self._cards = None
        self._encoder: EpisodeEncoder | None = None
        self._phase = _PHASE_PAIR
        self._pending_access: List[str] = []
        self._pending_join: JoinTree | None = None
        self._access_paths: Dict[str, PhysicalPlan] = {}
        self._join_operators: Dict[frozenset, type] = {}
        self._aggregate_operator: type | None = None

    # ------------------------------------------------------------------
    @property
    def state_dim(self) -> int:
        n_tables = len(self.featurizer.tables)
        return self.featurizer.state_dim + _N_PHASES + 3 * n_tables

    @property
    def n_actions(self) -> int:
        return self._n_actions

    @property
    def query(self) -> Query:
        if self._state is None:
            raise RuntimeError("environment not reset")
        return self._state.query

    def action_count_for(self, stages: Stage) -> int:
        """Action-layer size when only ``stages`` are unlocked (used by
        the action-growth variant of incremental learning)."""
        n = self.featurizer.n_pair_actions
        if stages & Stage.ACCESS_PATH:
            n += 2
        if stages & Stage.JOIN_OPERATOR:
            n += 3
        if stages & Stage.AGGREGATE:
            n += 2
        return n

    # ------------------------------------------------------------------
    def spawn(self) -> "StagedPlanEnv":
        """An independent episode runner over the same components (for
        lockstep vectorized collection). Stage configuration carries
        over, so a spawned ``FullPlanEnv`` behaves identically."""
        return StagedPlanEnv(
            self.db,
            self.workload,
            stages=self.stages,
            reward_source=self.reward_source,
            featurizer=self.featurizer,
            planner=self.planner,
            rng=self.rng,
            forbid_cross_products=self.forbid_cross_products,
        )

    # ------------------------------------------------------------------
    def reset(self, query: Query | None = None) -> Tuple[np.ndarray, np.ndarray]:
        query = query or self.workload.sample(self.rng)
        self._reset_episode_state()
        self._state = SlotState(query, self.featurizer.max_relations)
        self._cards = self.db.cardinalities(query)
        self._encoder = self.featurizer.encoder(self._state, self._cards)
        if self.stages & Stage.ACCESS_PATH:
            self._phase = _PHASE_ACCESS
            self._pending_access = sorted(query.relations)
        else:
            self._phase = _PHASE_PAIR
        return self._observe()

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def _observe(self) -> Tuple[np.ndarray, np.ndarray]:
        base = self._encoder.vector()
        n_tables = len(self.featurizer.tables)
        phase = np.zeros(_N_PHASES)
        phase[self._phase] = 1.0
        pending_rel = np.zeros(n_tables)
        pending_join = np.zeros(2 * n_tables)
        if self._phase == _PHASE_ACCESS and self._pending_access:
            table = self.query.table_of(self._pending_access[0])
            pending_rel[self.featurizer.table_index[table]] = 1.0
        if self._phase == _PHASE_JOIN_OP and self._pending_join is not None:
            pending_join[:n_tables] = self.featurizer.subtree_vector(
                self._pending_join.left, self.query
            )
            pending_join[n_tables:] = self.featurizer.subtree_vector(
                self._pending_join.right, self.query
            )
        state_vec = np.concatenate([base, phase, pending_rel, pending_join])
        return state_vec, self._mask()

    def _mask(self) -> np.ndarray:
        mask = np.zeros(self._n_actions, dtype=bool)
        if self._phase == _PHASE_ACCESS:
            mask[self._access_base] = True  # seq scan always possible
            if self._index_candidates(self._pending_access[0]):
                mask[self._access_base + 1] = True
        elif self._phase == _PHASE_PAIR:
            mask[: self.featurizer.n_pair_actions] = self._encoder.pair_mask(
                self.forbid_cross_products
            )
        elif self._phase == _PHASE_JOIN_OP:
            preds = self.query.joins_between(
                self._pending_join.left.aliases,
                self._pending_join.right.aliases,
            )
            if preds:
                mask[self._join_op_base : self._join_op_base + 3] = True
            else:
                mask[self._join_op_base + 2] = True  # NL only for cross products
        elif self._phase == _PHASE_AGG:
            mask[self._agg_base : self._agg_base + 2] = True
        return mask

    def _index_candidates(self, alias: str) -> List[IndexScan]:
        return [
            c
            for c in access_path_candidates(alias, self.query, self.db)
            if isinstance(c, IndexScan)
        ]

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self, action: int) -> StepResult:
        if self._state is None:
            raise RuntimeError("environment not reset")
        if not self._mask()[action]:
            raise ValueError(f"invalid action {action} in phase {self._phase}")

        if self._phase == _PHASE_ACCESS:
            self._step_access(action)
        elif self._phase == _PHASE_PAIR:
            self._step_pair(action)
        elif self._phase == _PHASE_JOIN_OP:
            self._step_join_op(action)
        elif self._phase == _PHASE_AGG:
            self._aggregate_operator = _AGGREGATE_CLASSES[action - self._agg_base]
            return self._finish()

        if self._episode_complete():
            return self._finish()
        state_vec, mask = self._observe()
        return StepResult(state_vec, mask, 0.0, False)

    def _step_access(self, action: int) -> None:
        alias = self._pending_access.pop(0)
        choice = action - self._access_base
        if choice == 0:
            table = self.query.table_of(alias)
            preds = tuple(self.query.selections_for(alias))
            self._access_paths[alias] = SeqScan(alias, table, preds)
        else:
            candidates = self._index_candidates(alias)
            cost_model = self.db.cost_model()
            self._access_paths[alias] = min(
                candidates, key=lambda c: cost_model.cost(c, self._cards).total
            )
        if not self._pending_access:
            self._phase = _PHASE_PAIR

    def _step_pair(self, action: int) -> None:
        i, j = self.featurizer.decode_pair(action)
        merged = self._encoder.join(i, j)
        if self.stages & Stage.JOIN_OPERATOR:
            self._pending_join = merged
            self._phase = _PHASE_JOIN_OP

    def _step_join_op(self, action: int) -> None:
        cls = _JOIN_OPERATOR_CLASSES[action - self._join_op_base]
        self._join_operators[self._pending_join.aliases] = cls
        self._pending_join = None
        self._phase = _PHASE_PAIR

    def _aggregate_decision_pending(self) -> bool:
        return bool(
            self.stages & Stage.AGGREGATE
            and (self.query.aggregates or self.query.group_by)
            and self._aggregate_operator is None
        )

    def _episode_complete(self) -> bool:
        if self._phase != _PHASE_PAIR or not self._state.done:
            return False
        if self._aggregate_decision_pending():
            self._phase = _PHASE_AGG
            return False
        return True

    def _finish(self) -> StepResult:
        tree = self._state.tree()
        plan = build_physical_plan(
            tree,
            self.query,
            self.db,
            access_paths=self._access_paths if self.stages & Stage.ACCESS_PATH else None,
            join_operators=(
                self._join_operators if self.stages & Stage.JOIN_OPERATOR else None
            ),
            aggregate_operator=self._aggregate_operator,
        )
        outcome: PlanOutcome = self.reward_source.evaluate(plan, self.query)
        state_vec, _ = self._observe()
        mask = np.zeros(self._n_actions, dtype=bool)
        mask[0] = True
        return StepResult(
            state_vec,
            mask,
            outcome.reward,
            True,
            info={
                "outcome": outcome,
                "tree": tree,
                "plan": plan,
                "query": self.query,
            },
        )

    # ------------------------------------------------------------------
    # Expert demonstrations (§5.1)
    # ------------------------------------------------------------------
    def expert_actions(self, query: Query) -> List[int]:
        """Replay the expert plan as an action sequence for this env."""
        result = self.planner.optimize(query)
        op_by_aliases: Dict[frozenset, type] = {}
        scan_kind: Dict[str, int] = {}
        agg_choice: int | None = None
        for node in result.plan.iter_nodes():
            if isinstance(node, _JOIN_OPERATOR_CLASSES):
                op_by_aliases[node.aliases] = type(node)
            elif isinstance(node, IndexScan):
                scan_kind[node.alias] = 1
            elif isinstance(node, SeqScan):
                scan_kind[node.alias] = 0
            elif isinstance(node, _AGGREGATE_CLASSES):
                agg_choice = _AGGREGATE_CLASSES.index(type(node))

        actions: List[int] = []
        if self.stages & Stage.ACCESS_PATH:
            for alias in sorted(query.relations):
                choice = scan_kind.get(alias, 0)
                if choice == 1 and not self._has_index_candidates(alias, query):
                    choice = 0
                actions.append(self._access_base + choice)
        actions.extend(self.featurizer.actions_for_tree(result.join_tree, query))
        if self.stages & Stage.JOIN_OPERATOR:
            # interleave operator actions by replaying the tree
            actions = self._interleave_operators(
                actions, result.join_tree, query, op_by_aliases
            )
        if (
            self.stages & Stage.AGGREGATE
            and (query.aggregates or query.group_by)
            and agg_choice is not None
        ):
            actions.append(self._agg_base + agg_choice)
        return actions

    def _has_index_candidates(self, alias: str, query: Query) -> bool:
        return any(
            isinstance(c, IndexScan)
            for c in access_path_candidates(alias, query, self.db)
        )

    def _interleave_operators(
        self,
        actions: List[int],
        tree: JoinTree,
        query: Query,
        op_by_aliases: Dict[frozenset, type],
    ) -> List[int]:
        """Insert a join-operator action after each pair action."""
        out: List[int] = []
        joins = list(tree.iter_joins())
        join_idx = 0
        for action in actions:
            out.append(action)
            if action < self.featurizer.n_pair_actions:
                node = joins[join_idx]
                join_idx += 1
                cls = op_by_aliases.get(node.aliases, HashJoin)
                out.append(self._join_op_base + _JOIN_OPERATOR_CLASSES.index(cls))
        return out


class FullPlanEnv(StagedPlanEnv):
    """All four stages learned at once — the §4 naive extension."""

    def __init__(self, db, workload, **kwargs):
        kwargs.pop("stages", None)
        super().__init__(db, workload, stages=Stage.all(), **kwargs)
