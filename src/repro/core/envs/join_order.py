"""The ReJOIN environment: join-order enumeration as an MDP (paper §3).

Each query is an episode. The initial state is the forest of single
relations; each action joins two subtrees; the episode ends when one
tree remains. Non-terminal rewards are zero; the terminal reward scores
the completed plan — by default through the optimizer's cost model,
exactly as ReJOIN did ("the reward for an action arriving at a terminal
state is the reciprocal of the cost of the join tree", with shaping
options documented in :mod:`repro.core.rewards`).

The finished join *order* is handed to the traditional optimizer for
operator and index selection, mirroring Figure 1's loop.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.featurize import EpisodeEncoder, QueryFeaturizer, SlotState
from repro.core.rewards import CostModelReward, PlanOutcome
from repro.db.engine import Database
from repro.db.query import Query
from repro.optimizer.memo import SubPlanCostMemo
from repro.optimizer.planner import Planner
from repro.rl.env import StepResult
from repro.workloads.generator import Workload

__all__ = ["JoinOrderEnv"]


class JoinOrderEnv:
    """Episode = one query; action = ordered subtree pair to join."""

    def __init__(
        self,
        db: Database,
        workload: Workload,
        reward_source=None,
        featurizer: QueryFeaturizer | None = None,
        planner: Planner | None = None,
        rng: np.random.Generator | None = None,
        forbid_cross_products: bool = True,
    ) -> None:
        self.db = db
        self.workload = workload
        # The default planner carries a sub-plan cost memo so repeated
        # join trees across episodes are completed and costed once.
        self.planner = planner or Planner(db, cost_memo=SubPlanCostMemo())
        self.reward_source = reward_source or CostModelReward(db)
        max_rel = max((q.n_relations for q in workload), default=2)
        self.featurizer = featurizer or QueryFeaturizer(
            db.schema, max_relations=max(max_rel, 2)
        )
        self.rng = rng or np.random.default_rng(0)
        self.forbid_cross_products = forbid_cross_products
        self._state: SlotState | None = None
        self._cards = None
        self._encoder: EpisodeEncoder | None = None

    # ------------------------------------------------------------------
    @property
    def state_dim(self) -> int:
        return self.featurizer.state_dim

    @property
    def n_actions(self) -> int:
        return self.featurizer.n_pair_actions

    @property
    def query(self) -> Query:
        if self._state is None:
            raise RuntimeError("environment not reset")
        return self._state.query

    # ------------------------------------------------------------------
    def spawn(self) -> "JoinOrderEnv":
        """An independent episode runner sharing every heavy component
        (database, workload, planner with its cost memo, reward source,
        featurizer, rng stream) — what the vectorized trainer steps in
        lockstep."""
        return JoinOrderEnv(
            self.db,
            self.workload,
            reward_source=self.reward_source,
            featurizer=self.featurizer,
            planner=self.planner,
            rng=self.rng,
            forbid_cross_products=self.forbid_cross_products,
        )

    # ------------------------------------------------------------------
    def reset(self, query: Query | None = None) -> Tuple[np.ndarray, np.ndarray]:
        query = query or self.workload.sample(self.rng)
        self._state = SlotState(query, self.featurizer.max_relations)
        self._cards = self.db.cardinalities(query)
        self._encoder = self.featurizer.encoder(self._state, self._cards)
        return self._observe()

    def _observe(self) -> Tuple[np.ndarray, np.ndarray]:
        return (
            self._encoder.vector(),
            self._encoder.pair_mask(self.forbid_cross_products),
        )

    def step(self, action: int) -> StepResult:
        if self._state is None:
            raise RuntimeError("environment not reset")
        i, j = self.featurizer.decode_pair(action)
        self._encoder.join(i, j)
        if not self._state.done:
            state_vec, mask = self._observe()
            return StepResult(state_vec, mask, 0.0, False)

        tree = self._state.tree()
        evaluate_tree = getattr(self.reward_source, "evaluate_tree", None)
        if evaluate_tree is not None:
            # Cost-model rewards route through the planner's (memoized)
            # tree costing; repeated trees are answered from the memo.
            outcome, plan = evaluate_tree(tree, self.query, self.planner, self._cards)
        else:
            plan = self.planner.complete_plan(tree, self.query, cards=self._cards)
            outcome: PlanOutcome = self.reward_source.evaluate(plan, self.query)
        state_vec = self._encoder.vector()
        # Terminal mask: no valid actions remain; keep one bit set so
        # downstream batch code never sees an all-invalid row.
        mask = np.zeros(self.n_actions, dtype=bool)
        mask[0] = True
        return StepResult(
            state_vec,
            mask,
            outcome.reward,
            True,
            info={
                "outcome": outcome,
                "tree": tree,
                "plan": plan,
                "query": self.query,
            },
        )

    # ------------------------------------------------------------------
    def expert_actions(self, query: Query) -> list:
        """The expert planner's join order as an action sequence (§5.1)."""
        tree = self.planner.choose_join_order(query)
        return self.featurizer.actions_for_tree(tree, query)
