"""ReJOIN state vectorization (paper §3, "State and Actions").

A state during bottom-up join ordering is the current forest of
subtrees plus the query's join and selection predicates. Following the
ReJOIN design:

- **tree vectors** — each subtree occupies one row of a fixed-size
  matrix; the entry for a relation contained in the subtree is
  ``1 / (depth + 1)`` where depth is measured from the subtree root
  (a monotone depth encoding, deeper ⇒ smaller);
- **join-graph features** — a binary upper-triangular table×table
  matrix marking which base-table pairs the query joins;
- **predicate features** — a binary flag per schema column that carries
  a selection predicate, plus a per-table estimated selectivity.

Aliases map to their base table's slot (JOB-style self-joins share a
slot; collisions add, which keeps the encoding well-defined — a
documented simplification of the original per-alias encoding).

Subtrees live in *slots*: initially alias ``k`` (sorted order) occupies
slot ``k``; the action ``(i, j)`` joins slot ``i`` (left) with slot
``j`` and stores the result in ``min(i, j)``. Pair actions are encoded
as a fixed enumeration of ordered slot pairs, so the action layer has a
constant size and invalid pairs are masked.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.db.cardinality import QueryCardinalities
from repro.db.plans import JoinTree
from repro.db.query import Query
from repro.db.schema import DatabaseSchema

__all__ = ["EpisodeEncoder", "QueryFeaturizer", "SlotState"]


class SlotState:
    """The mutable forest-of-subtrees state of one episode.

    Alongside the subtree forest it maintains, per occupied slot, an
    alias bitmask and the union of the join-graph adjacency over the
    slot's members (both from the query's cached
    :meth:`~repro.db.query.Query.join_graph_index`), so
    :meth:`connected` is two integer ANDs instead of a predicate-list
    scan per call.
    """

    def __init__(self, query: Query, max_relations: int) -> None:
        aliases = sorted(query.relations)
        if len(aliases) > max_relations:
            raise ValueError(
                f"query {query.name} has {len(aliases)} relations; featurizer "
                f"supports at most {max_relations}"
            )
        self.query = query
        self.slots: List[JoinTree | None] = [JoinTree.leaf(a) for a in aliases]
        self.slots += [None] * (max_relations - len(aliases))
        jg = query.join_graph_index()
        pad = max_relations - len(aliases)
        # Sorted aliases occupy slots in order, so slot k's mask is bit k.
        self._masks: List[int] = [1 << jg.index[a] for a in aliases] + [0] * pad
        self._nbrs: List[int] = [jg.adjacency[jg.index[a]] for a in aliases] + [0] * pad

    @property
    def occupied(self) -> List[int]:
        return [i for i, t in enumerate(self.slots) if t is not None]

    @property
    def n_subtrees(self) -> int:
        return len(self.occupied)

    @property
    def done(self) -> bool:
        return self.n_subtrees == 1

    def tree(self) -> JoinTree:
        if not self.done:
            raise RuntimeError("episode not finished: multiple subtrees remain")
        return self.slots[self.occupied[0]]

    def join(self, i: int, j: int) -> JoinTree:
        """Join slot i (left) with slot j (right); result goes to min(i, j)."""
        if i == j:
            raise ValueError("cannot join a slot with itself")
        left, right = self.slots[i], self.slots[j]
        if left is None or right is None:
            raise ValueError(f"slot {i if left is None else j} is empty")
        merged = JoinTree.join(left, right)
        lo, hi = min(i, j), max(i, j)
        self.slots[lo] = merged
        self.slots[hi] = None
        self._masks[lo] |= self._masks[hi]
        self._masks[hi] = 0
        self._nbrs[lo] |= self._nbrs[hi]
        self._nbrs[hi] = 0
        return merged

    def connected(self, i: int, j: int) -> bool:
        """True if a join predicate links the two slots' subtrees."""
        if self.slots[i] is None or self.slots[j] is None:
            return False
        return bool(self._nbrs[i] & self._masks[j])


class QueryFeaturizer:
    """Vectorizes (query, forest) states and enumerates pair actions.

    ``include_cardinality=False`` drops the per-subtree log-cardinality
    feature, reverting to the original ReJOIN encoding (structure +
    predicates only) — kept as an ablation switch.
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        max_relations: int = 18,
        include_cardinality: bool = True,
    ) -> None:
        if max_relations < 2:
            raise ValueError("max_relations must be at least 2")
        self.schema = schema
        self.max_relations = max_relations
        self.include_cardinality = include_cardinality
        self.tables: List[str] = schema.table_names
        self.table_index: Dict[str, int] = {t: i for i, t in enumerate(self.tables)}
        self.columns: List[Tuple[str, str]] = [
            (t, c.name) for t, c in schema.all_columns()
        ]
        self.column_index: Dict[Tuple[str, str], int] = {
            tc: i for i, tc in enumerate(self.columns)
        }
        n = len(self.tables)
        self._n_tables = n
        # Each tree row carries the relation-depth encoding plus one
        # normalized log-cardinality feature (the estimated size of the
        # subtree's intermediate result — the key join-ordering signal).
        self._tree_size = max_relations * (n + 1)
        self._graph_size = n * (n - 1) // 2
        self._pred_size = len(self.columns)
        self._sel_size = n
        # Ordered slot pairs (i, j), i != j, in deterministic order.
        self.pair_actions: List[Tuple[int, int]] = [
            (i, j)
            for i in range(max_relations)
            for j in range(max_relations)
            if i != j
        ]
        self.pair_index: Dict[Tuple[int, int], int] = {
            p: k for k, p in enumerate(self.pair_actions)
        }
        # (i, j) -> action id as an array, for vectorized mask assembly.
        self._pair_index_matrix = np.full(
            (max_relations, max_relations), -1, dtype=np.int64
        )
        for k, (i, j) in enumerate(self.pair_actions):
            self._pair_index_matrix[i, j] = k

    # ------------------------------------------------------------------
    @property
    def state_dim(self) -> int:
        return self._tree_size + self._graph_size + self._pred_size + self._sel_size

    @property
    def n_pair_actions(self) -> int:
        return len(self.pair_actions)

    # ------------------------------------------------------------------
    def subtree_vector(self, tree: JoinTree, query: Query) -> np.ndarray:
        """One row of the tree matrix: 1/(depth+1) per contained relation."""
        row = np.zeros(self._n_tables)
        for alias, depth in tree.leaf_depths().items():
            table = query.table_of(alias)
            row[self.table_index[table]] += 1.0 / (depth + 1.0)
        return row

    def _join_graph_features(self, query: Query) -> np.ndarray:
        flags = np.zeros(self._graph_size)
        for pred in query.joins:
            ta = self.table_index[query.table_of(pred.left.alias)]
            tb = self.table_index[query.table_of(pred.right.alias)]
            if ta == tb:
                continue  # self-join on one base table: no off-diagonal slot
            lo, hi = min(ta, tb), max(ta, tb)
            # index of (lo, hi) in the upper triangle
            idx = lo * (2 * self._n_tables - lo - 1) // 2 + (hi - lo - 1)
            flags[idx] = 1.0
        return flags

    def _predicate_features(
        self, query: Query, cards: QueryCardinalities | None
    ) -> Tuple[np.ndarray, np.ndarray]:
        flags = np.zeros(self._pred_size)
        sels = np.ones(self._sel_size)
        for pred in query.selections:
            table = query.table_of(pred.column.alias)
            key = (table, pred.column.column)
            if key in self.column_index:
                flags[self.column_index[key]] = 1.0
        if cards is not None:
            for alias in query.relations:
                info = cards.scan_info(alias)
                idx = self.table_index[query.table_of(alias)]
                sels[idx] = min(sels[idx], info.selectivity)
        return flags, sels

    def featurize(
        self, state: SlotState, cards: QueryCardinalities | None = None
    ) -> np.ndarray:
        """The full state vector for the network."""
        query = state.query
        tree = np.zeros((self.max_relations, self._n_tables + 1))
        for slot, subtree in enumerate(state.slots):
            if subtree is not None:
                tree[slot, : self._n_tables] = self.subtree_vector(subtree, query)
                if cards is not None and self.include_cardinality:
                    rows = cards.rows_for_aliases(subtree.aliases)
                    tree[slot, self._n_tables] = np.log10(max(rows, 1.0)) / 10.0
        flags, sels = self._predicate_features(query, cards)
        return np.concatenate(
            [tree.ravel(), self._join_graph_features(query), flags, sels]
        )

    # ------------------------------------------------------------------
    def pair_mask(self, state: SlotState, forbid_cross_products: bool = True) -> np.ndarray:
        """Validity mask over pair actions for the current forest.

        With ``forbid_cross_products``, only predicate-connected pairs are
        valid whenever at least one such pair exists (cross products stay
        available as a last resort for disconnected join graphs).
        """
        occupied = state.occupied
        mask = np.zeros(self.n_pair_actions, dtype=bool)
        connected_any = False
        entries: List[Tuple[int, bool]] = []
        for i in occupied:
            for j in occupied:
                if i == j:
                    continue
                connected = state.connected(i, j)
                connected_any = connected_any or connected
                entries.append((self.pair_index[(i, j)], connected))
        for idx, connected in entries:
            mask[idx] = connected or not forbid_cross_products
        if forbid_cross_products and not connected_any:
            for idx, _ in entries:
                mask[idx] = True
        return mask

    def decode_pair(self, action: int) -> Tuple[int, int]:
        return self.pair_actions[action]

    def encoder(
        self, state: SlotState, cards: QueryCardinalities | None = None
    ) -> "EpisodeEncoder":
        """A stateful incremental encoder for one episode over ``state``."""
        return EpisodeEncoder(self, state, cards)

    def actions_for_tree(self, tree: JoinTree, query: Query) -> List[int]:
        """The pair-action sequence that reproduces ``tree`` from scratch.

        Used to replay an expert's join order inside the environment
        (learning from demonstration, §5.1).
        """
        state = SlotState(query, self.max_relations)
        slot_of: Dict[frozenset, int] = {
            state.slots[i].aliases: i for i in state.occupied
        }
        actions: List[int] = []
        for join in tree.iter_joins():
            i = slot_of[join.left.aliases]
            j = slot_of[join.right.aliases]
            actions.append(self.pair_index[(i, j)])
            state.join(i, j)
            slot_of[join.aliases] = min(i, j)
        return actions


class EpisodeEncoder:
    """Stateful per-episode featurization — the incremental fast path.

    :meth:`QueryFeaturizer.featurize` rebuilds the whole state vector
    (static query blocks included) on every call, and
    :meth:`QueryFeaturizer.pair_mask` re-derives slot connectivity from
    the join predicates on every call. During an episode only the two
    slot rows touched by a join action actually change, so this encoder:

    - caches the static blocks (join graph, predicate flags,
      selectivities) once at construction;
    - maintains the tree matrix in place, refreshing only the merged
      slot's row and zeroing the freed slot's row on :meth:`join`;
    - maintains a slot-connectivity matrix incrementally — merging two
      slots ORs their connectivity rows, since a predicate links the
      merged forest exactly when it linked either part.

    :meth:`vector` and :meth:`pair_mask` are bitwise-identical to the
    stateless methods (the parity tests assert this); route all joins
    through :meth:`join` so the caches stay consistent.
    """

    def __init__(
        self,
        featurizer: QueryFeaturizer,
        state: SlotState,
        cards: QueryCardinalities | None = None,
    ) -> None:
        f = featurizer
        self.featurizer = f
        self.state = state
        self.cards = cards
        query = state.query
        flags, sels = f._predicate_features(query, cards)
        self._static = np.concatenate([f._join_graph_features(query), flags, sels])
        self._tree = np.zeros((f.max_relations, f._n_tables + 1))
        for slot in state.occupied:
            self._refresh_row(slot)
        self._conn = np.zeros((f.max_relations, f.max_relations), dtype=bool)
        occupied = state.occupied
        if all(state.slots[i].is_leaf for i in occupied):
            slot_of = {state.slots[i].alias: i for i in occupied}
            for pred in query.joins:
                i, j = slot_of[pred.left.alias], slot_of[pred.right.alias]
                if i != j:
                    self._conn[i, j] = self._conn[j, i] = True
        else:  # adopted mid-episode: derive connectivity from scratch
            for i in occupied:
                for j in occupied:
                    if i < j and state.connected(i, j):
                        self._conn[i, j] = self._conn[j, i] = True

    def _refresh_row(self, slot: int) -> None:
        f = self.featurizer
        subtree = self.state.slots[slot]
        row = self._tree[slot]
        row[:] = 0.0
        row[: f._n_tables] = f.subtree_vector(subtree, self.state.query)
        if self.cards is not None and f.include_cardinality:
            rows = self.cards.rows_for_aliases(subtree.aliases)
            row[f._n_tables] = np.log10(max(rows, 1.0)) / 10.0

    def join(self, i: int, j: int) -> JoinTree:
        """Apply the pair action and update every cached block it touches."""
        merged = self.state.join(i, j)
        lo, hi = min(i, j), max(i, j)
        self._conn[lo] |= self._conn[hi]
        self._conn[:, lo] |= self._conn[:, hi]
        self._conn[hi, :] = False
        self._conn[:, hi] = False
        self._conn[lo, lo] = False
        self._refresh_row(lo)
        self._tree[hi] = 0.0
        return merged

    def vector(self) -> np.ndarray:
        """The full state vector (a fresh array, safe to store)."""
        out = np.empty(self._tree.size + self._static.size)
        self.vector_into(out)
        return out

    def vector_into(self, out: np.ndarray) -> None:
        """Write the state vector into a caller-owned row.

        The micro-batch engines stack many states per forward pass;
        writing straight into the batch matrix skips the per-state
        concatenate-then-stack double copy of :meth:`vector`.
        """
        split = self._tree.size
        out[:split] = self._tree.ravel()
        out[split:] = self._static

    def pair_mask(self, forbid_cross_products: bool = True) -> np.ndarray:
        """Validity mask over pair actions, from the cached connectivity."""
        mask = np.zeros(self.featurizer.n_pair_actions, dtype=bool)
        self.pair_mask_into(mask, forbid_cross_products)
        return mask

    def pair_mask_into(
        self, out: np.ndarray, forbid_cross_products: bool = True
    ) -> None:
        """Write the pair-action mask into a caller-owned boolean row
        (assumed zeroed or reused — it is fully overwritten)."""
        f = self.featurizer
        out[:] = False
        occupied = np.asarray(self.state.occupied, dtype=np.int64)
        if len(occupied) < 2:
            return
        rows, cols = occupied[:, None], occupied[None, :]
        connected = self._conn[rows, cols]
        if forbid_cross_products and connected.any():
            allowed = connected
        else:
            allowed = np.ones_like(connected)
        np.fill_diagonal(allowed, False)
        out[f._pair_index_matrix[rows, cols][allowed]] = True
