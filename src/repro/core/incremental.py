"""Incremental learning curricula (paper §5.3, Figures 6-9).

Query optimization's difficulty grows along two axes — the number of
relations and the number of pipeline stages (Figure 6). A *curriculum*
is a sequence of phases, each restricting both axes; training proceeds
phase by phase, reusing the same agent. The three decompositions of
Figure 7:

- **pipeline** (§5.3.1) — all relations, stages unlocked one at a time
  (join order → index selection → join operators → aggregates); the
  traditional optimizer completes whatever is not yet learned;
- **relations** (§5.3.2) — all stages, queries growing from one
  relation upward (low-relation queries are synthesized, since "real
  workloads contain very few queries over a single relation");
- **hybrid** (§5.3.3) — stages and relation counts grow together,
  giving the smallest per-phase complexity jump.

When a phase unlocks new stages, the agent's action layer can either be
pre-allocated (masking keeps locked stages invisible) or *grown* with
:meth:`repro.nn.network.MLP.grow_outputs` — the paper's "the action
space can be extended"; both variants are supported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Sequence, Tuple

import numpy as np

from repro.core.envs.staged import Stage, StagedPlanEnv
from repro.core.rewards import CostModelReward, ExpertBaseline
from repro.core.trainer import Trainer, TrainingConfig, TrainingLog
from repro.db.engine import Database
from repro.rl.reinforce import ReinforceAgent, ReinforceConfig
from repro.workloads.generator import RandomQueryGenerator, Workload

__all__ = [
    "CurriculumPhase",
    "pipeline_curriculum",
    "relations_curriculum",
    "hybrid_curriculum",
    "flat_curriculum",
    "IncrementalTrainer",
    "PhaseResult",
]


@dataclass(frozen=True)
class CurriculumPhase:
    """One training phase: which stages, how many relations, how long."""

    name: str
    stages: Stage
    max_relations: int
    episodes: int

    def __post_init__(self) -> None:
        if self.max_relations < 1:
            raise ValueError("max_relations must be at least 1")
        if self.episodes < 1:
            raise ValueError("episodes must be at least 1")
        if not self.stages & Stage.JOIN_ORDER:
            raise ValueError("every phase must include JOIN_ORDER")


def _stage_prefix(k: int) -> Stage:
    """The first ``k`` stages of the Figure 8 pipeline."""
    order = Stage.pipeline_order()
    stages = order[0]
    for stage in order[1:k]:
        stages |= stage
    return stages


def pipeline_curriculum(
    episodes_per_phase: int, max_relations: int = 8
) -> List[CurriculumPhase]:
    """§5.3.1: unlock one pipeline stage per phase, all relation counts."""
    return [
        CurriculumPhase(
            name=f"pipeline-{k}",
            stages=_stage_prefix(k),
            max_relations=max_relations,
            episodes=episodes_per_phase,
        )
        for k in range(1, 5)
    ]


def relations_curriculum(
    episodes_per_phase: int, relation_steps: Sequence[int] = (2, 3, 4, 6, 8)
) -> List[CurriculumPhase]:
    """§5.3.2: full pipeline from the start, relation count growing."""
    if list(relation_steps) != sorted(relation_steps):
        raise ValueError("relation_steps must be increasing")
    return [
        CurriculumPhase(
            name=f"relations-{n}",
            stages=Stage.all(),
            max_relations=n,
            episodes=episodes_per_phase,
        )
        for n in relation_steps
    ]


def hybrid_curriculum(
    episodes_per_phase: int, final_relations: int = 8
) -> List[CurriculumPhase]:
    """§5.3.3: stages and relations grow together, then relations keep
    growing — the smallest complexity increase per phase."""
    phases = [
        CurriculumPhase("hybrid-1", _stage_prefix(1), 2, episodes_per_phase),
        CurriculumPhase("hybrid-2", _stage_prefix(2), 3, episodes_per_phase),
        CurriculumPhase("hybrid-3", _stage_prefix(3), 4, episodes_per_phase),
        CurriculumPhase("hybrid-4", _stage_prefix(4), 5, episodes_per_phase),
    ]
    n = 6
    step = 5
    while n < final_relations:
        phases.append(
            CurriculumPhase(f"hybrid-{step}", Stage.all(), n, episodes_per_phase)
        )
        n += 2
        step += 1
    phases.append(
        CurriculumPhase(
            f"hybrid-{step}", Stage.all(), final_relations, episodes_per_phase
        )
    )
    return phases


def flat_curriculum(episodes: int, max_relations: int = 8) -> List[CurriculumPhase]:
    """No curriculum: the full search space from episode one (the §4
    baseline the incremental approaches are measured against)."""
    return [CurriculumPhase("flat", Stage.all(), max_relations, episodes)]


@dataclass
class PhaseResult:
    """One curriculum phase and the training log it produced."""

    phase: CurriculumPhase
    log: TrainingLog


class IncrementalTrainer:
    """Trains one agent through a curriculum of staged environments.

    Per-phase workloads are synthesized with the random query generator
    so every phase has queries matching its relation budget (§5.3.2's
    observation that real workloads lack low-relation queries).
    """

    def __init__(
        self,
        db: Database,
        rng: np.random.Generator,
        queries_per_phase: int = 60,
        batch_size: int = 8,
        grow_actions: bool = False,
        agent_config: ReinforceConfig | None = None,
        reward_shaping: str = "neg_log",
    ) -> None:
        self.db = db
        self.rng = rng
        self.queries_per_phase = queries_per_phase
        self.batch_size = batch_size
        self.grow_actions = grow_actions
        self.agent_config = agent_config or ReinforceConfig()
        self.reward_shaping = reward_shaping
        self.generator = RandomQueryGenerator(db)
        self.baseline = ExpertBaseline(db)
        self.agent: ReinforceAgent | None = None
        self._workload_counter = 0

    # ------------------------------------------------------------------
    def _phase_workload(self, phase: CurriculumPhase) -> Workload:
        self._workload_counter += 1
        lo = max(1, min(2, phase.max_relations))
        return self.generator.workload(
            self.rng,
            size=self.queries_per_phase,
            relation_range=(lo, phase.max_relations),
            name=f"{phase.name}-w{self._workload_counter}",
        )

    def _phase_env(self, phase: CurriculumPhase, workload: Workload) -> StagedPlanEnv:
        from repro.core.featurize import QueryFeaturizer

        # One featurizer sized for the final phase keeps state_dim and the
        # pair-action block constant across the whole curriculum.
        if not hasattr(self, "_featurizer"):
            self._featurizer = QueryFeaturizer(self.db.schema, max_relations=18)
        return StagedPlanEnv(
            self.db,
            workload,
            stages=phase.stages,
            reward_source=CostModelReward(self.db, shaping=self.reward_shaping),
            featurizer=self._featurizer,
            rng=self.rng,
        )

    def _ensure_agent(self, env: StagedPlanEnv) -> ReinforceAgent:
        if self.agent is None:
            # Without action growth, pre-allocate the full action layer;
            # locked stages stay invisible through masking.
            n_actions = (
                env.n_actions
                if self.grow_actions
                else env.action_count_for(Stage.all())
            )
            self.agent = ReinforceAgent(
                env.state_dim, n_actions, self.rng, self.agent_config
            )
        elif self.agent.policy_net.out_features < env.n_actions:
            if not self.grow_actions:
                raise RuntimeError(
                    "agent action layer smaller than the environment's; "
                    "enable grow_actions or pre-allocate all stages"
                )
            delta = env.n_actions - self.agent.policy_net.out_features
            self.agent.policy_net.grow_outputs(delta, self.rng)
        return self.agent

    # ------------------------------------------------------------------
    def run(self, curriculum: Sequence[CurriculumPhase]) -> List[PhaseResult]:
        """Train through every phase, reusing (and growing) the agent."""
        if not curriculum:
            raise ValueError("curriculum must have at least one phase")
        results: List[PhaseResult] = []
        for phase in curriculum:
            workload = self._phase_workload(phase)
            env = self._phase_env(phase, workload)
            agent = self._ensure_agent(env)
            trainer = Trainer(
                env,
                agent,
                self.baseline,
                self.rng,
                TrainingConfig(batch_size=self.batch_size),
            )
            log = trainer.run(phase.episodes)
            results.append(PhaseResult(phase=phase, log=log))
        return results

    # ------------------------------------------------------------------
    def final_quality(
        self, results: Sequence[PhaseResult], tail: int = 50
    ) -> float:
        """Median relative plan cost over the tail of the last phase."""
        return results[-1].log.tail_median_relative_cost(tail)
