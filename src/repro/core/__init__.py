"""The paper's contribution: DRL-based query optimization.

This package implements the ReJOIN case study (§3) and the three
research directions of §5 on top of the substrate packages:

- :mod:`repro.core.featurize` — state vectorization (tree vectors, join
  graph, predicate features);
- :mod:`repro.core.rewards` — cost-model and latency reward signals,
  including the §5.2 latency→cost scaling;
- :mod:`repro.core.envs` — the join-order environment (ReJOIN), the
  staged pipeline environment (§5.3), and the naive full-plan
  environment (§4);
- :mod:`repro.core.agent` / :mod:`repro.core.trainer` — agents and the
  episode loop with relative-cost tracking (Figure 3a);
- :mod:`repro.core.lfd` — learning from demonstration (§5.1);
- :mod:`repro.core.bootstrap` — cost-model bootstrapping (§5.2);
- :mod:`repro.core.incremental` — pipeline/relations/hybrid curricula
  (§5.3);
- :mod:`repro.core.reporting` — experiment series, tables, convergence.
"""

from repro.core.agent import make_agent
from repro.core.bootstrap import BootstrapConfig, BootstrapTrainer, RewardScaler
from repro.core.envs import FullPlanEnv, JoinOrderEnv, Stage, StagedPlanEnv
from repro.core.featurize import QueryFeaturizer
from repro.core.incremental import (
    CurriculumPhase,
    IncrementalTrainer,
    hybrid_curriculum,
    pipeline_curriculum,
    relations_curriculum,
)
from repro.core.lfd import DemonstrationSet, LfDAgent, LfDConfig, LfDTrainer
from repro.core.rewards import (
    CostModelReward,
    ExpertBaseline,
    LatencyReward,
    PlanOutcome,
    ScaledLatencyReward,
)
from repro.core.trainer import Trainer, TrainingConfig, TrainingLog

__all__ = [
    "BootstrapConfig",
    "BootstrapTrainer",
    "CostModelReward",
    "CurriculumPhase",
    "DemonstrationSet",
    "ExpertBaseline",
    "FullPlanEnv",
    "IncrementalTrainer",
    "JoinOrderEnv",
    "LatencyReward",
    "LfDAgent",
    "LfDConfig",
    "LfDTrainer",
    "PlanOutcome",
    "QueryFeaturizer",
    "RewardScaler",
    "ScaledLatencyReward",
    "Stage",
    "StagedPlanEnv",
    "Trainer",
    "TrainingConfig",
    "TrainingLog",
    "hybrid_curriculum",
    "make_agent",
    "pipeline_curriculum",
    "relations_curriculum",
]
