"""A PostgreSQL-shaped cost model over physical plans.

Costs are unitless, exactly as the paper stresses in §5.2 ("an
optimizer's cost model output is a unitless value, meant to compare
alternative query plans but not meant to directly correlate with
execution latency"). The parameters mirror PostgreSQL's planner GUCs.

All row counts come from the :class:`~repro.db.cardinality.QueryCardinalities`
estimator — *estimates*, not actuals — so the model inherits every
estimation error, which is what separates it from the executor's
latency signal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.db.cardinality import QueryCardinalities
from repro.db.plans import (
    HashAggregate,
    HashJoin,
    IndexScan,
    MergeJoin,
    NestedLoopJoin,
    PhysicalPlan,
    SeqScan,
    SortAggregate,
)
from repro.db.predicates import Comparison, CompareOp, InPredicate
from repro.db.schema import DatabaseSchema
from repro.db.statistics import TableStats

__all__ = ["CostParams", "PlanCost", "CostModel"]


@dataclass(frozen=True)
class CostParams:
    """Planner cost parameters (PostgreSQL GUC defaults)."""

    seq_page_cost: float = 1.0
    random_page_cost: float = 4.0
    cpu_tuple_cost: float = 0.01
    cpu_index_tuple_cost: float = 0.005
    cpu_operator_cost: float = 0.0025
    #: Per-tuple cost of inserting into a hash table (build side).
    hash_build_cost: float = 0.015
    #: Per-tuple cost of probing the hash table.
    hash_probe_cost: float = 0.005


@dataclass(frozen=True)
class PlanCost:
    """Startup and total cost of a (sub)plan plus its row estimate."""

    startup: float = 0.0
    total: float = 0.0
    rows: float = 0.0

    def __post_init__(self) -> None:
        if self.total + 1e-9 < self.startup:
            raise ValueError(f"total {self.total} below startup {self.startup}")


class CostModel:
    """Costs physical plans against a query's cardinality estimates."""

    def __init__(
        self,
        schema: DatabaseSchema,
        stats: Dict[str, TableStats],
        params: CostParams | None = None,
    ) -> None:
        self.schema = schema
        self.stats = stats
        self.params = params or CostParams()

    def cost(
        self,
        plan: PhysicalPlan,
        cards: QueryCardinalities,
        cache: dict | None = None,
    ) -> PlanCost:
        """Total cost of ``plan`` under the given per-query estimates.

        ``cache`` is an optional caller-owned memo (``id(node) ->
        (node, PlanCost)``). Operator selection costs many candidate
        parents over the *same* child subplans; sharing one cache across
        those calls makes plan construction O(nodes) instead of
        O(nodes²). Entries keep a reference to their node, so a hit is
        only served while the node is provably the same object.
        """
        if cache is not None:
            entry = cache.get(id(plan))
            if entry is not None and entry[0] is plan:
                return entry[1]
        result = self._dispatch(plan, cards, cache)
        if cache is not None:
            cache[id(plan)] = (plan, result)
        return result

    def _dispatch(
        self, plan: PhysicalPlan, cards: QueryCardinalities, cache: dict | None
    ) -> PlanCost:
        if isinstance(plan, SeqScan):
            return self._seq_scan(plan, cards)
        if isinstance(plan, IndexScan):
            return self._index_scan(plan, cards)
        if isinstance(plan, NestedLoopJoin):
            return self._nested_loop(plan, cards, cache)
        if isinstance(plan, HashJoin):
            return self._hash_join(plan, cards, cache)
        if isinstance(plan, MergeJoin):
            return self._merge_join(plan, cards, cache)
        if isinstance(plan, HashAggregate):
            return self._hash_aggregate(plan, cards, cache)
        if isinstance(plan, SortAggregate):
            return self._sort_aggregate(plan, cards, cache)
        raise TypeError(f"unknown plan node {type(plan).__name__}")

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def _table_stats(self, table: str) -> TableStats | None:
        return self.stats.get(table)

    def _seq_scan(self, plan: SeqScan, cards: QueryCardinalities) -> PlanCost:
        p = self.params
        stats = self._table_stats(plan.table)
        n_rows = stats.n_rows if stats is not None else 1000
        n_pages = stats.n_pages if stats is not None else 10
        io = p.seq_page_cost * n_pages
        cpu = p.cpu_tuple_cost * n_rows
        cpu += p.cpu_operator_cost * n_rows * len(plan.predicates)
        return PlanCost(0.0, io + cpu, cards.scan_rows(plan.alias))

    def _index_selectivity(self, plan: IndexScan, cards: QueryCardinalities) -> float:
        """Selectivity of the index-qualifying predicate alone."""
        table = plan.table
        return cards.estimator.predicate_selectivity(plan.index_predicate, table)

    def _index_scan(self, plan: IndexScan, cards: QueryCardinalities) -> PlanCost:
        p = self.params
        stats = self._table_stats(plan.table)
        n_rows = stats.n_rows if stats is not None else 1000
        n_pages = stats.n_pages if stats is not None else 10
        index_sel = self._index_selectivity(plan, cards)
        matched = max(1.0, n_rows * index_sel)
        depth = max(1.0, math.log(max(n_rows, 2), 256))
        # Descend the tree, then fetch heap pages. Uncorrelated heap order:
        # approach one random page per matched tuple, capped by table pages.
        startup = depth * 50.0 * p.cpu_operator_cost
        heap_pages = min(float(n_pages), matched)
        io = p.random_page_cost * (depth + heap_pages)
        cpu = matched * (p.cpu_index_tuple_cost + p.cpu_tuple_cost)
        cpu += matched * p.cpu_operator_cost * len(plan.residual)
        # IN-list via repeated descents.
        if isinstance(plan.index_predicate, InPredicate):
            startup *= len(plan.index_predicate.values)
        return PlanCost(startup, startup + io + cpu, cards.scan_rows(plan.alias))

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    @staticmethod
    def _join_rows(plan, left: PlanCost, right: PlanCost, cards: QueryCardinalities) -> float:
        """Join output estimate without re-walking the subplan.

        ``PlanCost.rows`` of each child IS ``cards.plan_rows`` of that
        node, so handing the known child rows to the estimator's own
        :meth:`~repro.db.cardinality.QueryCardinalities.join_rows` gives
        the same number in O(1) — which matters when operator selection
        costs several candidate parents over the same children.
        """
        return cards.join_rows(plan.predicates, left.rows, right.rows)

    def _nested_loop(
        self, plan: NestedLoopJoin, cards: QueryCardinalities, cache: dict | None = None
    ) -> PlanCost:
        left = self.cost(plan.left, cards, cache)
        right = self.cost(plan.right, cards, cache)
        out_rows = self._join_rows(plan, left, right, cards)
        return self._nested_loop_from_children(
            len(plan.predicates), out_rows, left, right
        )

    def _hash_join(
        self, plan: HashJoin, cards: QueryCardinalities, cache: dict | None = None
    ) -> PlanCost:
        build = self.cost(plan.left, cards, cache)
        probe = self.cost(plan.right, cards, cache)
        out_rows = self._join_rows(plan, build, probe, cards)
        return self._hash_join_from_children(
            len(plan.predicates), out_rows, build, probe
        )

    def _sort_cost(self, rows: float) -> float:
        rows = max(rows, 2.0)
        return 2.0 * rows * math.log2(rows) * self.params.cpu_operator_cost

    def _merge_join(
        self, plan: MergeJoin, cards: QueryCardinalities, cache: dict | None = None
    ) -> PlanCost:
        left = self.cost(plan.left, cards, cache)
        right = self.cost(plan.right, cards, cache)
        out_rows = self._join_rows(plan, left, right, cards)
        return self._merge_join_from_children(
            len(plan.predicates), out_rows, left, right
        )

    def _nested_loop_from_children(
        self, n_preds: int, out_rows: float, left: PlanCost, right: PlanCost
    ) -> PlanCost:
        p = self.params
        rescan = max(0.0, left.rows - 1.0) * right.rows * p.cpu_operator_cost
        compare = left.rows * right.rows * p.cpu_operator_cost * max(1, n_preds)
        total = (
            left.total + right.total + rescan + compare + out_rows * p.cpu_tuple_cost
        )
        return PlanCost(left.startup, total, out_rows)

    def _hash_join_from_children(
        self, n_preds: int, out_rows: float, build: PlanCost, probe: PlanCost
    ) -> PlanCost:
        p = self.params
        startup = build.total + build.rows * p.hash_build_cost
        total = (
            startup
            + probe.total
            + probe.rows * p.hash_probe_cost * max(1, n_preds)
            + out_rows * p.cpu_tuple_cost
        )
        return PlanCost(startup, total, out_rows)

    def _merge_join_from_children(
        self, n_preds: int, out_rows: float, left: PlanCost, right: PlanCost
    ) -> PlanCost:
        p = self.params
        sort = self._sort_cost(left.rows) + self._sort_cost(right.rows)
        startup = left.total + right.total + sort
        merge = (left.rows + right.rows) * p.cpu_operator_cost
        total = startup + merge + out_rows * p.cpu_tuple_cost
        return PlanCost(startup, total, out_rows)

    def join_candidate_costs(
        self,
        predicates,
        left: PlanCost,
        right: PlanCost,
        cards: QueryCardinalities,
    ):
        """Costs of every executable join operator over already-costed
        children, without constructing a single candidate node.

        Operator selection is the serving/training hot path: costing a
        candidate via :meth:`cost` means allocating the node, validating
        it, and re-dispatching into the child recursion, three or four
        times per join — only to throw all but one node away. The child
        ``PlanCost`` values carry everything the join formulas consume
        (total, startup, rows), so the candidate costs here are
        arithmetic only and **identical float-for-float** to
        :meth:`cost` of the constructed node (the formulas are the same
        expressions; ``_join_rows`` is commutative in its child order).

        Returns ``[(cost, operator_cls, build_left_first), ...]`` in the
        same candidate order :func:`~repro.optimizer.physical.join_operator_candidates`
        enumerates, so ``min`` tie-breaking is unchanged. Cross products
        (no predicates) admit only nested loops.
        """
        out_rows = cards.join_rows(predicates, left.rows, right.rows)
        n_preds = len(predicates)
        nested = self._nested_loop_from_children(n_preds, out_rows, left, right)
        if not predicates:
            return [(nested, NestedLoopJoin, True)]
        return [
            (
                self._hash_join_from_children(n_preds, out_rows, left, right),
                HashJoin,
                True,
            ),
            (
                self._hash_join_from_children(n_preds, out_rows, right, left),
                HashJoin,
                False,
            ),
            (
                self._merge_join_from_children(n_preds, out_rows, left, right),
                MergeJoin,
                True,
            ),
            (nested, NestedLoopJoin, True),
        ]

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def _agg_width(self, plan) -> int:
        return max(1, len(plan.group_by) + len(plan.aggregates))

    def _hash_aggregate(
        self, plan: HashAggregate, cards: QueryCardinalities, cache: dict | None = None
    ) -> PlanCost:
        p = self.params
        child = self.cost(plan.child, cards, cache)
        groups = cards.aggregate_groups(plan, input_rows=child.rows)
        cpu = child.rows * p.cpu_operator_cost * self._agg_width(plan)
        cpu += child.rows * p.hash_build_cost * (1 if plan.group_by else 0)
        startup = child.total + cpu
        total = startup + groups * p.cpu_tuple_cost
        return PlanCost(startup, total, groups)

    def _sort_aggregate(
        self, plan: SortAggregate, cards: QueryCardinalities, cache: dict | None = None
    ) -> PlanCost:
        p = self.params
        child = self.cost(plan.child, cards, cache)
        groups = cards.aggregate_groups(plan, input_rows=child.rows)
        sort = self._sort_cost(child.rows) if plan.group_by else 0.0
        cpu = child.rows * p.cpu_operator_cost * self._agg_width(plan)
        startup = child.total + sort + cpu
        total = startup + groups * p.cpu_tuple_cost
        return PlanCost(startup, total, groups)
