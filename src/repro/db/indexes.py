"""Secondary indexes: B-tree (sorted) and hash.

Index *selection* is one of the optimization stages the paper's staged
environments expose (§5.3.1: "one action for a relation's B-tree index,
one action for a relation's row-order storage, one action for a
relation's hash index"). Both kinds answer lookups with base-table row
ids so executor results stay in row-id form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

__all__ = ["BTreeIndex", "HashIndex"]


@dataclass
class BTreeIndex:
    """An ordered index: supports equality and range lookups."""

    table: str
    column: str
    sorted_values: np.ndarray
    sorted_row_ids: np.ndarray

    @classmethod
    def build(cls, table: str, column: str, values: np.ndarray) -> "BTreeIndex":
        order = np.argsort(values, kind="stable")
        return cls(table, column, values[order], order.astype(np.int64))

    @property
    def n_entries(self) -> int:
        return len(self.sorted_values)

    @property
    def depth(self) -> int:
        """Approximate tree depth for cost formulas (fan-out 256)."""
        n = max(self.n_entries, 2)
        return max(1, int(np.ceil(np.log(n) / np.log(256))))

    def lookup_eq(self, value: float) -> np.ndarray:
        lo = np.searchsorted(self.sorted_values, value, side="left")
        hi = np.searchsorted(self.sorted_values, value, side="right")
        return self.sorted_row_ids[lo:hi]

    def lookup_range(
        self,
        lo: float | None,
        hi: float | None,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> np.ndarray:
        """Row ids with value in the given (possibly open-ended) range."""
        start = 0
        end = self.n_entries
        if lo is not None:
            side = "left" if lo_inclusive else "right"
            start = int(np.searchsorted(self.sorted_values, lo, side=side))
        if hi is not None:
            side = "right" if hi_inclusive else "left"
            end = int(np.searchsorted(self.sorted_values, hi, side=side))
        if end < start:
            end = start
        return self.sorted_row_ids[start:end]


@dataclass
class HashIndex:
    """An equality-only index: value -> row ids."""

    table: str
    column: str
    buckets: Dict[int, np.ndarray]

    @classmethod
    def build(cls, table: str, column: str, values: np.ndarray) -> "HashIndex":
        order = np.argsort(values, kind="stable")
        sorted_vals = values[order]
        # Split row ids at value boundaries: one bucket per distinct value.
        boundaries = np.nonzero(np.diff(sorted_vals))[0] + 1
        groups = np.split(order.astype(np.int64), boundaries)
        uniques = sorted_vals[np.concatenate([[0], boundaries])] if len(sorted_vals) else []
        buckets = {int(v): g for v, g in zip(np.atleast_1d(uniques), groups)}
        return cls(table, column, buckets)

    @property
    def n_entries(self) -> int:
        return sum(len(g) for g in self.buckets.values())

    def lookup_eq(self, value: float) -> np.ndarray:
        return self.buckets.get(int(value), np.empty(0, dtype=np.int64))
