"""Pluggable cardinality estimation: one interface, three lanes.

The substrate every plan quality claim rests on (the paper's Section 4
argument, via Leis et al. [17]) is the cardinality estimate. This
module defines the abstract :class:`CardinalityModel` interface and two
of its lanes:

- :class:`HistogramEstimator` — PostgreSQL's classic assumptions.
  Selections multiply per-predicate selectivities (attribute
  independence); equi-joins use ``1 / max(nd(a), nd(b))`` (uniform
  match, containment of value sets); join-tree estimates multiply
  base-scan estimates by the selectivities of every internal join edge.
  Estimates are clamped to at least one row. These assumptions are
  *deliberately* those of a traditional optimizer — on the skewed,
  correlated synthetic data the errors compound with join count, which
  is the behaviour the paper's Section 4 argument needs.
- :class:`PessimisticEstimator` — most-common-value **upper bounds**
  for risk-averse serving: conjunctions combine with ``min`` instead of
  a product (correlation-proof), equi-join edges are bounded by the
  worst-case join multiplicity ``max(maxfreq(a), maxfreq(b))``, and
  every per-predicate-class bound dominates the histogram lane's
  estimate. For tree-shaped join graphs (the FK snowflakes this repo
  generates) the alias-set estimate is a true upper bound on the join
  size implied by the statistics sample.

The supervised third lane, :class:`~repro.db.learned_cardinality.
LearnedEstimator`, lives in its own module (it drags in the ``nn``
stack) and plugs into the same hook.

**The interface contract** (the one documented entry-point pair):

- :meth:`QueryCardinalities.rows_for_aliases` — the order-independent
  estimate for *any* join over exactly an alias set. This is what the
  join-order search consumes (bitset DP subset memo, greedy
  bottom-up, env step-masking, featurization).
- :meth:`QueryCardinalities.plan_rows` — the predicate-honoring
  estimate for a *physical* operator tree. This is what the cost model
  consumes. It deliberately diverges from ``rows_for_aliases`` on
  malformed plans: a join node that failed to apply an applicable
  predicate (a cross product) is estimated at the full row product, so
  such plans are costed as the catastrophes they are. For well-formed
  plans — every applicable predicate attached where its sides first
  meet — the two entry points agree under any product-form lane.

Lanes customize estimates through two hooks: the selectivity methods
(:meth:`CardinalityModel.predicate_selectivity` and friends — the
product-form lanes), and :meth:`CardinalityModel.alias_set_rows` (the
non-product lanes, e.g. learned models that predict whole sub-plan
cardinalities). A lane with ``product_form = True`` guarantees
``rows_for_aliases`` is exactly ``prod(scan_rows) * prod(join_sels)``
clamped to one row, which lets the bitset DP keep its incremental
mask-keyed products (see ``FastJoinContext.rows``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.db.plans import (
    IndexScan,
    JoinTree,
    PhysicalPlan,
    SeqScan,
    _Aggregate,
    _Join,
)
from repro.db.predicates import (
    BetweenPredicate,
    Comparison,
    CompareOp,
    InPredicate,
    JoinPredicate,
    Predicate,
)
from repro.db.query import Query
from repro.db.schema import DatabaseSchema
from repro.db.statistics import ColumnStats, TableStats

__all__ = [
    "CardinalityModel",
    "HistogramEstimator",
    "PessimisticEstimator",
    "CardinalityEstimator",
    "QueryCardinalities",
    "q_error",
]

DEFAULT_EQ_SELECTIVITY = 0.005
DEFAULT_RANGE_SELECTIVITY = 0.33


def q_error(estimated: float, actual: float) -> float:
    """The q-error of one estimate: ``max(est/actual, actual/est)``.

    Both sides are clamped to one row first (the estimator's own floor),
    so a zero-row truth scores against 1.0 instead of dividing by zero.
    The result is always >= 1.0; 1.0 means a perfect estimate.
    """
    est = max(1.0, float(estimated))
    act = max(1.0, float(actual))
    return est / act if est >= act else act / est


class CardinalityModel:
    """Abstract estimator interface: selectivities + the lane hook.

    Concrete lanes subclass this. The base class carries the histogram
    machinery because every lane needs it as its fallback substrate
    (the learned lane serves histogram numbers when untrained or
    stale), and product-form lanes specialize behaviour purely by
    overriding the selectivity methods.

    Instances are built by a picklable factory stored on
    :class:`~repro.db.engine.Database` (``factory(schema, stats)``), so
    the process executor's ``WorkerSpec`` rebuilds the active lane per
    shard. After construction the database calls :meth:`bind`, handing
    the model its live statistics and per-table epoch view.
    """

    #: Lane name, stamped through ServedPlan, counters, and traces.
    lane = "abstract"
    #: True when ``rows_for_aliases`` is exactly the product form
    #: ``prod(scan_rows) * prod(join_sels)`` clamped to one row — the
    #: bitset DP's licence to use its incremental mask products.
    product_form = True

    def __init__(self, schema: DatabaseSchema, stats: Dict[str, TableStats]) -> None:
        self.schema = schema
        self.stats = stats
        #: Per-lane estimate counters (GIL-benign increments): how many
        #: alias-set estimates this lane computed, and how many times it
        #: declined and fell back to the histogram formula.
        self.counts: Dict[str, int] = {"estimates": 0, "fallbacks": 0}
        #: Live per-table statistics epochs (a *reference* to the owning
        #: database's dict, so analyze() bumps are visible immediately).
        self._table_epochs: Dict[str, int] = {}

    def bind(
        self,
        schema: DatabaseSchema,
        stats: Dict[str, TableStats],
        table_epochs: Dict[str, int],
    ) -> "CardinalityModel":
        """(Re)attach to a database's statistics and epoch view.

        Called on first installation and after every ``analyze()``
        (which replaces the stats dict wholesale). Lanes with trained
        state keep it across rebinds and decide staleness per estimate
        by comparing their training-time epochs against this live view.
        """
        self.schema = schema
        self.stats = stats
        self._table_epochs = table_epochs
        return self

    def probe(self) -> Dict[str, object]:
        """Operator-facing lane status for ``repro info --probe``."""
        return {"lane": self.lane, "stale": False, "counts": dict(self.counts)}

    # ------------------------------------------------------------------
    # Selections (histogram defaults — the shared fallback substrate)
    # ------------------------------------------------------------------
    def _column_stats(self, table: str, column: str) -> ColumnStats | None:
        table_stats = self.stats.get(table)
        if table_stats is None:
            return None
        return table_stats.columns.get(column)

    def predicate_selectivity(self, pred: Predicate, table: str) -> float:
        """Selectivity of one selection predicate against ``table``."""
        stats = self._column_stats(table, pred.column.column)
        if stats is None:
            if isinstance(pred, Comparison) and pred.op is CompareOp.EQ:
                return DEFAULT_EQ_SELECTIVITY
            return DEFAULT_RANGE_SELECTIVITY
        if isinstance(pred, Comparison):
            op = pred.op
            if op is CompareOp.EQ:
                return stats.selectivity_eq(pred.value)
            if op is CompareOp.NE:
                return stats.selectivity_ne(pred.value)
            if op is CompareOp.LT:
                return stats.selectivity_range(None, pred.value, hi_inclusive=False)
            if op is CompareOp.LE:
                return stats.selectivity_range(None, pred.value)
            if op is CompareOp.GT:
                return stats.selectivity_range(pred.value, None, lo_inclusive=False)
            return stats.selectivity_range(pred.value, None)
        if isinstance(pred, BetweenPredicate):
            return stats.selectivity_range(pred.lo, pred.hi)
        if isinstance(pred, InPredicate):
            return stats.selectivity_in(pred.values)
        raise TypeError(f"unknown predicate type {type(pred).__name__}")

    def conjunction_selectivity(self, preds: Sequence[Predicate], table: str) -> float:
        """Independence assumption: multiply the individual selectivities."""
        sel = 1.0
        for pred in preds:
            sel *= self.predicate_selectivity(pred, table)
        return sel

    def scan_rows(self, table: str, preds: Sequence[Predicate]) -> float:
        stats = self.stats.get(table)
        base = float(stats.n_rows) if stats is not None else 1000.0
        return max(1.0, base * self.conjunction_selectivity(preds, table))

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    def join_selectivity(self, pred: JoinPredicate, query: Query) -> float:
        """Equi-join selectivity: ``1 / max(nd_left, nd_right)``."""
        left = self._column_stats(query.table_of(pred.left.alias), pred.left.column)
        right = self._column_stats(query.table_of(pred.right.alias), pred.right.column)
        nd_left = left.n_distinct if left is not None else 100.0
        nd_right = right.n_distinct if right is not None else 100.0
        sel = 1.0 / max(nd_left, nd_right, 1.0)
        null_factor = 1.0
        if left is not None:
            null_factor *= 1.0 - left.null_frac
        if right is not None:
            null_factor *= 1.0 - right.null_frac
        return sel * null_factor

    # ------------------------------------------------------------------
    # The lane hook
    # ------------------------------------------------------------------
    def alias_set_rows(
        self, cards: "QueryCardinalities", aliases: frozenset
    ) -> Optional[float]:
        """Lane override for a whole alias-set estimate, or ``None``.

        ``None`` means "no opinion": :meth:`QueryCardinalities.
        rows_for_aliases` then computes the histogram product formula.
        Product-form lanes leave this alone (their specialization flows
        through the selectivity methods); the learned lane returns a
        model prediction here — or ``None`` when untrained or when any
        member table's statistics epoch moved since training.
        """
        return None

    def for_query(self, query: Query) -> "QueryCardinalities":
        """A per-query estimator with memoized subtree cardinalities."""
        return QueryCardinalities(self, query)


class HistogramEstimator(CardinalityModel):
    """The concrete histogram lane — exactly the seed estimator.

    Behaviour is pinned bitwise: every selectivity method is the base
    class's, ``alias_set_rows`` never fires, and the product formula in
    :meth:`QueryCardinalities.histogram_rows_for_aliases` multiplies in
    the same order the seed did (regression-tested; the bitset DP's
    parity assertions depend on it).
    """

    lane = "histogram"


#: Deprecated alias — the concrete class was renamed when the abstract
#: :class:`CardinalityModel` interface was extracted. Import
#: :class:`HistogramEstimator` (or the interface) instead; this name is
#: kept so external code and pickles keep working, and will be removed
#: once nothing constructs it directly.
CardinalityEstimator = HistogramEstimator


class PessimisticEstimator(CardinalityModel):
    """Upper-bound lane from most-common-value statistics.

    Every estimate dominates the histogram lane's per predicate class
    (regression-tested), and for tree-shaped join graphs the alias-set
    estimate upper-bounds the true join size implied by the sampled
    statistics:

    - selections: per-class upper bounds from
      :meth:`~repro.db.statistics.ColumnStats.selectivity_eq_upper` and
      friends, combined across a conjunction with ``min`` (for any
      events, ``P(A and B) <= min(P(A), P(B))`` — no independence
      assumption);
    - equi-joins: each intermediate row matches at most
      ``maxfreq * n_rows`` rows of the joined-in side, so the edge
      selectivity is bounded by ``max(maxfreq(left), maxfreq(right))``
      (covering either join orientation), floored at the histogram
      lane's selectivity;
    - columns with no statistics: selectivity 1.0 (risk-averse: claim
      nothing you cannot bound).

    The lane stays product-form, so the bitset DP's incremental mask
    products serve it at full speed.
    """

    lane = "pessimistic"

    def predicate_selectivity(self, pred: Predicate, table: str) -> float:
        stats = self._column_stats(table, pred.column.column)
        if stats is None:
            return 1.0
        base = super().predicate_selectivity(pred, table)
        if isinstance(pred, Comparison):
            op = pred.op
            if op is CompareOp.EQ:
                bound = stats.selectivity_eq_upper(pred.value)
            elif op is CompareOp.NE:
                bound = stats.selectivity_ne_upper(pred.value)
            elif op is CompareOp.LT:
                bound = stats.selectivity_range_upper(
                    None, pred.value, hi_inclusive=False
                )
            elif op is CompareOp.LE:
                bound = stats.selectivity_range_upper(None, pred.value)
            elif op is CompareOp.GT:
                bound = stats.selectivity_range_upper(
                    pred.value, None, lo_inclusive=False
                )
            else:
                bound = stats.selectivity_range_upper(pred.value, None)
        elif isinstance(pred, BetweenPredicate):
            bound = stats.selectivity_range_upper(pred.lo, pred.hi)
        elif isinstance(pred, InPredicate):
            bound = stats.selectivity_in_upper(pred.values)
        else:
            raise TypeError(f"unknown predicate type {type(pred).__name__}")
        return min(1.0, max(base, bound))

    def conjunction_selectivity(self, preds: Sequence[Predicate], table: str) -> float:
        """``min`` over the per-predicate upper bounds: correct for any
        correlation between predicates, and always >= the histogram
        lane's independence product (each factor there is <= 1)."""
        sel = 1.0
        for pred in preds:
            sel = min(sel, self.predicate_selectivity(pred, table))
        return sel

    def join_selectivity(self, pred: JoinPredicate, query: Query) -> float:
        base = super().join_selectivity(pred, query)
        left = self._column_stats(query.table_of(pred.left.alias), pred.left.column)
        right = self._column_stats(query.table_of(pred.right.alias), pred.right.column)
        if left is None or right is None:
            return 1.0
        bound = max(left.max_freq(), right.max_freq())
        return min(1.0, max(base, bound))


@dataclass
class _ScanInfo:
    rows: float
    selectivity: float


class QueryCardinalities:
    """Memoized cardinality estimates for one query.

    The single home of the interface contract (see the module
    docstring): :meth:`rows_for_aliases` for the join-order search,
    :meth:`plan_rows` for physical plans. Under a product-form lane the
    subtree estimate for an alias set ``S`` is::

        prod(scan_rows(a) for a in S) * prod(join_sel(e) for e inside S)

    which makes the estimate independent of the join order — the same
    property PostgreSQL's estimator has, and the reason the cost model
    (not cardinality) differentiates join orders of the same alias set.
    Non-product lanes (learned) supply whole-set estimates through
    :meth:`CardinalityModel.alias_set_rows` and fall back to the
    histogram formula when they decline.
    """

    def __init__(self, estimator: CardinalityModel, query: Query) -> None:
        self.estimator = estimator
        self.query = query
        self._scan_cache: Dict[str, _ScanInfo] = {}
        self._tree_cache: Dict[frozenset, float] = {}
        self._hist_tree_cache: Dict[frozenset, float] = {}
        self._join_sel_cache: Dict[JoinPredicate, float] = {}

    @property
    def product_form(self) -> bool:
        """Whether the active lane keeps the product form (see
        :attr:`CardinalityModel.product_form`)."""
        return self.estimator.product_form

    # Scans -------------------------------------------------------------
    def scan_info(self, alias: str) -> _ScanInfo:
        info = self._scan_cache.get(alias)
        if info is None:
            table = self.query.table_of(alias)
            preds = self.query.selections_for(alias)
            sel = self.estimator.conjunction_selectivity(preds, table)
            stats = self.estimator.stats.get(table)
            base = float(stats.n_rows) if stats is not None else 1000.0
            info = _ScanInfo(rows=max(1.0, base * sel), selectivity=sel)
            self._scan_cache[alias] = info
        return info

    def scan_rows(self, alias: str) -> float:
        return self.scan_info(alias).rows

    def base_rows(self, alias: str) -> float:
        table = self.query.table_of(alias)
        stats = self.estimator.stats.get(table)
        return float(stats.n_rows) if stats is not None else 1000.0

    # Joins --------------------------------------------------------------
    def join_selectivity(self, pred: JoinPredicate) -> float:
        sel = self._join_sel_cache.get(pred)
        if sel is None:
            sel = self.estimator.join_selectivity(pred, self.query)
            self._join_sel_cache[pred] = sel
        return sel

    def histogram_rows_for_aliases(self, aliases: frozenset) -> float:
        """The product formula over the active lane's selectivities.

        This is the seed arithmetic, pinned bitwise for the histogram
        lane: scan rows multiplied in sorted alias order, join
        selectivities in predicate declaration order, clamped to one
        row at the end. Non-product lanes call it too — as their
        fallback and as the learned lane's featurization prior — which
        is why it memoizes separately from :meth:`rows_for_aliases`.
        """
        cached = self._hist_tree_cache.get(aliases)
        if cached is not None:
            return cached
        rows = 1.0
        # Sorted iteration: frozenset order depends on string hashing,
        # which is randomized per process — multiplying in sorted alias
        # order keeps the float product reproducible across runs (and is
        # the order the bitset DP's incremental products follow).
        for alias in sorted(aliases):
            rows *= self.scan_rows(alias)
        for pred in self.query.joins:
            if pred.left.alias in aliases and pred.right.alias in aliases:
                rows *= self.join_selectivity(pred)
        rows = max(1.0, rows)
        self._hist_tree_cache[aliases] = rows
        return rows

    def rows_for_aliases(self, aliases: frozenset) -> float:
        """Estimated rows of any join over exactly these aliases."""
        aliases = frozenset(aliases)
        cached = self._tree_cache.get(aliases)
        if cached is not None:
            return cached
        rows = self.estimator.alias_set_rows(self, aliases)
        if rows is None:
            rows = self.histogram_rows_for_aliases(aliases)
        self.estimator.counts["estimates"] += 1
        self._tree_cache[aliases] = rows
        return rows

    def tree_rows(self, tree: JoinTree) -> float:
        return self.rows_for_aliases(tree.aliases)

    # Physical plans -----------------------------------------------------
    def join_rows(
        self, predicates, left_rows: float, right_rows: float
    ) -> float:
        """Join output estimate from already-known child estimates.

        The single home of the join-row arithmetic: :meth:`plan_rows`
        recurses into it, and the cost model calls it directly with the
        child rows it already carries in ``PlanCost.rows`` — same
        numbers either way, no re-walk of the subplan. Takes the join's
        predicate tuple (not a plan node), so operator selection can
        estimate candidates before any node object exists.
        """
        rows = left_rows * right_rows
        for pred in predicates:
            rows *= self.join_selectivity(pred)
        return max(1.0, rows)

    def plan_rows(self, plan: PhysicalPlan) -> float:
        """Estimated output rows of a physical operator.

        The predicate-honoring half of the interface contract: unlike
        :meth:`rows_for_aliases`, this estimates the predicates the
        plan *actually applies* — a join node with no predicates (a
        cross product) is estimated at the full row product, so plans
        that fail to apply a join edge are costed as the catastrophes
        they are. For well-formed plans — every applicable predicate
        attached where its sides first meet — the two entry points
        agree under any product-form lane.
        """
        if isinstance(plan, (SeqScan, IndexScan)):
            return self.scan_rows(plan.alias)
        if isinstance(plan, _Join):
            # No memoization here: plan candidates are ephemeral objects,
            # so identity-keyed caches would collide when the allocator
            # reuses addresses, and structural keys cost as much as the
            # recursion itself (which is linear in plan size).
            return self.join_rows(
                plan.predicates, self.plan_rows(plan.left), self.plan_rows(plan.right)
            )
        if isinstance(plan, _Aggregate):
            return self.aggregate_groups(plan)
        raise TypeError(f"unknown plan node {type(plan).__name__}")

    def aggregate_groups(
        self, plan: "_Aggregate", input_rows: float | None = None
    ) -> float:
        """Estimated group count: capped product of group-key distincts.

        ``input_rows`` lets a caller that already knows the child's row
        estimate (the cost model carries it in ``PlanCost.rows``) skip
        re-deriving it from the plan tree.
        """
        if input_rows is None:
            input_rows = self.plan_rows(plan.child)
        if not plan.group_by:
            return 1.0
        distinct = 1.0
        for ref in plan.group_by:
            table = self.query.table_of(ref.alias)
            stats = self.estimator._column_stats(table, ref.column)
            distinct *= stats.n_distinct if stats is not None else 100.0
        return max(1.0, min(distinct, input_rows))


#: Public aliases so other modules can isinstance-check without importing
#: private names from :mod:`repro.db.plans`.
Aggregate = _Aggregate
Join = _Join
