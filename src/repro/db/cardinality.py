"""Cardinality estimation with PostgreSQL's classic assumptions.

Selections multiply per-predicate selectivities (attribute independence);
equi-joins use ``1 / max(nd(a), nd(b))`` (uniform match, containment of
value sets); join-tree estimates multiply base-scan estimates by the
selectivities of every internal join edge. Estimates are clamped to at
least one row.

These assumptions are *deliberately* those of a traditional optimizer —
on the skewed, correlated synthetic data the errors compound with join
count, which is the behaviour (Leis et al. [17]) the paper's Section 4
argument needs from its substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.db.plans import (
    IndexScan,
    JoinTree,
    PhysicalPlan,
    SeqScan,
    _Aggregate,
    _Join,
)
from repro.db.predicates import (
    BetweenPredicate,
    Comparison,
    CompareOp,
    InPredicate,
    JoinPredicate,
    Predicate,
)
from repro.db.query import Query
from repro.db.schema import DatabaseSchema
from repro.db.statistics import ColumnStats, TableStats

__all__ = ["CardinalityEstimator", "QueryCardinalities"]

DEFAULT_EQ_SELECTIVITY = 0.005
DEFAULT_RANGE_SELECTIVITY = 0.33


class CardinalityEstimator:
    """Estimates selectivities and cardinalities from table statistics."""

    def __init__(self, schema: DatabaseSchema, stats: Dict[str, TableStats]) -> None:
        self.schema = schema
        self.stats = stats

    # ------------------------------------------------------------------
    # Selections
    # ------------------------------------------------------------------
    def _column_stats(self, table: str, column: str) -> ColumnStats | None:
        table_stats = self.stats.get(table)
        if table_stats is None:
            return None
        return table_stats.columns.get(column)

    def predicate_selectivity(self, pred: Predicate, table: str) -> float:
        """Selectivity of one selection predicate against ``table``."""
        stats = self._column_stats(table, pred.column.column)
        if stats is None:
            if isinstance(pred, Comparison) and pred.op is CompareOp.EQ:
                return DEFAULT_EQ_SELECTIVITY
            return DEFAULT_RANGE_SELECTIVITY
        if isinstance(pred, Comparison):
            op = pred.op
            if op is CompareOp.EQ:
                return stats.selectivity_eq(pred.value)
            if op is CompareOp.NE:
                return stats.selectivity_ne(pred.value)
            if op is CompareOp.LT:
                return stats.selectivity_range(None, pred.value, hi_inclusive=False)
            if op is CompareOp.LE:
                return stats.selectivity_range(None, pred.value)
            if op is CompareOp.GT:
                return stats.selectivity_range(pred.value, None, lo_inclusive=False)
            return stats.selectivity_range(pred.value, None)
        if isinstance(pred, BetweenPredicate):
            return stats.selectivity_range(pred.lo, pred.hi)
        if isinstance(pred, InPredicate):
            return stats.selectivity_in(pred.values)
        raise TypeError(f"unknown predicate type {type(pred).__name__}")

    def conjunction_selectivity(self, preds: Sequence[Predicate], table: str) -> float:
        """Independence assumption: multiply the individual selectivities."""
        sel = 1.0
        for pred in preds:
            sel *= self.predicate_selectivity(pred, table)
        return sel

    def scan_rows(self, table: str, preds: Sequence[Predicate]) -> float:
        stats = self.stats.get(table)
        base = float(stats.n_rows) if stats is not None else 1000.0
        return max(1.0, base * self.conjunction_selectivity(preds, table))

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    def join_selectivity(self, pred: JoinPredicate, query: Query) -> float:
        """Equi-join selectivity: ``1 / max(nd_left, nd_right)``."""
        left = self._column_stats(query.table_of(pred.left.alias), pred.left.column)
        right = self._column_stats(query.table_of(pred.right.alias), pred.right.column)
        nd_left = left.n_distinct if left is not None else 100.0
        nd_right = right.n_distinct if right is not None else 100.0
        sel = 1.0 / max(nd_left, nd_right, 1.0)
        null_factor = 1.0
        if left is not None:
            null_factor *= 1.0 - left.null_frac
        if right is not None:
            null_factor *= 1.0 - right.null_frac
        return sel * null_factor

    def for_query(self, query: Query) -> "QueryCardinalities":
        """A per-query estimator with memoized subtree cardinalities."""
        return QueryCardinalities(self, query)


@dataclass
class _ScanInfo:
    rows: float
    selectivity: float


class QueryCardinalities:
    """Memoized cardinality estimates for one query.

    The subtree estimate for an alias set ``S`` is::

        prod(scan_rows(a) for a in S) * prod(join_sel(e) for e inside S)

    which makes the estimate independent of the join order — the same
    property PostgreSQL's estimator has, and the reason the cost model
    (not cardinality) differentiates join orders of the same alias set.
    """

    def __init__(self, estimator: CardinalityEstimator, query: Query) -> None:
        self.estimator = estimator
        self.query = query
        self._scan_cache: Dict[str, _ScanInfo] = {}
        self._tree_cache: Dict[frozenset, float] = {}
        self._join_sel_cache: Dict[JoinPredicate, float] = {}

    # Scans -------------------------------------------------------------
    def scan_info(self, alias: str) -> _ScanInfo:
        info = self._scan_cache.get(alias)
        if info is None:
            table = self.query.table_of(alias)
            preds = self.query.selections_for(alias)
            sel = self.estimator.conjunction_selectivity(preds, table)
            stats = self.estimator.stats.get(table)
            base = float(stats.n_rows) if stats is not None else 1000.0
            info = _ScanInfo(rows=max(1.0, base * sel), selectivity=sel)
            self._scan_cache[alias] = info
        return info

    def scan_rows(self, alias: str) -> float:
        return self.scan_info(alias).rows

    def base_rows(self, alias: str) -> float:
        table = self.query.table_of(alias)
        stats = self.estimator.stats.get(table)
        return float(stats.n_rows) if stats is not None else 1000.0

    # Joins --------------------------------------------------------------
    def join_selectivity(self, pred: JoinPredicate) -> float:
        sel = self._join_sel_cache.get(pred)
        if sel is None:
            sel = self.estimator.join_selectivity(pred, self.query)
            self._join_sel_cache[pred] = sel
        return sel

    def rows_for_aliases(self, aliases: frozenset) -> float:
        """Estimated rows of any join over exactly these aliases."""
        aliases = frozenset(aliases)
        cached = self._tree_cache.get(aliases)
        if cached is not None:
            return cached
        rows = 1.0
        # Sorted iteration: frozenset order depends on string hashing,
        # which is randomized per process — multiplying in sorted alias
        # order keeps the float product reproducible across runs (and is
        # the order the bitset DP's incremental products follow).
        for alias in sorted(aliases):
            rows *= self.scan_rows(alias)
        for pred in self.query.joins:
            if pred.left.alias in aliases and pred.right.alias in aliases:
                rows *= self.join_selectivity(pred)
        rows = max(1.0, rows)
        self._tree_cache[aliases] = rows
        return rows

    def tree_rows(self, tree: JoinTree) -> float:
        return self.rows_for_aliases(tree.aliases)

    # Physical plans -----------------------------------------------------
    def join_rows(
        self, predicates, left_rows: float, right_rows: float
    ) -> float:
        """Join output estimate from already-known child estimates.

        The single home of the join-row arithmetic: :meth:`plan_rows`
        recurses into it, and the cost model calls it directly with the
        child rows it already carries in ``PlanCost.rows`` — same
        numbers either way, no re-walk of the subplan. Takes the join's
        predicate tuple (not a plan node), so operator selection can
        estimate candidates before any node object exists.
        """
        rows = left_rows * right_rows
        for pred in predicates:
            rows *= self.join_selectivity(pred)
        return max(1.0, rows)

    def plan_rows(self, plan: PhysicalPlan) -> float:
        """Estimated output rows of a physical operator.

        Unlike :meth:`rows_for_aliases`, this honours the predicates the
        plan *actually applies*: a join node with no predicates (a cross
        product) is estimated at the full row product, so plans that
        fail to apply a join edge are costed as the catastrophes they
        are. For well-formed plans — every applicable predicate attached
        where its sides first meet — the two methods agree.
        """
        if isinstance(plan, (SeqScan, IndexScan)):
            return self.scan_rows(plan.alias)
        if isinstance(plan, _Join):
            # No memoization here: plan candidates are ephemeral objects,
            # so identity-keyed caches would collide when the allocator
            # reuses addresses, and structural keys cost as much as the
            # recursion itself (which is linear in plan size).
            return self.join_rows(
                plan.predicates, self.plan_rows(plan.left), self.plan_rows(plan.right)
            )
        if isinstance(plan, _Aggregate):
            return self.aggregate_groups(plan)
        raise TypeError(f"unknown plan node {type(plan).__name__}")

    def aggregate_groups(
        self, plan: "_Aggregate", input_rows: float | None = None
    ) -> float:
        """Estimated group count: capped product of group-key distincts.

        ``input_rows`` lets a caller that already knows the child's row
        estimate (the cost model carries it in ``PlanCost.rows``) skip
        re-deriving it from the plan tree.
        """
        if input_rows is None:
            input_rows = self.plan_rows(plan.child)
        if not plan.group_by:
            return 1.0
        distinct = 1.0
        for ref in plan.group_by:
            table = self.query.table_of(ref.alias)
            stats = self.estimator._column_stats(table, ref.column)
            distinct *= stats.n_distinct if stats is not None else 100.0
        return max(1.0, min(distinct, input_rows))


#: Public aliases so other modules can isinstance-check without importing
#: private names from :mod:`repro.db.plans`.
Aggregate = _Aggregate
Join = _Join
