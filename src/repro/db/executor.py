"""Plan execution with a deterministic simulated clock.

The executor **really executes** physical plans against the stored numpy
data — joins produce exact result rows, aggregates compute real values —
but time is charged by a deterministic per-operator model driven by the
**actual** row counts encountered (nested loops pay O(|outer|·|inner|),
hash joins pay O(build + probe), …). This gives the paper's latency
signal the properties it needs:

- it reflects true cardinalities, so it diverges from the cost model's
  estimate-driven opinion (§4 "Performance Indicator");
- catastrophic plans take *simulated* hours while good plans take
  milliseconds (§4 "Performance Evaluation Overhead") without the
  reproduction itself taking hours: a latency **budget** censors any
  plan whose simulated time exceeds it, mirroring footnote 2 ("the
  initial query plans produced could not be executed in any reasonable
  amount of time");
- it is machine-independent and exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Tuple

import numpy as np

from repro.db.plans import (
    HashAggregate,
    HashJoin,
    IndexScan,
    MergeJoin,
    NestedLoopJoin,
    PhysicalPlan,
    SeqScan,
    SortAggregate,
    _Aggregate,
    _Join,
)
from repro.db.predicates import (
    BetweenPredicate,
    Comparison,
    CompareOp,
    InPredicate,
    JoinPredicate,
    Predicate,
)
from repro.db.query import Query
from repro.db.schema import NULL_INT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.engine import Database

__all__ = ["SimParams", "ExecutionResult", "Executor", "equi_join_indices"]


@dataclass(frozen=True)
class SimParams:
    """Simulated time constants, in milliseconds of virtual time."""

    seq_page_ms: float = 0.01
    random_page_ms: float = 0.04
    tuple_ms: float = 1e-4
    op_ms: float = 2e-5
    hash_build_ms: float = 1.5e-4
    hash_probe_ms: float = 5e-5
    index_tuple_ms: float = 5e-5


@dataclass
class ExecutionResult:
    """Outcome of executing one plan."""

    rows: int
    latency_ms: float
    timed_out: bool = False
    #: id(plan node) -> actual output row count, for EXPLAIN ANALYZE.
    node_rows: Dict[int, int] = field(default_factory=dict)
    #: Final aggregate values (column/aggregate label -> array), if any.
    aggregates: Dict[str, np.ndarray] | None = None

    def actual_rows(self, node: PhysicalPlan) -> int | None:
        return self.node_rows.get(id(node))


class _BudgetExceeded(Exception):
    """Internal: simulated clock passed the latency budget."""


@dataclass
class _Relation:
    """Intermediate result: aligned base-table row ids per alias."""

    row_ids: Dict[str, np.ndarray]

    @property
    def n_rows(self) -> int:
        if not self.row_ids:
            return 0
        return len(next(iter(self.row_ids.values())))

    def take(self, positions: np.ndarray) -> "_Relation":
        return _Relation({a: ids[positions] for a, ids in self.row_ids.items()})


def equi_join_indices(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> Tuple[int, "_PairMaterializer"]:
    """Plan an equi-join of two key arrays.

    Returns the exact output size and a materializer producing the
    ``(left_positions, right_positions)`` pair arrays. The size is
    available *before* any O(output) work, so callers can enforce
    budgets and row caps first. NULL sentinels never match.
    """
    left_valid = _valid_mask(left_keys)
    right_valid = _valid_mask(right_keys)
    lpos = np.nonzero(left_valid)[0]
    rpos = np.nonzero(right_valid)[0]
    lk = left_keys[lpos]
    rk = right_keys[rpos]
    order = np.argsort(rk, kind="stable")
    rk_sorted = rk[order]
    lo = np.searchsorted(rk_sorted, lk, side="left")
    hi = np.searchsorted(rk_sorted, lk, side="right")
    counts = hi - lo
    size = int(counts.sum())
    return size, _PairMaterializer(lpos, rpos, order, lo, counts, size)


@dataclass
class _PairMaterializer:
    lpos: np.ndarray
    rpos: np.ndarray
    order: np.ndarray
    lo: np.ndarray
    counts: np.ndarray
    size: int

    def materialize(self) -> Tuple[np.ndarray, np.ndarray]:
        if self.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        li = np.repeat(np.arange(len(self.counts)), self.counts)
        starts = np.repeat(self.lo, self.counts)
        group_offsets = np.concatenate(([0], np.cumsum(self.counts)[:-1]))
        within = np.arange(self.size) - np.repeat(group_offsets, self.counts)
        ri = self.order[starts + within]
        return self.lpos[li], self.rpos[ri]


def _valid_mask(keys: np.ndarray) -> np.ndarray:
    if keys.dtype.kind == "f":
        return ~np.isnan(keys)
    return keys != NULL_INT


class Executor:
    """Executes physical plans against a :class:`~repro.db.engine.Database`."""

    def __init__(
        self,
        database: "Database",
        params: SimParams | None = None,
        budget_ms: float = float("inf"),
        max_intermediate_rows: int = 2_000_000,
    ) -> None:
        if budget_ms <= 0:
            raise ValueError("budget_ms must be positive")
        self.database = database
        self.params = params or SimParams()
        self.budget_ms = budget_ms
        self.max_intermediate_rows = max_intermediate_rows
        self._clock = 0.0
        self._node_rows: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def execute(self, plan: PhysicalPlan, query: Query) -> ExecutionResult:
        """Execute ``plan`` for ``query``; returns a censored result if the
        simulated clock exceeds the budget."""
        self._clock = 0.0
        self._node_rows = {}
        try:
            if isinstance(plan, _Aggregate):
                rows, aggregates = self._run_aggregate(plan, query)
                return ExecutionResult(
                    rows=rows,
                    latency_ms=self._clock,
                    node_rows=self._node_rows,
                    aggregates=aggregates,
                )
            relation = self._run(plan, query)
            return ExecutionResult(
                rows=relation.n_rows,
                latency_ms=self._clock,
                node_rows=self._node_rows,
            )
        except _BudgetExceeded:
            return ExecutionResult(
                rows=0,
                latency_ms=self.budget_ms,
                timed_out=True,
                node_rows=self._node_rows,
            )

    # ------------------------------------------------------------------
    # Clock helpers
    # ------------------------------------------------------------------
    def _charge(self, ms: float) -> None:
        self._clock += ms
        if self._clock > self.budget_ms:
            raise _BudgetExceeded

    def _check_rows(self, n: int) -> None:
        if n > self.max_intermediate_rows:
            # An intermediate blow-up: treat as a censored (hopeless) plan.
            self._clock = self.budget_ms
            raise _BudgetExceeded

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _run(self, plan: PhysicalPlan, query: Query) -> _Relation:
        if isinstance(plan, SeqScan):
            result = self._run_seq_scan(plan)
        elif isinstance(plan, IndexScan):
            result = self._run_index_scan(plan)
        elif isinstance(plan, _Join):
            result = self._run_join(plan, query)
        else:
            raise TypeError(f"cannot execute node {type(plan).__name__}")
        self._node_rows[id(plan)] = result.n_rows
        return result

    def _column(self, alias: str, column: str, query: Query | None = None) -> np.ndarray:
        if query is not None:
            table = query.table_of(alias)
        else:
            table = alias
        return self.database.tables[table].column(column)

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def _eval_preds(
        self, preds: Tuple[Predicate, ...], values_of, n: int
    ) -> np.ndarray:
        mask = np.ones(n, dtype=bool)
        for pred in preds:
            mask &= pred.evaluate(values_of(pred.column.column))
        return mask

    def _run_seq_scan(self, plan: SeqScan) -> _Relation:
        p = self.params
        table = self.database.tables[plan.table]
        n = table.n_rows
        self._charge(
            table.n_pages * p.seq_page_ms
            + n * p.tuple_ms
            + n * len(plan.predicates) * p.op_ms
        )
        mask = self._eval_preds(plan.predicates, table.column, n)
        ids = np.nonzero(mask)[0].astype(np.int64)
        return _Relation({plan.alias: ids})

    def _index_lookup(self, plan: IndexScan) -> np.ndarray:
        index = self.database.index_on(plan.table, plan.index_column, plan.kind)
        if index is None:
            raise LookupError(
                f"no {plan.kind} index on {plan.table}.{plan.index_column}"
            )
        pred = plan.index_predicate
        if isinstance(pred, Comparison):
            op = pred.op
            if op is CompareOp.EQ:
                return index.lookup_eq(pred.value)
            if plan.kind == "hash":
                raise LookupError("hash index supports only equality lookups")
            if op is CompareOp.LT:
                return index.lookup_range(None, pred.value, hi_inclusive=False)
            if op is CompareOp.LE:
                return index.lookup_range(None, pred.value)
            if op is CompareOp.GT:
                return index.lookup_range(pred.value, None, lo_inclusive=False)
            if op is CompareOp.GE:
                return index.lookup_range(pred.value, None)
            raise LookupError("index scans do not support <> predicates")
        if isinstance(pred, BetweenPredicate):
            if plan.kind == "hash":
                raise LookupError("hash index supports only equality lookups")
            return index.lookup_range(pred.lo, pred.hi)
        if isinstance(pred, InPredicate):
            parts = [index.lookup_eq(v) for v in pred.values]
            return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        raise TypeError(f"unsupported index predicate {type(pred).__name__}")

    def _run_index_scan(self, plan: IndexScan) -> _Relation:
        p = self.params
        table = self.database.tables[plan.table]
        matched_ids = self._index_lookup(plan)
        matched = len(matched_ids)
        depth = max(1.0, np.log(max(table.n_rows, 2)) / np.log(256))
        descents = (
            len(plan.index_predicate.values)
            if isinstance(plan.index_predicate, InPredicate)
            else 1
        )
        heap_pages = min(float(table.n_pages), float(matched))
        self._charge(
            descents * depth * p.random_page_ms
            + heap_pages * p.random_page_ms
            + matched * p.index_tuple_ms
            + matched * len(plan.residual) * p.op_ms
        )
        if plan.residual:
            mask = self._eval_preds(
                plan.residual, lambda c: table.column(c)[matched_ids], matched
            )
            matched_ids = matched_ids[mask]
        return _Relation({plan.alias: np.sort(matched_ids).astype(np.int64)})

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    def _join_keys(
        self, relation: _Relation, ref, query: Query
    ) -> np.ndarray:
        base = self._column(ref.alias, ref.column, query)
        return base[relation.row_ids[ref.alias]]

    def _run_join(self, plan: _Join, query: Query) -> _Relation:
        p = self.params
        left = self._run(plan.left, query)
        right = self._run(plan.right, query)
        nl, nr = left.n_rows, right.n_rows

        if plan.is_cross_product:
            if not isinstance(plan, NestedLoopJoin):
                raise ValueError("only nested loops can execute a cross product")
            out_n = nl * nr
            self._charge(nl * nr * p.op_ms + out_n * p.tuple_ms)
            self._check_rows(out_n)
            li = np.repeat(np.arange(nl, dtype=np.int64), nr)
            ri = np.tile(np.arange(nr, dtype=np.int64), nl)
            return self._combine(left, right, li, ri)

        first, *rest = plan.predicates
        lref, rref = self._orient(first, left, right)
        lkeys = self._join_keys(left, lref, query)
        rkeys = self._join_keys(right, rref, query)
        size, pairs = equi_join_indices(lkeys, rkeys)

        # Charge algorithm time before materializing the output.
        if isinstance(plan, NestedLoopJoin):
            self._charge(nl * nr * p.op_ms * max(1, len(plan.predicates)))
        elif isinstance(plan, HashJoin):
            self._charge(nl * p.hash_build_ms + nr * p.hash_probe_ms)
        elif isinstance(plan, MergeJoin):
            sort_ops = 0.0
            for n in (nl, nr):
                n = max(n, 2)
                sort_ops += 2.0 * n * np.log2(n)
            self._charge(sort_ops * p.op_ms + (nl + nr) * p.op_ms)
        self._charge(size * p.tuple_ms)
        self._check_rows(size)

        li, ri = pairs.materialize()
        combined = self._combine(left, right, li, ri)
        for pred in rest:
            a, b = self._orient_combined(pred, left, right)
            va = self._column(a.alias, a.column, query)[combined.row_ids[a.alias]]
            vb = self._column(b.alias, b.column, query)[combined.row_ids[b.alias]]
            self._charge(combined.n_rows * p.op_ms)
            keep = (va == vb) & _valid_mask(va) & _valid_mask(vb)
            combined = combined.take(np.nonzero(keep)[0])
        return combined

    @staticmethod
    def _orient(pred: JoinPredicate, left: _Relation, right: _Relation):
        """Return (left_side_ref, right_side_ref) matching the relations."""
        if pred.left.alias in left.row_ids:
            return pred.left, pred.right
        return pred.right, pred.left

    @staticmethod
    def _orient_combined(pred: JoinPredicate, left: _Relation, right: _Relation):
        return pred.left, pred.right

    @staticmethod
    def _combine(
        left: _Relation, right: _Relation, li: np.ndarray, ri: np.ndarray
    ) -> _Relation:
        row_ids = {alias: ids[li] for alias, ids in left.row_ids.items()}
        row_ids.update({alias: ids[ri] for alias, ids in right.row_ids.items()})
        return _Relation(row_ids)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def _run_aggregate(
        self, plan: _Aggregate, query: Query
    ) -> Tuple[int, Dict[str, np.ndarray]]:
        p = self.params
        child = self._run(plan.child, query)
        n = child.n_rows
        width = max(1, len(plan.group_by) + len(plan.aggregates))

        if isinstance(plan, HashAggregate):
            self._charge(n * p.hash_build_ms + n * width * p.op_ms)
        elif isinstance(plan, SortAggregate):
            nn = max(n, 2)
            self._charge(2.0 * nn * np.log2(nn) * p.op_ms + n * width * p.op_ms)
        else:  # pragma: no cover - exhaustive over _Aggregate subclasses
            raise TypeError(type(plan).__name__)

        if not plan.group_by:
            out: Dict[str, np.ndarray] = {}
            for agg in plan.aggregates:
                out[agg.render()] = np.asarray(
                    [self._agg_value(agg, child, np.arange(n), query)]
                )
            self._charge(p.tuple_ms)
            self._node_rows[id(plan)] = 1
            return 1, out

        key_cols = [
            self._column(r.alias, r.column, query)[child.row_ids[r.alias]]
            for r in plan.group_by
        ]
        if n == 0:
            self._node_rows[id(plan)] = 0
            return 0, {r.render(): np.empty(0) for r in plan.group_by}
        stacked = np.stack(key_cols, axis=1)
        order = np.lexsort(stacked.T[::-1])
        sorted_keys = stacked[order]
        change = np.any(np.diff(sorted_keys, axis=0) != 0, axis=1)
        group_starts = np.concatenate(([0], np.nonzero(change)[0] + 1))
        n_groups = len(group_starts)
        self._charge(n_groups * p.tuple_ms)
        self._check_rows(n_groups)

        out = {}
        for i, ref in enumerate(plan.group_by):
            out[ref.render()] = sorted_keys[group_starts, i]
        for agg in plan.aggregates:
            values = []
            bounds = np.concatenate((group_starts, [n]))
            for g in range(n_groups):
                seg = order[bounds[g] : bounds[g + 1]]
                values.append(self._agg_value(agg, child, seg, query))
            out[agg.render()] = np.asarray(values)
        self._node_rows[id(plan)] = n_groups
        return n_groups, out

    def _agg_value(self, agg, child: _Relation, positions: np.ndarray, query: Query):
        if agg.column is None:  # COUNT(*)
            return len(positions)
        col = self._column(agg.column.alias, agg.column.column, query)
        values = col[child.row_ids[agg.column.alias][positions]]
        valid = values[_valid_mask(values)]
        if agg.func == "count":
            return len(valid)
        if len(valid) == 0:
            return np.nan
        if agg.func == "sum":
            return float(valid.sum())
        if agg.func == "min":
            return float(valid.min())
        if agg.func == "max":
            return float(valid.max())
        if agg.func == "avg":
            return float(valid.mean())
        raise ValueError(f"unknown aggregate {agg.func!r}")
