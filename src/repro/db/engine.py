"""The :class:`Database` facade: tables + statistics + indexes + services.

This is the stand-in for a PostgreSQL instance: it owns the data, the
``ANALYZE`` statistics, the secondary indexes, and hands out the three
services every experiment needs — a cardinality estimator, a cost model,
and an executor.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.db.cardinality import (
    CardinalityModel,
    HistogramEstimator,
    QueryCardinalities,
)
from repro.db.costmodel import CostModel, CostParams, PlanCost
from repro.db.datagen import TableSpec, generate_database_tables
from repro.db.executor import ExecutionResult, Executor, SimParams
from repro.db.indexes import BTreeIndex, HashIndex
from repro.db.plans import PhysicalPlan, explain
from repro.db.query import Query
from repro.db.schema import DatabaseSchema, ForeignKey
from repro.db.statistics import TableStats, analyze_table
from repro.db.table import Table

__all__ = ["Database"]


@dataclass
class Database:
    """An in-memory database with PostgreSQL-like planner services."""

    schema: DatabaseSchema
    tables: Dict[str, Table]
    stats: Dict[str, TableStats] = field(default_factory=dict)
    btree_indexes: Dict[Tuple[str, str], BTreeIndex] = field(default_factory=dict)
    hash_indexes: Dict[Tuple[str, str], HashIndex] = field(default_factory=dict)
    cost_params: CostParams = field(default_factory=CostParams)
    sim_params: SimParams = field(default_factory=SimParams)
    #: Picklable recipe for the active cardinality lane: either a
    #: callable ``factory(schema, stats) -> CardinalityModel`` (usually
    #: the lane class itself) or a ready :class:`CardinalityModel`
    #: instance (a trained learned lane). Picklability matters: the
    #: process executor's ``WorkerSpec`` ships this whole object, and
    #: each worker shard rebuilds the same lane from it.
    estimator_factory: object = field(default=HistogramEstimator)
    #: The lazily built/bound active estimator. Ships in the pickle so
    #: worker shards inherit trained lane state.
    _estimator_instance: CardinalityModel | None = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Identity-keyed LRU of per-query cardinality estimates. A
    #: :class:`QueryCardinalities` memoizes its own subtree estimates, so
    #: sharing one instance per query object across an episode (and
    #: across episodes over a fixed workload) turns repeated estimation
    #: into dictionary lookups. Dropped wholesale on :meth:`analyze`.
    _cards_cache: "OrderedDict[int, Tuple[Query, QueryCardinalities]]" = field(
        default_factory=OrderedDict, init=False, repr=False, compare=False
    )
    #: Guards ``_cards_cache``: concurrent worker shards estimate
    #: cardinalities for different queries at the same time, and an
    #: unlocked OrderedDict corrupts under interleaved move_to_end/pop.
    _cards_lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )
    #: Bumped by every :meth:`analyze`. Derived caches that outlive this
    #: object's statistics (the planner's sub-plan cost memo) compare
    #: epochs instead of relying on every holder to invalidate manually.
    stats_epoch: int = field(default=0, init=False, repr=False, compare=False)
    #: Per-table statistics epochs, bumped for exactly the tables each
    #: :meth:`analyze` recomputed — the key to *partial* invalidation:
    #: a derived cache holding per-table provenance can evict only what
    #: a table-scoped ANALYZE actually staled.
    table_epochs: Dict[str, int] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    _CARDS_CACHE_CAPACITY = 512

    # ------------------------------------------------------------------
    # Pickling (multiprocess serving ships a Database to each worker)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Drop the lock and the identity-keyed estimate cache: the lock
        is process-local, and cached entries key on ``id(query)`` of
        objects that do not exist in the receiving process."""
        state = dict(self.__dict__)
        state["_cards_lock"] = None
        state["_cards_cache"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._cards_lock = threading.Lock()
        self._cards_cache = OrderedDict()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_specs(
        cls,
        specs: Sequence[TableSpec],
        foreign_keys: Sequence[ForeignKey] = (),
        seed: int = 0,
        analyze: bool = True,
        build_indexes: bool = True,
        sample_size: int = 30_000,
    ) -> "Database":
        """Generate, analyze, and index a synthetic database."""
        rng = np.random.default_rng(seed)
        tables = generate_database_tables(specs, rng)
        schema = DatabaseSchema(
            tables={spec.name: tables[spec.name].schema for spec in specs},
            foreign_keys=list(foreign_keys),
        )
        db = cls(schema=schema, tables=tables)
        if analyze:
            db.analyze(seed=seed + 1, sample_size=sample_size)
        if build_indexes:
            db.build_default_indexes()
        return db

    def analyze(
        self,
        seed: int = 1,
        sample_size: int = 30_000,
        tables: Sequence[str] | None = None,
    ) -> None:
        """Recompute statistics (like ``ANALYZE`` / ``ANALYZE table``).

        With ``tables`` given, only those tables are re-sampled — the
        cheap maintenance path after a localized data change. Either
        way the global ``stats_epoch`` and the per-table
        ``table_epochs`` move, so derived caches can tell exactly which
        statistics shifted under them.
        """
        names = list(self.tables) if tables is None else list(tables)
        unknown = [name for name in names if name not in self.tables]
        if unknown:
            raise KeyError(f"cannot ANALYZE unknown tables: {unknown}")
        rng = np.random.default_rng(seed)
        # Build the refreshed statistics aside and swap the whole dict
        # in one assignment: an estimator or cost model constructed
        # mid-refresh captured the old dict and keeps a complete,
        # self-consistent view (one epoch behind) instead of a torn mix
        # of old and new per-table statistics.
        new_stats = dict(self.stats)
        for name in names:
            new_stats[name] = analyze_table(
                self.tables[name], rng, sample_size=sample_size
            )
        self.stats = new_stats
        # Cached estimates were derived from the replaced statistics;
        # the per-query cache is cheap to rebuild, so drop it wholesale
        # rather than tracking which queries touch which tables here.
        # Clear and epoch bumps are one atomic step under the cache
        # lock, so a concurrent cardinalities() miss that snapshotted
        # the old epoch can never re-insert a stale estimate after the
        # clear. table_epochs moves before stats_epoch: a reader that
        # observes the new global epoch is guaranteed to observe the
        # new per-table epochs too (readers read stats_epoch first).
        with self._cards_lock:
            self._cards_cache.clear()
            for name in names:
                self.table_epochs[name] = self.table_epochs.get(name, 0) + 1
            self.stats_epoch += 1

    def bump_stats_epoch(self, tables: Sequence[str] | None = None) -> None:
        """Advance the statistics epochs *without* resampling.

        Same epoch/cache discipline as the tail of :meth:`analyze` —
        cache clear and bumps are one atomic step under the lock,
        ``table_epochs`` before ``stats_epoch`` — but the statistics
        themselves are untouched, so every plan computed before or
        after is identical. This is the chaos harness's stats-race
        injection point: it makes epoch-guarded cache puts *fire* (the
        guard skips the insert) while keeping plan parity checkable.
        """
        names = list(self.tables) if tables is None else list(tables)
        unknown = [name for name in names if name not in self.tables]
        if unknown:
            raise KeyError(f"cannot bump epochs for unknown tables: {unknown}")
        with self._cards_lock:
            self._cards_cache.clear()
            for name in names:
                self.table_epochs[name] = self.table_epochs.get(name, 0) + 1
            self.stats_epoch += 1

    def build_default_indexes(self) -> None:
        """B-tree every primary key and FK endpoint; hash every FK column.

        This mirrors the JOB/IMDB setup, where PK/FK columns are indexed
        so that index-scan access paths are genuinely available.
        """
        indexed: set[Tuple[str, str]] = set()
        for name, schema in self.schema.tables.items():
            if schema.primary_key is not None:
                indexed.add((name, schema.primary_key))
        for fk in self.schema.foreign_keys:
            indexed.add((fk.src_table, fk.src_column))
            indexed.add((fk.dst_table, fk.dst_column))
        for table, column in sorted(indexed):
            self.create_btree_index(table, column)
            self.create_hash_index(table, column)

    def create_btree_index(self, table: str, column: str) -> BTreeIndex:
        values = self.tables[table].column(column)
        index = BTreeIndex.build(table, column, values)
        self.btree_indexes[(table, column)] = index
        return index

    def create_hash_index(self, table: str, column: str) -> HashIndex:
        values = self.tables[table].column(column)
        index = HashIndex.build(table, column, values)
        self.hash_indexes[(table, column)] = index
        return index

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def index_on(self, table: str, column: str, kind: str = "btree"):
        if kind == "btree":
            return self.btree_indexes.get((table, column))
        if kind == "hash":
            return self.hash_indexes.get((table, column))
        raise ValueError(f"unknown index kind {kind!r}")

    def indexed_columns(self, table: str) -> List[str]:
        """Columns of ``table`` that have at least one index."""
        cols = {c for (t, c) in self.btree_indexes if t == table}
        cols |= {c for (t, c) in self.hash_indexes if t == table}
        return sorted(cols)

    @property
    def n_tables(self) -> int:
        return len(self.tables)

    def total_rows(self) -> int:
        return sum(t.n_rows for t in self.tables.values())

    # ------------------------------------------------------------------
    # Planner services
    # ------------------------------------------------------------------
    def estimator(self) -> CardinalityModel:
        """The active cardinality lane, built from ``estimator_factory``
        and rebound whenever :meth:`analyze` replaced the statistics.

        The instance is shared (per-lane counters and trained state must
        persist across calls); its estimate methods are read-only after
        :meth:`~CardinalityModel.bind`, so concurrent shard threads can
        use it without the cache lock.
        """
        inst = self._estimator_instance
        if inst is not None and inst.stats is self.stats:
            return inst
        with self._cards_lock:
            inst = self._estimator_instance
            if inst is None:
                factory = self.estimator_factory
                inst = (
                    factory
                    if isinstance(factory, CardinalityModel)
                    else factory(self.schema, self.stats)
                )
            if inst.stats is not self.stats or self._estimator_instance is None:
                inst.bind(self.schema, self.stats, self.table_epochs)
            self._estimator_instance = inst
        return inst

    def use_estimator(self, factory) -> CardinalityModel:
        """Swap the active cardinality lane.

        ``factory`` is a picklable ``(schema, stats) -> CardinalityModel``
        callable (usually the lane class) or a ready instance. Derived
        caches hold numbers from the old lane, so the swap bumps every
        statistics epoch — exactly the :meth:`bump_stats_epoch`
        discipline — before the new lane serves its first estimate.
        Returns the bound instance (e.g. to ``fit()`` a learned lane).
        """
        with self._cards_lock:
            self.estimator_factory = factory
            self._estimator_instance = None
        self.bump_stats_epoch()
        return self.estimator()

    @property
    def estimator_lane(self) -> str:
        """Name of the active cardinality lane (stamped through
        :class:`~repro.serving.service.ServedPlan`, counters, traces)."""
        return self.estimator().lane

    def estimator_probe(self) -> dict:
        """Lane, staleness, and per-lane counters for operator probes."""
        return self.estimator().probe()

    def cardinalities(self, query: Query) -> QueryCardinalities:
        """Per-query estimates, cached by query identity.

        The identity check (``is``, not equality) means a mutated or
        re-parsed query object always gets fresh estimates; only the
        exact same object — an episode loop, a workload replayed across
        episodes — shares the memoized instance.
        """
        with self._cards_lock:
            entry = self._cards_cache.get(id(query))
            if entry is not None and entry[0] is query:
                self._cards_cache.move_to_end(id(query))
                return entry[1]
            epoch = self.stats_epoch
        # Estimate outside the lock: concurrent shards estimating
        # different queries must not serialize on each other. Racing
        # duplicates for the same query are harmless (last write wins).
        cards = self.estimator().for_query(query)
        with self._cards_lock:
            if self.stats_epoch == epoch:
                # Skip the insert if an analyze() slipped in while we
                # estimated — caching a pre-ANALYZE estimate after the
                # clear would serve stale numbers until eviction.
                self._cards_cache[id(query)] = (query, cards)
                while len(self._cards_cache) > self._CARDS_CACHE_CAPACITY:
                    self._cards_cache.popitem(last=False)
        return cards

    def cost_model(self) -> CostModel:
        return CostModel(self.schema, self.stats, self.cost_params)

    def executor(
        self,
        budget_ms: float = float("inf"),
        max_intermediate_rows: int = 2_000_000,
    ) -> Executor:
        return Executor(
            self,
            params=self.sim_params,
            budget_ms=budget_ms,
            max_intermediate_rows=max_intermediate_rows,
        )

    # ------------------------------------------------------------------
    # Convenience entry points
    # ------------------------------------------------------------------
    def plan_cost(
        self,
        plan: PhysicalPlan,
        query: Query,
        cards: QueryCardinalities | None = None,
    ) -> PlanCost:
        """Cost-model opinion of a plan (the ReJOIN reward signal)."""
        return self.cost_model().cost(plan, cards or self.cardinalities(query))

    def execute_plan(
        self, plan: PhysicalPlan, query: Query, budget_ms: float = float("inf")
    ) -> ExecutionResult:
        """Actually execute a plan, returning rows and simulated latency."""
        return self.executor(budget_ms=budget_ms).execute(plan, query)

    def explain_analyze(
        self, plan: PhysicalPlan, query: Query, budget_ms: float = float("inf")
    ) -> str:
        """EXPLAIN ANALYZE-style text: estimated vs actual rows per node."""
        cards = self.cardinalities(query)
        cost_model = self.cost_model()
        result = self.execute_plan(plan, query, budget_ms=budget_ms)

        def annotate(node: PhysicalPlan) -> str:
            est = cards.plan_rows(node)
            cost = cost_model.cost(node, cards)
            actual = result.actual_rows(node)
            actual_text = "never executed" if actual is None else f"{actual}"
            return f"cost={cost.total:.1f} est_rows={est:.0f} actual_rows={actual_text}"

        header = (
            f"latency={result.latency_ms:.2f}ms"
            + (" (BUDGET EXCEEDED)" if result.timed_out else "")
            + f" output_rows={result.rows}\n"
        )
        return header + explain(plan, annotate)
