"""Query IR, SQL rendering, and a small SQL parser.

A :class:`Query` is a conjunctive select-project-join block with
optional grouped aggregation — the JOB shape the paper evaluates on.
Aliases are first-class (JOB uses self-joins like two ``info_type``
instances), so relations are an ``alias -> table`` mapping.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from repro.db.predicates import (
    BetweenPredicate,
    ColumnRef,
    CompareOp,
    Comparison,
    InPredicate,
    JoinPredicate,
    Predicate,
)
from repro.db.schema import DatabaseSchema

__all__ = ["AggregateSpec", "Query", "QueryJoinGraph", "parse_query", "QueryParseError"]

AGG_FUNCS = ("count", "sum", "min", "max", "avg")


class QueryJoinGraph:
    """Bitset view of a query's join graph, derived once and cached.

    Every join-search pass used to re-derive the alias order, the
    alias -> bit-index map, and the adjacency structure from the raw
    predicate list. This object computes them once per query:

    - ``aliases`` / ``index`` — sorted alias order and its inverse;
    - ``adjacency[i]`` — bitmask of aliases sharing a join predicate
      with alias ``i`` (all join predicates are equi-joins, so this is
      also the per-pair equi-predicate presence table);
    - ``edges`` — the join predicates as ``(left_bit, right_bit,
      predicate)`` triples in declaration order, so subset selectivity
      products can filter by mask without touching alias strings while
      multiplying in exactly the order the estimator does.

    Obtain it through :meth:`Query.join_graph_index`, which caches the
    instance on the query object.
    """

    __slots__ = ("aliases", "index", "n", "adjacency", "edges", "_token")

    def __init__(self, query: "Query") -> None:
        self.aliases: List[str] = sorted(query.relations)
        self.index: Dict[str, int] = {a: i for i, a in enumerate(self.aliases)}
        n = len(self.aliases)
        self.n = n
        self.adjacency: List[int] = [0] * n
        self.edges: List[Tuple[int, int, JoinPredicate]] = []
        for pred in query.joins:
            i = self.index[pred.left.alias]
            j = self.index[pred.right.alias]
            self.adjacency[i] |= 1 << j
            self.adjacency[j] |= 1 << i
            self.edges.append((1 << i, 1 << j, pred))
        self._token = (len(query.relations), len(query.joins))

    def mask_of(self, aliases) -> int:
        """Bitmask of an alias collection."""
        mask = 0
        index = self.index
        for alias in aliases:
            mask |= 1 << index[alias]
        return mask

    def aliases_of(self, mask: int) -> List[str]:
        return [a for i, a in enumerate(self.aliases) if mask & (1 << i)]

    def neighbors(self, mask: int) -> int:
        """Union of adjacency over the members of ``mask``."""
        reach = 0
        adjacency = self.adjacency
        m = mask
        while m:
            low = m & -m
            reach |= adjacency[low.bit_length() - 1]
            m ^= low
        return reach


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate output, e.g. ``min(t.production_year)``."""

    func: str
    column: ColumnRef | None  # None means COUNT(*)

    def __post_init__(self) -> None:
        if self.func not in AGG_FUNCS:
            raise ValueError(f"unsupported aggregate {self.func!r}")
        if self.func != "count" and self.column is None:
            raise ValueError(f"{self.func} requires a column argument")

    def render(self) -> str:
        arg = "*" if self.column is None else self.column.render()
        return f"{self.func.upper()}({arg})"


@dataclass
class Query:
    """A conjunctive SPJ(+aggregate) query block."""

    name: str
    relations: Dict[str, str]  # alias -> table
    selections: List[Predicate] = field(default_factory=list)
    joins: List[JoinPredicate] = field(default_factory=list)
    group_by: List[ColumnRef] = field(default_factory=list)
    aggregates: List[AggregateSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.relations:
            raise ValueError("query needs at least one relation")
        for pred in self.selections:
            if pred.column.alias not in self.relations:
                raise ValueError(f"selection references unknown alias: {pred.render()}")
        for join in self.joins:
            for side in (join.left, join.right):
                if side.alias not in self.relations:
                    raise ValueError(f"join references unknown alias: {join.render()}")
        for ref in self.group_by:
            if ref.alias not in self.relations:
                raise ValueError(f"GROUP BY references unknown alias {ref.alias!r}")

    # ------------------------------------------------------------------
    @property
    def aliases(self) -> List[str]:
        return sorted(self.relations)

    @property
    def n_relations(self) -> int:
        return len(self.relations)

    def table_of(self, alias: str) -> str:
        try:
            return self.relations[alias]
        except KeyError:
            raise KeyError(f"unknown alias {alias!r} in query {self.name}") from None

    def selections_for(self, alias: str) -> List[Predicate]:
        return [p for p in self.selections if p.column.alias == alias]

    def joins_between(
        self, left_aliases: Sequence[str], right_aliases: Sequence[str]
    ) -> List[JoinPredicate]:
        """Join predicates linking the two alias collections.

        Sets/frozensets make the membership tests O(1); tuples and lists
        work too (hot callers pass ``JoinTree.aliases`` frozensets).
        """
        return [j for j in self.joins if j.connects(left_aliases, right_aliases)]

    def join_graph_index(self) -> QueryJoinGraph:
        """The cached bitset join-graph derivation for this query.

        Derived lazily on first use and reused by every join-search and
        masking pass afterwards. Queries are treated as immutable once
        built (the database's cardinality cache already relies on
        this); as cheap insurance the cache is refreshed if the
        relation or join counts have visibly changed.
        """
        cached: QueryJoinGraph | None = self.__dict__.get("_join_graph_index")
        if cached is not None and cached._token == (
            len(self.relations),
            len(self.joins),
        ):
            return cached
        jg = QueryJoinGraph(self)
        self.__dict__["_join_graph_index"] = jg
        return jg

    def join_graph(self) -> nx.Graph:
        """Undirected alias graph; edges carry their join predicates."""
        graph = nx.Graph()
        graph.add_nodes_from(self.relations)
        for join in self.joins:
            a, b = sorted(join.aliases)
            if graph.has_edge(a, b):
                graph.edges[a, b]["predicates"].append(join)
            else:
                graph.add_edge(a, b, predicates=[join])
        return graph

    def is_connected(self) -> bool:
        return nx.is_connected(self.join_graph())

    def validate_against(self, schema: DatabaseSchema) -> None:
        """Raise if any alias/table/column does not exist in ``schema``."""
        for alias, table in self.relations.items():
            if table not in schema.tables:
                raise KeyError(f"query {self.name}: unknown table {table!r}")
        refs = [p.column for p in self.selections]
        refs += [j.left for j in self.joins] + [j.right for j in self.joins]
        refs += list(self.group_by)
        refs += [a.column for a in self.aggregates if a.column is not None]
        for ref in refs:
            table = self.table_of(ref.alias)
            if not schema.tables[table].has_column(ref.column):
                raise KeyError(
                    f"query {self.name}: unknown column {table}.{ref.column}"
                )

    # ------------------------------------------------------------------
    def sql(self) -> str:
        """Render back to SQL text (parsable by :func:`parse_query`)."""
        if self.aggregates:
            select = ", ".join(a.render() for a in self.aggregates)
        else:
            select = "*"
        if self.group_by:
            select_refs = ", ".join(r.render() for r in self.group_by)
            select = f"{select_refs}, {select}" if select != "*" else select_refs
        from_items = ", ".join(
            f"{table} AS {alias}" if table != alias else table
            for alias, table in sorted(self.relations.items())
        )
        conjuncts = [j.render() for j in self.joins] + [
            p.render() for p in self.selections
        ]
        sql = f"SELECT {select} FROM {from_items}"
        if conjuncts:
            sql += " WHERE " + " AND ".join(conjuncts)
        if self.group_by:
            sql += " GROUP BY " + ", ".join(r.render() for r in self.group_by)
        return sql + ";"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Query({self.name!r}, {self.n_relations} relations)"


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


class QueryParseError(ValueError):
    """Raised when SQL text cannot be parsed into a :class:`Query`."""


_COLREF = r"([A-Za-z_]\w*)\.([A-Za-z_]\w*)"
_NUM = r"(-?\d+(?:\.\d+)?)"
_RE_JOIN = re.compile(rf"^{_COLREF}\s*=\s*{_COLREF}$")
_RE_CMP = re.compile(rf"^{_COLREF}\s*(=|<>|!=|<=|>=|<|>)\s*{_NUM}$")
_RE_BETWEEN = re.compile(rf"^{_COLREF}\s+BETWEEN\s+{_NUM}\s+AND\s+{_NUM}$", re.I)
_RE_IN = re.compile(rf"^{_COLREF}\s+IN\s*\(([^)]*)\)$", re.I)
_RE_AGG = re.compile(r"^(count|sum|min|max|avg)\s*\(\s*(\*|[A-Za-z_]\w*\.[A-Za-z_]\w*)\s*\)$", re.I)

_OP_MAP = {
    "=": CompareOp.EQ,
    "<>": CompareOp.NE,
    "!=": CompareOp.NE,
    "<": CompareOp.LT,
    "<=": CompareOp.LE,
    ">": CompareOp.GT,
    ">=": CompareOp.GE,
}


def _split_where(where: str) -> List[str]:
    """Split a WHERE clause on top-level ANDs.

    Parenthesis-aware (IN lists) and BETWEEN-aware: the first AND after a
    BETWEEN keyword belongs to the BETWEEN, not the conjunction.
    """
    parts: List[str] = []
    depth = 0
    token: List[str] = []
    pending_between = False
    i = 0
    upper = where.upper()
    while i < len(where):
        ch = where[i]
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if depth == 0 and upper[i : i + 9] == " BETWEEN ":
            pending_between = True
        if depth == 0 and upper[i : i + 5] == " AND ":
            if pending_between:
                pending_between = False
            else:
                parts.append("".join(token).strip())
                token = []
                i += 5
                continue
        token.append(ch)
        i += 1
    if token:
        parts.append("".join(token).strip())
    return [p for p in parts if p]


def _parse_conjunct(text: str) -> Predicate | JoinPredicate:
    m = _RE_JOIN.match(text)
    if m:
        a1, c1, a2, c2 = m.groups()
        return JoinPredicate(ColumnRef(a1, c1), ColumnRef(a2, c2))
    m = _RE_CMP.match(text)
    if m:
        alias, col, op, num = m.groups()
        return Comparison(ColumnRef(alias, col), _OP_MAP[op], float(num))
    m = _RE_BETWEEN.match(text)
    if m:
        alias, col, lo, hi = m.groups()
        return BetweenPredicate(ColumnRef(alias, col), float(lo), float(hi))
    m = _RE_IN.match(text)
    if m:
        alias, col, items = m.groups()
        values = tuple(float(v.strip()) for v in items.split(",") if v.strip())
        return InPredicate(ColumnRef(alias, col), values)
    raise QueryParseError(f"cannot parse WHERE conjunct: {text!r}")


def _parse_select_item(text: str) -> AggregateSpec | ColumnRef:
    m = _RE_AGG.match(text)
    if m:
        func, arg = m.group(1).lower(), m.group(2)
        if arg == "*":
            return AggregateSpec("count", None)
        alias, col = arg.split(".")
        return AggregateSpec(func, ColumnRef(alias, col))
    m = re.match(rf"^{_COLREF}$", text)
    if m:
        return ColumnRef(m.group(1), m.group(2))
    raise QueryParseError(f"cannot parse SELECT item: {text!r}")


def parse_query(sql: str, name: str = "q") -> Query:
    """Parse a restricted SQL SELECT into a :class:`Query`.

    Supported grammar (the JOB shape)::

        SELECT * | agg_list | group_cols, agg_list
        FROM t1 [AS a1], t2 [AS a2], ...
        WHERE conj AND conj AND ...
        [GROUP BY a.col, ...] ;

    where each ``conj`` is an equi-join ``a.x = b.y``, a comparison with
    a numeric literal, ``BETWEEN``, or ``IN (...)``.
    """
    text = " ".join(sql.strip().rstrip(";").split())
    m = re.match(
        r"^SELECT\s+(?P<select>.*?)\s+FROM\s+(?P<from>.*?)"
        r"(?:\s+WHERE\s+(?P<where>.*?))?(?:\s+GROUP\s+BY\s+(?P<group>.*?))?$",
        text,
        re.I,
    )
    if not m:
        raise QueryParseError(f"not a SELECT statement: {sql!r}")

    relations: Dict[str, str] = {}
    for item in m.group("from").split(","):
        parts = item.strip().split()
        if len(parts) == 1:
            table = alias = parts[0]
        elif len(parts) == 3 and parts[1].upper() == "AS":
            table, alias = parts[0], parts[2]
        elif len(parts) == 2:
            table, alias = parts
        else:
            raise QueryParseError(f"cannot parse FROM item: {item!r}")
        if alias in relations:
            raise QueryParseError(f"duplicate alias {alias!r}")
        relations[alias] = table

    selections: List[Predicate] = []
    joins: List[JoinPredicate] = []
    if m.group("where"):
        for conjunct in _split_where(m.group("where")):
            parsed = _parse_conjunct(conjunct)
            if isinstance(parsed, JoinPredicate):
                joins.append(parsed)
            else:
                selections.append(parsed)

    group_by: List[ColumnRef] = []
    if m.group("group"):
        for item in m.group("group").split(","):
            ref = _parse_select_item(item.strip())
            if not isinstance(ref, ColumnRef):
                raise QueryParseError("GROUP BY items must be column references")
            group_by.append(ref)

    aggregates: List[AggregateSpec] = []
    select_text = m.group("select").strip()
    if select_text != "*":
        for item in select_text.split(","):
            parsed = _parse_select_item(item.strip())
            if isinstance(parsed, AggregateSpec):
                aggregates.append(parsed)
            elif parsed not in group_by:
                group_by.append(parsed)

    return Query(
        name=name,
        relations=relations,
        selections=selections,
        joins=joins,
        group_by=group_by,
        aggregates=aggregates,
    )
