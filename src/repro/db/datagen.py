"""Synthetic data generation with skew, correlation, and FK consistency.

The paper's evaluation database (IMDB) is interesting precisely because
it is *hard* for a traditional optimizer: values are Zipf-skewed, columns
are correlated, and fan-outs vary wildly, so independence/uniformity
assumptions misestimate cardinalities (Leis et al., "How Good Are Query
Optimizers, Really?"). This generator reproduces those properties:

- ``zipf``-skewed categorical columns,
- foreign keys sampled with skew (a few "famous" parents get most
  children — the IMDB fan-out shape),
- columns that are deterministic-plus-noise functions of another column
  (correlation breaks the independence assumption),
- optional NULLs via the :data:`~repro.db.schema.NULL_INT` sentinel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.db.schema import NULL_INT, Column, DataType, TableSchema
from repro.db.table import Table

__all__ = ["ColumnSpec", "TableSpec", "generate_table", "generate_database_tables"]


@dataclass(frozen=True)
class ColumnSpec:
    """Recipe for one synthetic column.

    ``distinct`` is the domain size for categorical columns. ``skew`` is
    the Zipf exponent (0 = uniform). ``fk_to`` names a ``table.column``
    the values must be drawn from. ``correlated_with`` names a sibling
    column; values become ``(sibling * mult) % distinct`` with
    ``noise_frac`` of rows re-randomized, producing strong-but-imperfect
    correlation.
    """

    name: str
    dtype: DataType = DataType.INT
    distinct: int = 100
    skew: float = 0.0
    fk_to: str | None = None
    correlated_with: str | None = None
    noise_frac: float = 0.1
    null_frac: float = 0.0
    primary_key: bool = False

    def to_column(self) -> Column:
        return Column(self.name, self.dtype, nullable=self.null_frac > 0)


@dataclass(frozen=True)
class TableSpec:
    """Recipe for one synthetic table."""

    name: str
    n_rows: int
    columns: Sequence[ColumnSpec]

    @property
    def primary_key(self) -> str | None:
        for spec in self.columns:
            if spec.primary_key:
                return spec.name
        return None

    def to_schema(self) -> TableSchema:
        return TableSchema(
            self.name,
            tuple(spec.to_column() for spec in self.columns),
            primary_key=self.primary_key,
        )


def _zipf_weights(n: int, skew: float) -> np.ndarray:
    """Normalized Zipf weights over ``n`` ranks (uniform when skew == 0)."""
    if n <= 0:
        raise ValueError("domain size must be positive")
    if skew <= 0:
        return np.full(n, 1.0 / n)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    return weights / weights.sum()


def _skewed_choice(
    rng: np.random.Generator, domain: np.ndarray, size: int, skew: float
) -> np.ndarray:
    weights = _zipf_weights(len(domain), skew)
    return rng.choice(domain, size=size, p=weights)


def generate_table(
    spec: TableSpec,
    rng: np.random.Generator,
    fk_domains: Dict[str, np.ndarray] | None = None,
) -> Table:
    """Generate one table.

    ``fk_domains`` maps ``"table.column"`` to the parent key array each
    FK column must draw from; pass the already-generated parents.
    """
    fk_domains = fk_domains or {}
    n = spec.n_rows
    columns: Dict[str, np.ndarray] = {}
    for col in spec.columns:
        if col.primary_key:
            columns[col.name] = np.arange(n, dtype=np.int64)
            continue
        if col.fk_to is not None:
            if col.fk_to not in fk_domains:
                raise KeyError(
                    f"{spec.name}.{col.name}: missing FK domain {col.fk_to!r}"
                )
            parent = fk_domains[col.fk_to]
            # Skewed parent popularity: shuffle so popular keys are arbitrary.
            shuffled = rng.permutation(parent)
            values = _skewed_choice(rng, shuffled, n, col.skew)
            columns[col.name] = values.astype(np.int64)
        elif col.correlated_with is not None:
            base = columns.get(col.correlated_with)
            if base is None:
                raise KeyError(
                    f"{spec.name}.{col.name}: correlated column "
                    f"{col.correlated_with!r} must be generated first"
                )
            mult = 2654435761  # Knuth multiplicative hash, keeps mapping 1:1-ish
            values = (np.abs(base) * mult) % max(col.distinct, 1)
            n_noise = int(col.noise_frac * n)
            if n_noise > 0:
                idx = rng.choice(n, size=n_noise, replace=False)
                values[idx] = rng.integers(0, max(col.distinct, 1), size=n_noise)
            columns[col.name] = values.astype(np.int64)
        elif col.dtype is DataType.FLOAT:
            columns[col.name] = rng.uniform(0.0, float(col.distinct), size=n)
        else:
            domain = np.arange(col.distinct, dtype=np.int64)
            columns[col.name] = _skewed_choice(rng, domain, n, col.skew).astype(
                np.int64
            )
        if col.null_frac > 0:
            n_null = int(col.null_frac * n)
            if n_null > 0:
                idx = rng.choice(n, size=n_null, replace=False)
                if col.dtype is DataType.FLOAT:
                    columns[col.name][idx] = np.nan
                else:
                    columns[col.name][idx] = NULL_INT
    return Table(spec.to_schema(), columns)


def generate_database_tables(
    specs: Sequence[TableSpec], rng: np.random.Generator
) -> Dict[str, Table]:
    """Generate a set of tables, resolving FK dependencies in spec order.

    Raises if a spec references a parent that appears later (specs must
    be topologically ordered parents-first, which the workload modules
    guarantee by construction).
    """
    tables: Dict[str, Table] = {}
    fk_domains: Dict[str, np.ndarray] = {}
    for spec in specs:
        table = generate_table(spec, rng, fk_domains)
        tables[spec.name] = table
        for col in spec.columns:
            fk_domains[f"{spec.name}.{col.name}"] = table.column(col.name)
    return tables
