"""``ANALYZE``-style statistics: histograms, MCVs, distinct counts.

Statistics are computed from a bounded random sample, like PostgreSQL's
``ANALYZE``; estimation error from sampling, bucket-uniformity, and the
independence assumption is *deliberate* — it is what makes the expert's
cost model imperfect, which Section 4 of the paper depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.db.schema import NULL_INT
from repro.db.table import Table

__all__ = ["ColumnStats", "TableStats", "analyze_table"]

DEFAULT_SAMPLE_SIZE = 30_000
DEFAULT_N_BUCKETS = 100
DEFAULT_N_MCVS = 25


@dataclass
class ColumnStats:
    """Statistics for one column, mirroring ``pg_stats``."""

    n_rows: int
    null_frac: float
    n_distinct: float
    min_value: float
    max_value: float
    #: Most common values and their frequencies (fractions of all rows).
    mcv_values: np.ndarray = field(default_factory=lambda: np.empty(0))
    mcv_freqs: np.ndarray = field(default_factory=lambda: np.empty(0))
    #: Equi-depth histogram bounds over non-MCV values (len = buckets + 1).
    histogram_bounds: np.ndarray = field(default_factory=lambda: np.empty(0))
    #: Fraction of rows not covered by MCVs (and not NULL).
    hist_frac: float = 0.0

    # ------------------------------------------------------------------
    # Selectivity estimation
    # ------------------------------------------------------------------
    def selectivity_eq(self, value: float) -> float:
        """P(col = value), PostgreSQL ``eqsel``-style."""
        if self.n_rows == 0:
            return 0.0
        matches = np.nonzero(self.mcv_values == value)[0]
        if matches.size:
            return float(self.mcv_freqs[matches[0]])
        remaining_distinct = max(self.n_distinct - len(self.mcv_values), 1.0)
        return min(1.0, self.hist_frac / remaining_distinct)

    def selectivity_range(
        self,
        lo: float | None,
        hi: float | None,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> float:
        """P(lo <= col <= hi) with open ends allowed."""
        if self.n_rows == 0:
            return 0.0
        total = 0.0
        # MCV contribution is exact.
        for value, freq in zip(self.mcv_values, self.mcv_freqs):
            if self._in_range(value, lo, hi, lo_inclusive, hi_inclusive):
                total += float(freq)
        total += self.hist_frac * self._hist_range_frac(lo, hi)
        return float(np.clip(total, 0.0, 1.0))

    def selectivity_in(self, values: Sequence[float]) -> float:
        return float(np.clip(sum(self.selectivity_eq(v) for v in values), 0.0, 1.0))

    def selectivity_ne(self, value: float) -> float:
        return float(np.clip(1.0 - self.null_frac - self.selectivity_eq(value), 0.0, 1.0))

    # ------------------------------------------------------------------
    # Upper bounds (the pessimistic estimator lane)
    # ------------------------------------------------------------------
    def max_freq(self) -> float:
        """Upper bound on any single value's frequency (fraction of rows).

        With MCVs this is the top most-common-value frequency — no
        non-MCV value can exceed it. Without MCVs (no non-null values
        sampled, or no statistics) nothing is known, so the bound is
        the whole non-null fraction.
        """
        if self.mcv_freqs.size:
            return float(self.mcv_freqs.max())
        return 1.0 - self.null_frac

    def selectivity_eq_upper(self, value: float) -> float:
        """Upper bound on P(col = value), always >= :meth:`selectivity_eq`.

        An MCV match is bounded by its measured frequency; a non-MCV
        value cannot be more frequent than the *least* common MCV (it
        would have made the list), falling back to the whole histogram
        mass when there are no MCVs at all.
        """
        if self.n_rows == 0:
            return 0.0
        base = self.selectivity_eq(value)
        matches = np.nonzero(self.mcv_values == value)[0]
        if matches.size:
            return float(self.mcv_freqs[matches[0]])
        bound = float(self.mcv_freqs.min()) if self.mcv_freqs.size else self.hist_frac
        return float(np.clip(max(base, bound), 0.0, 1.0))

    def selectivity_range_upper(
        self,
        lo: float | None,
        hi: float | None,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> float:
        """Upper bound on P(lo <= col <= hi): the uniform-in-bucket
        interpolation of :meth:`selectivity_range` under-counts when
        values skew within a bucket, so every partially-covered bucket
        is counted in full here. Always >= :meth:`selectivity_range`."""
        if self.n_rows == 0:
            return 0.0
        base = self.selectivity_range(lo, hi, lo_inclusive, hi_inclusive)
        total = 0.0
        for value, freq in zip(self.mcv_values, self.mcv_freqs):
            if self._in_range(value, lo, hi, lo_inclusive, hi_inclusive):
                total += float(freq)
        bounds = self.histogram_bounds
        if len(bounds) < 2:
            frac = 1.0
        else:
            lo_pos = 0.0 if lo is None else self._hist_position_floor(lo)
            hi_pos = 1.0 if hi is None else self._hist_position_ceil(hi)
            frac = max(0.0, hi_pos - lo_pos)
        total += self.hist_frac * frac
        return float(np.clip(max(base, total), 0.0, 1.0))

    def selectivity_in_upper(self, values: Sequence[float]) -> float:
        return float(
            np.clip(sum(self.selectivity_eq_upper(v) for v in values), 0.0, 1.0)
        )

    def selectivity_ne_upper(self, value: float) -> float:
        """Upper bound on P(col != value): everything non-null."""
        return float(np.clip(1.0 - self.null_frac, 0.0, 1.0))

    def _hist_position_floor(self, value: float) -> float:
        """Cumulative mass fraction at the start of ``value``'s bucket."""
        bucket, n_buckets = self._hist_bucket(value)
        if bucket < 0:
            return 0.0
        if bucket >= n_buckets:
            return 1.0
        return bucket / n_buckets

    def _hist_position_ceil(self, value: float) -> float:
        """Cumulative mass fraction at the end of ``value``'s bucket."""
        bucket, n_buckets = self._hist_bucket(value)
        if bucket < 0:
            return 0.0
        if bucket >= n_buckets:
            return 1.0
        return (bucket + 1) / n_buckets

    def _hist_bucket(self, value: float) -> Tuple[int, int]:
        """Bucket index of ``value`` (-1 below, n_buckets above range)."""
        bounds = self.histogram_bounds
        n_buckets = len(bounds) - 1
        if value < bounds[0]:
            return -1, n_buckets
        if value >= bounds[-1]:
            return n_buckets, n_buckets
        bucket = int(np.searchsorted(bounds, value, side="right")) - 1
        return min(bucket, n_buckets - 1), n_buckets

    @staticmethod
    def _in_range(value, lo, hi, lo_inc, hi_inc) -> bool:
        if lo is not None and (value < lo or (value == lo and not lo_inc)):
            return False
        if hi is not None and (value > hi or (value == hi and not hi_inc)):
            return False
        return True

    def _hist_range_frac(self, lo: float | None, hi: float | None) -> float:
        """Fraction of histogram mass inside [lo, hi] (uniform-in-bucket)."""
        bounds = self.histogram_bounds
        if len(bounds) < 2:
            return 1.0 if (lo is None and hi is None) else 0.5
        lo_pos = 0.0 if lo is None else self._hist_position(lo)
        hi_pos = 1.0 if hi is None else self._hist_position(hi)
        return max(0.0, hi_pos - lo_pos)

    def _hist_position(self, value: float) -> float:
        """Cumulative fraction of histogram mass below ``value``."""
        bounds = self.histogram_bounds
        n_buckets = len(bounds) - 1
        if value <= bounds[0]:
            return 0.0
        if value >= bounds[-1]:
            return 1.0
        bucket = int(np.searchsorted(bounds, value, side="right")) - 1
        bucket = min(bucket, n_buckets - 1)
        lo_b, hi_b = bounds[bucket], bounds[bucket + 1]
        within = 0.5 if hi_b == lo_b else (value - lo_b) / (hi_b - lo_b)
        return (bucket + within) / n_buckets


@dataclass
class TableStats:
    """Row count plus per-column statistics for one table."""

    n_rows: int
    n_pages: int
    columns: Dict[str, ColumnStats]

    def column(self, name: str) -> ColumnStats:
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(f"no statistics for column {name!r}") from None


def _column_stats(
    values: np.ndarray,
    n_rows: int,
    sample_ratio: float,
    n_buckets: int,
    n_mcvs: int,
) -> ColumnStats:
    is_float = values.dtype.kind == "f"
    if is_float:
        null_mask = np.isnan(values)
    else:
        null_mask = values == NULL_INT
    non_null = values[~null_mask]
    null_frac = float(null_mask.mean()) if len(values) else 0.0
    if non_null.size == 0:
        return ColumnStats(n_rows, null_frac, 0.0, 0.0, 0.0)

    uniques, counts = np.unique(non_null, return_counts=True)
    # Scale sampled distinct count to the full table (simple linear scale,
    # a deliberate source of estimation error like real ANALYZE).
    sample_distinct = len(uniques)
    if sample_ratio >= 1.0:
        n_distinct = float(sample_distinct)
    else:
        seen_once = float((counts == 1).sum())
        # Values seen multiple times in a sample are likely common; scale
        # only the singletons (a crude Goodman-style correction).
        n_distinct = min(
            float(n_rows),
            sample_distinct + seen_once * (1.0 / sample_ratio - 1.0) * 0.5,
        )

    order = np.argsort(counts)[::-1]
    n_mcv = min(n_mcvs, len(uniques))
    mcv_idx = order[:n_mcv]
    sample_n = len(non_null)
    mcv_values = uniques[mcv_idx].astype(np.float64)
    mcv_freqs = counts[mcv_idx] / sample_n * (1.0 - null_frac)

    mcv_set_mask = np.isin(non_null, uniques[mcv_idx])
    rest = non_null[~mcv_set_mask]
    hist_frac = float((1.0 - null_frac) * (len(rest) / sample_n)) if sample_n else 0.0
    if rest.size >= 2:
        qs = np.linspace(0.0, 1.0, min(n_buckets, max(1, rest.size // 2)) + 1)
        bounds = np.quantile(rest, qs)
    else:
        bounds = np.empty(0)

    return ColumnStats(
        n_rows=n_rows,
        null_frac=null_frac,
        n_distinct=max(1.0, n_distinct),
        min_value=float(non_null.min()),
        max_value=float(non_null.max()),
        mcv_values=mcv_values,
        mcv_freqs=mcv_freqs,
        histogram_bounds=np.asarray(bounds, dtype=np.float64),
        hist_frac=hist_frac,
    )


def analyze_table(
    table: Table,
    rng: np.random.Generator,
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    n_buckets: int = DEFAULT_N_BUCKETS,
    n_mcvs: int = DEFAULT_N_MCVS,
) -> TableStats:
    """Compute statistics for every column of ``table`` from a sample."""
    n = table.n_rows
    if n > sample_size:
        sample_ids = rng.choice(n, size=sample_size, replace=False)
        sample_ratio = sample_size / n
    else:
        sample_ids = np.arange(n)
        sample_ratio = 1.0
    columns = {
        name: _column_stats(arr[sample_ids], n, sample_ratio, n_buckets, n_mcvs)
        for name, arr in table.columns.items()
    }
    return TableStats(n_rows=n, n_pages=table.n_pages, columns=columns)
