"""Predicate IR: selections and equi-join predicates.

The workload is conjunctive select-project-join (the JOB shape), so the
IR covers column/constant comparisons, BETWEEN, IN, and equi-joins.
Every selection predicate can evaluate itself against a numpy column,
and NULL sentinels never match any comparison (SQL three-valued logic
restricted to WHERE semantics).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.db.schema import NULL_INT

__all__ = [
    "ColumnRef",
    "CompareOp",
    "Comparison",
    "BetweenPredicate",
    "InPredicate",
    "JoinPredicate",
    "Predicate",
    "predicate_signature",
]


@dataclass(frozen=True, order=True)
class ColumnRef:
    """A column reference ``alias.column`` (alias may equal the table name)."""

    alias: str
    column: str

    def render(self) -> str:
        return f"{self.alias}.{self.column}"


class CompareOp(enum.Enum):
    """Comparison operators usable in selection predicates."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def apply(self, values: np.ndarray, constant: float) -> np.ndarray:
        if self is CompareOp.EQ:
            return values == constant
        if self is CompareOp.NE:
            return values != constant
        if self is CompareOp.LT:
            return values < constant
        if self is CompareOp.LE:
            return values <= constant
        if self is CompareOp.GT:
            return values > constant
        return values >= constant


def _non_null_mask(values: np.ndarray) -> np.ndarray:
    if values.dtype.kind == "f":
        return ~np.isnan(values)
    return values != NULL_INT


@dataclass(frozen=True)
class Comparison:
    """``col <op> constant``."""

    column: ColumnRef
    op: CompareOp
    value: float

    def evaluate(self, values: np.ndarray) -> np.ndarray:
        return self.op.apply(values, self.value) & _non_null_mask(values)

    def render(self) -> str:
        value = int(self.value) if float(self.value).is_integer() else self.value
        return f"{self.column.render()} {self.op.value} {value}"


@dataclass(frozen=True)
class BetweenPredicate:
    """``col BETWEEN lo AND hi`` (inclusive both ends)."""

    column: ColumnRef
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"BETWEEN bounds reversed: {self.lo} > {self.hi}")

    def evaluate(self, values: np.ndarray) -> np.ndarray:
        return (values >= self.lo) & (values <= self.hi) & _non_null_mask(values)

    def render(self) -> str:
        return f"{self.column.render()} BETWEEN {self.lo:g} AND {self.hi:g}"


@dataclass(frozen=True)
class InPredicate:
    """``col IN (v1, v2, ...)``."""

    column: ColumnRef
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("IN list must not be empty")

    def evaluate(self, values: np.ndarray) -> np.ndarray:
        return np.isin(values, np.asarray(self.values)) & _non_null_mask(values)

    def render(self) -> str:
        items = ", ".join(
            str(int(v)) if float(v).is_integer() else str(v) for v in self.values
        )
        return f"{self.column.render()} IN ({items})"


#: Any selection predicate usable in a WHERE conjunction.
Predicate = Comparison | BetweenPredicate | InPredicate


def predicate_signature(pred: "Predicate") -> str:
    """Render a selection predicate with the alias stripped out.

    The shared cache-key primitive: query fingerprints and sub-plan
    cost memo keys both need a name-free rendering that two equivalent
    predicates produce identically. Constants use ``repr`` (full float
    precision) so predicates that differ only past the sixth
    significant digit never share a key.
    """
    column = pred.column.column
    if isinstance(pred, Comparison):
        return f"?.{column} {pred.op.value} {pred.value!r}"
    if isinstance(pred, BetweenPredicate):
        return f"?.{column} BETWEEN {pred.lo!r} AND {pred.hi!r}"
    if isinstance(pred, InPredicate):
        values = ",".join(repr(v) for v in sorted(pred.values))
        return f"?.{column} IN ({values})"
    # Unknown predicate type: fall back to its own rendering minus the
    # alias prefix, so new predicate kinds degrade gracefully.
    rendered = pred.render()
    prefix = f"{pred.column.alias}."
    return "?." + rendered[len(prefix):] if rendered.startswith(prefix) else rendered


@dataclass(frozen=True)
class JoinPredicate:
    """Equi-join ``left.col = right.col`` between two aliases."""

    left: ColumnRef
    right: ColumnRef

    def __post_init__(self) -> None:
        if self.left.alias == self.right.alias:
            raise ValueError("join predicate must span two different aliases")

    @property
    def aliases(self) -> frozenset:
        return frozenset((self.left.alias, self.right.alias))

    def side_for(self, alias: str) -> ColumnRef:
        if self.left.alias == alias:
            return self.left
        if self.right.alias == alias:
            return self.right
        raise KeyError(f"alias {alias!r} not part of {self.render()}")

    def connects(self, left_aliases: Sequence[str], right_aliases: Sequence[str]) -> bool:
        """True if this predicate joins the two alias sets."""
        la, ra = self.left.alias, self.right.alias
        return (la in left_aliases and ra in right_aliases) or (
            ra in left_aliases and la in right_aliases
        )

    def render(self) -> str:
        return f"{self.left.render()} = {self.right.render()}"
