"""The supervised cardinality lane: MSCN-light on executor truth.

:class:`LearnedEstimator` plugs into the
:class:`~repro.db.cardinality.CardinalityModel` hook with a small MLP
(the repo's own ``nn`` stack — no external deps) trained on
(sub-plan -> observed rows) pairs harvested from the executor's
per-node row counts (``ExecutionResult.actual_rows``). In the MSCN
spirit the featurization is a fixed-width set encoding — table
multi-hot plus aggregate selection/join statistics — and, like Neo's
"best of both worlds" trick, the histogram lane's own estimate rides
along as an input so the net only has to learn the *systematic
residual* (the independence-assumption underestimate that compounds
with join count on skewed data), not absolute cardinalities from
scratch.

Staleness follows the per-table epoch machinery: training stamps the
database's ``table_epochs``, and an estimate is served only while every
member table's epoch still matches — an ``analyze()`` invalidates
learned estimates exactly like cached plans, falling back to the
histogram formula until :meth:`LearnedEstimator.fit` runs again.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.db.cardinality import CardinalityModel, QueryCardinalities
from repro.db.plans import IndexScan, PhysicalPlan, SeqScan, _Aggregate, _Join
from repro.db.query import Query
from repro.db.schema import DatabaseSchema
from repro.db.statistics import TableStats

__all__ = [
    "LearnedEstimator",
    "SubPlanFeaturizer",
    "TrainingPair",
    "harvest_training_pairs",
    "subplan_alias_sets",
]

#: One supervised example: the query, the sub-plan's alias set, and the
#: executor-observed output rows of a node joining exactly that set.
TrainingPair = Tuple[Query, frozenset, int]

#: Predicted residuals are clamped to e**+-8 (~3000x either way): a
#: wild extrapolation from a small net must not produce estimates worse
#: than the histogram prior it corrects.
_MAX_LOG_RESIDUAL = 8.0


class SubPlanFeaturizer:
    """Fixed-width features for a (query, alias-set) pair.

    Schema-derived and picklable. Everything numeric is log-scaled;
    the histogram prior (the product-formula estimate for the same
    set) is the most informative input — the net learns a correction
    to it.
    """

    def __init__(self, schema: DatabaseSchema) -> None:
        self.tables = sorted(schema.tables)
        self._table_index = {t: i for i, t in enumerate(self.tables)}
        #: table multi-hot counts + [n_aliases, n_join_edges,
        #: n_selections, log1p(hist_est), sum log1p(scan_rows),
        #: sum log1p(base_rows), sum -log(join_sel)]
        self.n_features = len(self.tables) + 7

    def features(self, cards: QueryCardinalities, aliases: frozenset) -> np.ndarray:
        query = cards.query
        x = np.zeros(self.n_features, dtype=np.float64)
        n_tables = len(self.tables)
        scan_log = 0.0
        base_log = 0.0
        n_selections = 0
        for alias in aliases:
            idx = self._table_index.get(query.table_of(alias))
            if idx is not None:
                x[idx] += 1.0
            scan_log += np.log1p(cards.scan_rows(alias))
            base_log += np.log1p(cards.base_rows(alias))
            n_selections += len(query.selections_for(alias))
        join_log = 0.0
        n_edges = 0
        for pred in query.joins:
            if pred.left.alias in aliases and pred.right.alias in aliases:
                n_edges += 1
                join_log -= np.log(max(cards.join_selectivity(pred), 1e-12))
        x[n_tables + 0] = float(len(aliases))
        x[n_tables + 1] = float(n_edges)
        x[n_tables + 2] = float(n_selections)
        x[n_tables + 3] = np.log1p(cards.histogram_rows_for_aliases(aliases))
        x[n_tables + 4] = scan_log
        x[n_tables + 5] = base_log
        x[n_tables + 6] = join_log
        return x


class LearnedEstimator(CardinalityModel):
    """Supervised lane: histogram substrate + a residual-correcting MLP.

    Untrained (or epoch-stale for any member table) it is
    estimate-for-estimate the histogram lane; trained, it overrides
    whole alias-set estimates through ``alias_set_rows``. Not
    product-form — the bitset DP routes subset estimates through
    :meth:`QueryCardinalities.rows_for_aliases` instead of its
    incremental mask products.
    """

    lane = "learned"
    product_form = False

    def __init__(
        self,
        schema: DatabaseSchema,
        stats: Dict[str, TableStats],
        hidden: Sequence[int] = (64, 32),
        seed: int = 0,
    ) -> None:
        super().__init__(schema, stats)
        self.hidden = list(hidden)
        self.seed = seed
        self.featurizer = SubPlanFeaturizer(schema)
        self.model = None  # an MLP once fit() has run
        self._feat_mean: np.ndarray | None = None
        self._feat_std: np.ndarray | None = None
        #: ``table -> stats epoch`` snapshot taken when fit() finished;
        #: None until first training.
        self.trained_epochs: Dict[str, int] | None = None
        self.counts.update({"learned": 0, "stale_fallbacks": 0})
        #: Serializes forward passes: the nn layers cache activations on
        #: self, so concurrent thread-shard predictions would race.
        self._lock = threading.Lock()

    # -- pickling (process-executor WorkerSpec ships the Database) ------
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_lock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def is_trained(self) -> bool:
        return self.model is not None

    def stale_tables(self) -> List[str]:
        """Tables whose statistics epoch moved since the last fit()."""
        if self.trained_epochs is None:
            return []
        return sorted(
            name
            for name, live in self._table_epochs.items()
            if self.trained_epochs.get(name, 0) != live
        )

    def probe(self) -> Dict[str, object]:
        stale = self.stale_tables()
        return {
            "lane": self.lane,
            "trained": self.is_trained(),
            "stale": bool(stale),
            "stale_tables": stale,
            "counts": dict(self.counts),
        }

    def _stale_for(self, query: Query, aliases: frozenset) -> bool:
        trained = self.trained_epochs
        if trained is None:
            return True
        epochs = self._table_epochs
        for alias in aliases:
            table = query.table_of(alias)
            if trained.get(table, 0) != epochs.get(table, 0):
                return True
        return False

    # ------------------------------------------------------------------
    def alias_set_rows(self, cards, aliases):
        if self.model is None:
            self.counts["fallbacks"] += 1
            return None
        if self._stale_for(cards.query, aliases):
            # Per-table invalidation: only sets touching a re-ANALYZEd
            # table fall back; the rest keep serving learned estimates.
            self.counts["stale_fallbacks"] += 1
            self.counts["fallbacks"] += 1
            return None
        x = self.featurizer.features(cards, aliases)
        z = (x - self._feat_mean) / self._feat_std
        with self._lock:
            residual = float(self.model.forward(z)[0, 0])
        residual = float(np.clip(residual, -_MAX_LOG_RESIDUAL, _MAX_LOG_RESIDUAL))
        prior = cards.histogram_rows_for_aliases(aliases)
        self.counts["learned"] += 1
        return max(1.0, prior * float(np.exp(residual)))

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(
        self,
        db,
        pairs: Sequence[TrainingPair],
        epochs: int = 300,
        batch_size: int = 64,
        lr: float = 3e-3,
    ) -> Dict[str, float]:
        """Train the residual net on (sub-plan -> observed rows) pairs
        and stamp the database's current per-table epochs.

        ``db`` supplies per-query cardinality facades for featurization
        and the epoch snapshot. Returns training diagnostics.
        """
        from repro.nn.network import MLP

        if not pairs:
            raise ValueError("fit() needs at least one training pair")
        feats = []
        targets = []
        for query, aliases, actual in pairs:
            cards = db.cardinalities(query)
            x = self.featurizer.features(cards, aliases)
            prior = cards.histogram_rows_for_aliases(aliases)
            feats.append(x)
            targets.append(np.log(max(1.0, float(actual)) / prior))
        x_all = np.asarray(feats, dtype=np.float64)
        y_all = np.clip(
            np.asarray(targets, dtype=np.float64),
            -_MAX_LOG_RESIDUAL,
            _MAX_LOG_RESIDUAL,
        )
        self._feat_mean = x_all.mean(axis=0)
        self._feat_std = np.where(x_all.std(axis=0) > 1e-9, x_all.std(axis=0), 1.0)
        z_all = (x_all - self._feat_mean) / self._feat_std

        rng = np.random.default_rng(self.seed)
        model = MLP(
            self.featurizer.n_features, self.hidden, 1, rng=rng, lr=lr
        )
        n = len(z_all)
        last_loss = float("inf")
        for _ in range(epochs):
            order = rng.permutation(n)
            losses = []
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                zb, yb = z_all[idx], y_all[idx][:, None]

                def mse(out, yb=yb):
                    err = out - yb
                    return float((err**2).mean()), 2.0 * err / len(err)

                losses.append(model.train_step(zb, mse))
            last_loss = float(np.mean(losses))
        with self._lock:
            self.model = model
        # Estimates served while untrained (histogram fallbacks) are
        # memoized in per-query facades and downstream cost memos; flush
        # them with the standard epoch discipline, then stamp the *new*
        # epochs so the fresh model is immediately live. Serving stacks
        # that cached plans across this fit should run their own
        # statistics-refresh path (the epoch bump makes their guarded
        # cache puts fire, exactly like an ANALYZE race).
        db.bump_stats_epoch()
        self.trained_epochs = {
            name: db.table_epochs.get(name, 0) for name in self.schema.tables
        }
        return {"pairs": float(n), "final_loss": last_loss, "epochs": float(epochs)}


# ----------------------------------------------------------------------
# Harvesting executor truth
# ----------------------------------------------------------------------
def subplan_alias_sets(plan: PhysicalPlan) -> List[Tuple[PhysicalPlan, frozenset]]:
    """Every (node, alias-set) of a physical plan's scan/join nodes."""
    out: List[Tuple[PhysicalPlan, frozenset]] = []

    def walk(node: PhysicalPlan) -> frozenset:
        if isinstance(node, (SeqScan, IndexScan)):
            aliases = frozenset((node.alias,))
        elif isinstance(node, _Join):
            aliases = walk(node.left) | walk(node.right)
        elif isinstance(node, _Aggregate):
            return walk(node.child)
        else:
            raise TypeError(f"unknown plan node {type(node).__name__}")
        out.append((node, aliases))
        return aliases

    walk(plan)
    return out


def harvest_training_pairs(
    db,
    queries: Iterable[Query],
    planner=None,
    budget_ms: float = 1e9,
) -> List[TrainingPair]:
    """Execute one expert plan per query and collect every sub-plan's
    observed row count — the supervised signal the learned lane trains
    on. Nodes the executor never reached (budget cutoffs) are skipped;
    duplicate alias sets within a query keep the first observation
    (deeper joins re-observe the same set only on bushy plans).
    """
    from repro.optimizer.planner import Planner

    planner = planner or Planner(db)
    pairs: List[TrainingPair] = []
    for query in queries:
        tree = planner.choose_join_order(query)
        plan = planner.complete_plan(tree, query, include_aggregate=False)
        result = db.execute_plan(plan, query, budget_ms=budget_ms)
        seen: set = set()
        for node, aliases in subplan_alias_sets(plan):
            actual = result.actual_rows(node)
            if actual is None or aliases in seen:
                continue
            seen.add(aliases)
            pairs.append((query, aliases, int(actual)))
    return pairs
