"""Logical join trees and physical operator trees.

The paper's agents act on two plan representations:

- :class:`JoinTree` — the binary logical join tree ReJOIN builds
  bottom-up (paper §3, Figure 2). Leaves are relation *aliases*;
  internal nodes are joins.
- physical operator trees — scans (sequential or index), joins
  (nested-loop / hash / merge), and aggregates (hash / sort), the
  outputs of the full optimization pipeline of Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Callable, Dict, Iterator, List, Tuple

from repro.db.predicates import ColumnRef, JoinPredicate, Predicate
from repro.db.query import AggregateSpec

__all__ = [
    "JoinTree",
    "PhysicalPlan",
    "SeqScan",
    "IndexScan",
    "NestedLoopJoin",
    "HashJoin",
    "MergeJoin",
    "HashAggregate",
    "SortAggregate",
    "JOIN_OPERATORS",
    "AGGREGATE_OPERATORS",
    "explain",
]


# ----------------------------------------------------------------------
# Logical join trees
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class JoinTree:
    """An immutable binary join tree over relation aliases.

    Exactly one of (``alias``) or (``left``, ``right``) is set.
    """

    alias: str | None = None
    left: "JoinTree | None" = None
    right: "JoinTree | None" = None
    aliases: frozenset = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.alias is not None:
            if self.left is not None or self.right is not None:
                raise ValueError("leaf node cannot have children")
            object.__setattr__(self, "aliases", frozenset((self.alias,)))
        else:
            if self.left is None or self.right is None:
                raise ValueError("join node needs both children")
            overlap = self.left.aliases & self.right.aliases
            if overlap:
                raise ValueError(f"children share aliases: {sorted(overlap)}")
            object.__setattr__(self, "aliases", self.left.aliases | self.right.aliases)

    # Constructors ------------------------------------------------------
    @classmethod
    def leaf(cls, alias: str) -> "JoinTree":
        return cls(alias=alias)

    @classmethod
    def join(cls, left: "JoinTree", right: "JoinTree") -> "JoinTree":
        return cls(left=left, right=right)

    @classmethod
    def left_deep(cls, aliases: List[str]) -> "JoinTree":
        """Build a left-deep tree joining aliases in the given order."""
        if not aliases:
            raise ValueError("need at least one alias")
        tree = cls.leaf(aliases[0])
        for alias in aliases[1:]:
            tree = cls.join(tree, cls.leaf(alias))
        return tree

    # Inspection --------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        return self.alias is not None

    @property
    def n_leaves(self) -> int:
        return len(self.aliases)

    @property
    def height(self) -> int:
        """Leaf height is 0."""
        if self.is_leaf:
            return 0
        return 1 + max(self.left.height, self.right.height)

    def leaf_depths(self) -> Dict[str, int]:
        """Depth of every alias measured from this subtree's root (root=0)."""
        depths: Dict[str, int] = {}

        def walk(node: "JoinTree", depth: int) -> None:
            if node.is_leaf:
                depths[node.alias] = depth
            else:
                walk(node.left, depth + 1)
                walk(node.right, depth + 1)

        walk(self, 0)
        return depths

    def iter_joins(self) -> Iterator["JoinTree"]:
        """Yield internal (join) nodes bottom-up, left before right."""
        if not self.is_leaf:
            yield from self.left.iter_joins()
            yield from self.right.iter_joins()
            yield self

    def render(self) -> str:
        if self.is_leaf:
            return self.alias
        return f"({self.left.render()} JOIN {self.right.render()})"


# ----------------------------------------------------------------------
# Physical plans
# ----------------------------------------------------------------------


class PhysicalPlan:
    """Base class for physical operator nodes.

    ``aliases`` is a :func:`~functools.cached_property` on every node
    type: operator selection and join-predicate routing consult it
    constantly, and recomputing the recursive union on each access made
    plan construction quadratic in plan size. (``cached_property``
    writes straight into ``__dict__``, which sidesteps the frozen-
    dataclass ``__setattr__`` guard — the value is derived, not state.)
    """

    @property
    def aliases(self) -> frozenset:
        raise NotImplementedError

    @property
    def children(self) -> Tuple["PhysicalPlan", ...]:
        return ()

    def label(self) -> str:
        raise NotImplementedError

    def iter_nodes(self) -> Iterator["PhysicalPlan"]:
        """Yield nodes depth-first, children before parents."""
        for child in self.children:
            yield from child.iter_nodes()
        yield self


@dataclass(frozen=True)
class SeqScan(PhysicalPlan):
    """Full-table scan of ``table`` (as ``alias``) with pushed-down filters."""

    alias: str
    table: str
    predicates: Tuple[Predicate, ...] = ()

    @cached_property
    def aliases(self) -> frozenset:
        return frozenset((self.alias,))

    def label(self) -> str:
        name = f"SeqScan({self.table}" + (
            f" AS {self.alias})" if self.alias != self.table else ")"
        )
        if self.predicates:
            name += " filter: " + " AND ".join(p.render() for p in self.predicates)
        return name


@dataclass(frozen=True)
class IndexScan(PhysicalPlan):
    """Index lookup on ``index_column`` with residual filters.

    ``index_predicate`` must constrain ``alias.index_column``; B-tree
    indexes accept equality/range/IN predicates, hash indexes equality
    and IN only.
    """

    alias: str
    table: str
    index_column: str
    index_predicate: Predicate
    residual: Tuple[Predicate, ...] = ()
    kind: str = "btree"

    def __post_init__(self) -> None:
        if self.kind not in ("btree", "hash"):
            raise ValueError(f"unknown index kind {self.kind!r}")
        if self.index_predicate.column.column != self.index_column:
            raise ValueError(
                f"index predicate {self.index_predicate.render()} does not match "
                f"index column {self.index_column!r}"
            )

    @cached_property
    def aliases(self) -> frozenset:
        return frozenset((self.alias,))

    def label(self) -> str:
        name = (
            f"IndexScan[{self.kind}]({self.table}.{self.index_column}"
            + (f" AS {self.alias})" if self.alias != self.table else ")")
        )
        name += " cond: " + self.index_predicate.render()
        if self.residual:
            name += " filter: " + " AND ".join(p.render() for p in self.residual)
        return name


@dataclass(frozen=True)
class _Join(PhysicalPlan):
    left: PhysicalPlan
    right: PhysicalPlan
    predicates: Tuple[JoinPredicate, ...] = ()

    def __post_init__(self) -> None:
        overlap = self.left.aliases & self.right.aliases
        if overlap:
            raise ValueError(f"join children share aliases: {sorted(overlap)}")
        for pred in self.predicates:
            if not pred.connects(tuple(self.left.aliases), tuple(self.right.aliases)):
                raise ValueError(
                    f"predicate {pred.render()} does not connect the join inputs"
                )

    @cached_property
    def aliases(self) -> frozenset:
        return self.left.aliases | self.right.aliases

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    @property
    def is_cross_product(self) -> bool:
        return not self.predicates

    def _cond(self) -> str:
        if not self.predicates:
            return " (cross product)"
        return " cond: " + " AND ".join(p.render() for p in self.predicates)


@dataclass(frozen=True)
class NestedLoopJoin(_Join):
    """Tuple-at-a-time nested loops; the only operator allowed for cross
    products and the catastrophic choice for large equi-joins."""

    def label(self) -> str:
        return "NestedLoopJoin" + self._cond()


@dataclass(frozen=True)
class HashJoin(_Join):
    """Build on the left input, probe with the right; equi-joins only."""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.predicates:
            raise ValueError("hash join requires at least one equi-join predicate")

    def label(self) -> str:
        return "HashJoin" + self._cond()


@dataclass(frozen=True)
class MergeJoin(_Join):
    """Sort both inputs on the join key and merge; equi-joins only."""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.predicates:
            raise ValueError("merge join requires at least one equi-join predicate")

    def label(self) -> str:
        return "MergeJoin" + self._cond()


@dataclass(frozen=True)
class _Aggregate(PhysicalPlan):
    child: PhysicalPlan
    group_by: Tuple[ColumnRef, ...] = ()
    aggregates: Tuple[AggregateSpec, ...] = ()

    @cached_property
    def aliases(self) -> frozenset:
        return self.child.aliases

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def _spec(self) -> str:
        parts = []
        if self.group_by:
            parts.append("group: " + ", ".join(r.render() for r in self.group_by))
        if self.aggregates:
            parts.append("aggs: " + ", ".join(a.render() for a in self.aggregates))
        return (" " + "; ".join(parts)) if parts else ""


@dataclass(frozen=True)
class HashAggregate(_Aggregate):
    """Grouped aggregation via a hash table."""

    def label(self) -> str:
        return "HashAggregate" + self._spec()


@dataclass(frozen=True)
class SortAggregate(_Aggregate):
    """Grouped aggregation by sorting on the grouping key."""

    def label(self) -> str:
        return "SortAggregate" + self._spec()


#: Join operator constructors, in the order the staged action space uses.
JOIN_OPERATORS: Tuple[type, ...] = (HashJoin, MergeJoin, NestedLoopJoin)
#: Aggregate operator constructors, in staged action-space order.
AGGREGATE_OPERATORS: Tuple[type, ...] = (HashAggregate, SortAggregate)


def explain(
    plan: PhysicalPlan,
    annotate: Callable[[PhysicalPlan], str] | None = None,
) -> str:
    """Pretty-print a physical plan, optionally annotating each node
    (e.g. with estimated/actual rows or costs)."""
    lines: List[str] = []

    def walk(node: PhysicalPlan, indent: int) -> None:
        suffix = f"  [{annotate(node)}]" if annotate else ""
        lines.append("  " * indent + "-> " + node.label() + suffix)
        for child in node.children:
            walk(child, indent + 1)

    walk(plan, 0)
    return "\n".join(lines)
