"""An in-memory relational engine standing in for PostgreSQL.

The paper trains against PostgreSQL: its optimizer supplies the expert
demonstrations and the cost-model reward, and its execution engine
supplies query latency. This package rebuilds the pieces of that stack
the paper actually exercises:

- column storage over numpy arrays (:mod:`repro.db.table`),
- FK-consistent skewed synthetic data (:mod:`repro.db.datagen`),
- ``ANALYZE``-style statistics: histograms, MCVs, distinct counts
  (:mod:`repro.db.statistics`),
- a selectivity/cardinality estimator with PostgreSQL's independence
  and uniformity assumptions (:mod:`repro.db.cardinality`),
- logical join trees and physical operator trees (:mod:`repro.db.plans`),
- a PostgreSQL-shaped cost model (:mod:`repro.db.costmodel`),
- secondary indexes (:mod:`repro.db.indexes`),
- an executor that *really executes* plans on the stored data and
  reports a deterministic simulated latency (:mod:`repro.db.executor`),
- a :class:`~repro.db.engine.Database` facade tying it all together.

The executor's latency is computed from **actual** row counts while the
cost model works from **estimated** ones; the gap between the two
signals is exactly the cost-model-vs-latency mismatch that Section 4 of
the paper builds its argument on.
"""

from repro.db.cardinality import (
    CardinalityModel,
    HistogramEstimator,
    PessimisticEstimator,
    QueryCardinalities,
    q_error,
)
from repro.db.engine import Database
from repro.db.learned_cardinality import LearnedEstimator, harvest_training_pairs
from repro.db.plans import (
    HashAggregate,
    HashJoin,
    IndexScan,
    JoinTree,
    MergeJoin,
    NestedLoopJoin,
    PhysicalPlan,
    SeqScan,
    SortAggregate,
    explain,
)
from repro.db.query import Query, parse_query
from repro.db.schema import Column, DatabaseSchema, DataType, ForeignKey, TableSchema

__all__ = [
    "CardinalityModel",
    "Column",
    "Database",
    "HistogramEstimator",
    "LearnedEstimator",
    "PessimisticEstimator",
    "QueryCardinalities",
    "DatabaseSchema",
    "DataType",
    "ForeignKey",
    "HashAggregate",
    "HashJoin",
    "IndexScan",
    "JoinTree",
    "MergeJoin",
    "NestedLoopJoin",
    "PhysicalPlan",
    "Query",
    "SeqScan",
    "SortAggregate",
    "TableSchema",
    "explain",
    "harvest_training_pairs",
    "parse_query",
    "q_error",
]
