"""Column-oriented table storage over numpy arrays."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.db.schema import DataType, TableSchema

__all__ = ["Table"]


@dataclass
class Table:
    """An in-memory table: one numpy array per column, equal lengths."""

    schema: TableSchema
    columns: Dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        expected = set(self.schema.column_names)
        got = set(self.columns)
        if expected != got:
            raise ValueError(
                f"table {self.schema.name}: column mismatch "
                f"(missing {sorted(expected - got)}, extra {sorted(got - expected)})"
            )
        lengths = {name: len(arr) for name, arr in self.columns.items()}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"table {self.schema.name}: ragged columns {lengths}")
        for col in self.schema.columns:
            arr = self.columns[col.name]
            want = col.dtype.numpy_dtype
            if str(arr.dtype) != want:
                raise ValueError(
                    f"{self.schema.name}.{col.name}: dtype {arr.dtype}, expected {want}"
                )

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def n_rows(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @property
    def n_pages(self) -> int:
        """Approximate page count for an 8 KiB page size."""
        rows_per_page = max(1, 8192 // self.schema.row_width_bytes)
        return max(1, -(-self.n_rows // rows_per_page))

    def column(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(f"no column {name!r} in table {self.name}") from None

    def gather(self, name: str, row_ids: np.ndarray) -> np.ndarray:
        """Column values at the given row positions."""
        return self.columns[name][row_ids]

    def head(self, n: int = 5) -> Dict[str, np.ndarray]:
        return {name: arr[:n] for name, arr in self.columns.items()}

    @classmethod
    def from_dict(cls, schema: TableSchema, data: Dict[str, list]) -> "Table":
        """Build a table from plain Python lists (used heavily in tests)."""
        columns = {}
        for col in schema.columns:
            dtype = np.float64 if col.dtype is DataType.FLOAT else np.int64
            columns[col.name] = np.asarray(data[col.name], dtype=dtype)
        return cls(schema, columns)
