"""Schema objects: columns, tables, foreign keys, and the join graph.

All column data is stored as int64 (integers, dictionary-encoded
strings) or float64. ``NULL`` is represented by a sentinel value so that
whole-column numpy operations remain branch-free; predicates and joins
never match the sentinel.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

import networkx as nx

__all__ = [
    "NULL_INT",
    "DataType",
    "Column",
    "TableSchema",
    "ForeignKey",
    "DatabaseSchema",
]

#: Sentinel stored in int64 columns to represent SQL NULL.
NULL_INT = -(2**62)


class DataType(enum.Enum):
    """Storage type of a column."""

    INT = "int"
    FLOAT = "float"
    #: Dictionary-encoded string: stored as int64 codes.
    STR = "str"

    @property
    def numpy_dtype(self) -> str:
        return "float64" if self is DataType.FLOAT else "int64"


@dataclass(frozen=True)
class Column:
    """A column definition."""

    name: str
    dtype: DataType = DataType.INT
    nullable: bool = False

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ValueError(f"invalid column name {self.name!r}")


@dataclass(frozen=True)
class TableSchema:
    """A table definition: ordered columns plus an optional primary key."""

    name: str
    columns: Tuple[Column, ...]
    primary_key: str | None = None

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ValueError(f"invalid table name {self.name!r}")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in table {self.name}")
        if self.primary_key is not None and self.primary_key not in names:
            raise ValueError(
                f"primary key {self.primary_key!r} is not a column of {self.name}"
            )

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(f"no column {name!r} in table {self.name}")

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    @property
    def row_width_bytes(self) -> int:
        """Approximate on-disk row width, used for page-count costing."""
        return 8 * len(self.columns) + 24  # 24 bytes of tuple header


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key edge ``src_table.src_column -> dst_table.dst_column``."""

    src_table: str
    src_column: str
    dst_table: str
    dst_column: str

    def render(self) -> str:
        return (
            f"{self.src_table}.{self.src_column} -> "
            f"{self.dst_table}.{self.dst_column}"
        )


@dataclass
class DatabaseSchema:
    """A database: named tables plus foreign keys forming the join graph."""

    tables: Dict[str, TableSchema] = field(default_factory=dict)
    foreign_keys: List[ForeignKey] = field(default_factory=list)

    def __post_init__(self) -> None:
        for fk in self.foreign_keys:
            self._validate_fk(fk)

    def _validate_fk(self, fk: ForeignKey) -> None:
        for table, column in (
            (fk.src_table, fk.src_column),
            (fk.dst_table, fk.dst_column),
        ):
            if table not in self.tables:
                raise KeyError(f"foreign key references unknown table {table!r}")
            if not self.tables[table].has_column(column):
                raise KeyError(f"foreign key references unknown column {table}.{column}")

    def add_table(self, table: TableSchema) -> None:
        if table.name in self.tables:
            raise ValueError(f"duplicate table {table.name!r}")
        self.tables[table.name] = table

    def add_foreign_key(self, fk: ForeignKey) -> None:
        self._validate_fk(fk)
        self.foreign_keys.append(fk)

    @property
    def table_names(self) -> List[str]:
        return sorted(self.tables)

    def column(self, table: str, name: str) -> Column:
        if table not in self.tables:
            raise KeyError(f"unknown table {table!r}")
        return self.tables[table].column(name)

    def join_graph(self) -> nx.Graph:
        """Undirected graph over tables; edges carry their foreign keys."""
        graph = nx.Graph()
        graph.add_nodes_from(self.tables)
        for fk in self.foreign_keys:
            if graph.has_edge(fk.src_table, fk.dst_table):
                graph.edges[fk.src_table, fk.dst_table]["fks"].append(fk)
            else:
                graph.add_edge(fk.src_table, fk.dst_table, fks=[fk])
        return graph

    def foreign_keys_between(self, a: str, b: str) -> List[ForeignKey]:
        return [
            fk
            for fk in self.foreign_keys
            if {fk.src_table, fk.dst_table} == {a, b}
        ]

    def is_foreign_key_pair(self, ta: str, ca: str, tb: str, cb: str) -> bool:
        """True if ``ta.ca = tb.cb`` matches a declared FK in either direction."""
        for fk in self.foreign_keys:
            if (fk.src_table, fk.src_column, fk.dst_table, fk.dst_column) in (
                (ta, ca, tb, cb),
                (tb, cb, ta, ca),
            ):
                return True
        return False

    def all_columns(self) -> Iterable[Tuple[str, Column]]:
        """Yield ``(table_name, column)`` pairs in deterministic order."""
        for name in self.table_names:
            for col in self.tables[name].columns:
                yield name, col
