"""A small policy-gradient reinforcement-learning framework.

Provides the two algorithm families the paper's agents use: REINFORCE
with a learned value baseline (the classic policy-gradient method of
[37]) and PPO with a clipped surrogate (the "smooth policy change"
method of [29] that ReJOIN trained with). Both operate over masked
discrete action spaces — the action set shrinks as relations are
combined, so every state carries a validity mask.
"""

from repro.rl.env import Environment, StepResult, Trajectory, Transition, rollout
from repro.rl.policy import CategoricalPolicy
from repro.rl.ppo import PPOAgent, PPOConfig
from repro.rl.reinforce import ReinforceAgent, ReinforceConfig
from repro.rl.schedules import ConstantSchedule, ExponentialSchedule, LinearSchedule
from repro.rl.vector_env import VectorRolloutEngine

__all__ = [
    "CategoricalPolicy",
    "ConstantSchedule",
    "Environment",
    "ExponentialSchedule",
    "LinearSchedule",
    "PPOAgent",
    "PPOConfig",
    "ReinforceAgent",
    "ReinforceConfig",
    "StepResult",
    "Trajectory",
    "Transition",
    "VectorRolloutEngine",
    "rollout",
]
