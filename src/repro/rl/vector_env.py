"""Lockstep batched episode collection (the training-side twin of the
serving layer's micro-batch engine).

:func:`repro.rl.env.rollout` runs one episode at a time, which means
every policy decision is a batch-1 forward pass. Training throughput is
the binding constraint on every experiment (the paper's optimizer only
gets good over thousands of episodes), and the policy network scores a
matrix of states for nearly the price of one row. This engine steps a
set of independent environment clones in lockstep: each round stacks
the state vectors and masks of every unfinished episode, makes ONE
``CategoricalPolicy.act_batch`` call, and applies each episode's chosen
action. Finished episodes immediately hand their slot to the next
pending episode, so the batch stays full until the work runs out.

Sampling uses the same inverse-CDF primitive as serving, so a masked
action is never selected; greedy collection produces exactly the plans
sequential collection would (asserted by the parity tests and the
training-throughput bench).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.rl.env import Trajectory, Transition

__all__ = ["VectorRolloutEngine"]


@dataclass
class _Slot:
    """One in-flight episode: which env runs it and where it stands."""

    env: object
    episode: int
    trajectory: Trajectory
    state: np.ndarray
    mask: np.ndarray
    steps: int = 0


class VectorRolloutEngine:
    """Steps ``len(envs)`` episodes in lockstep with stacked forwards."""

    def __init__(self, envs: Sequence, policy) -> None:
        if not envs:
            raise ValueError("need at least one environment")
        self.envs = list(envs)
        self.policy = policy
        #: Forward passes made / states scored, for throughput reporting.
        self.forward_passes = 0
        self.states_scored = 0

    def collect(
        self,
        episodes: int,
        rng: np.random.Generator | None = None,
        greedy: bool = False,
        max_steps: int = 1000,
        queries=None,
    ) -> List[Trajectory]:
        """Collect ``episodes`` full episodes, returned in start order.

        ``queries`` (optional) pins episode ``k`` to ``queries[k]`` via
        ``env.reset(query)`` — the evaluation path; without it each
        reset samples from the env's own workload, consuming the shared
        rng stream in episode order exactly like sequential collection.
        """
        if queries is not None:
            episodes = len(queries)
        trajectories: List[Trajectory | None] = [None] * episodes

        def start(env, episode: int) -> _Slot:
            state, mask = (
                env.reset(queries[episode]) if queries is not None else env.reset()
            )
            return _Slot(env, episode, Trajectory(), state, mask)

        next_episode = 0
        slots: List[_Slot] = []
        for env in self.envs[: min(len(self.envs), episodes)]:
            slots.append(start(env, next_episode))
            next_episode += 1

        while slots:
            states = np.stack([s.state for s in slots])
            masks = np.stack([s.mask for s in slots])
            actions, log_probs = self.policy.act_batch(states, masks, rng, greedy)
            self.forward_passes += 1
            self.states_scored += len(slots)
            survivors: List[_Slot] = []
            for slot, action, log_prob in zip(slots, actions, log_probs):
                result = slot.env.step(int(action))
                slot.trajectory.transitions.append(
                    Transition(
                        slot.state, slot.mask, int(action), result.reward, float(log_prob)
                    )
                )
                slot.trajectory.info.update(result.info)
                slot.steps += 1
                if result.done:
                    trajectories[slot.episode] = slot.trajectory
                    if next_episode < episodes:
                        survivors.append(start(slot.env, next_episode))
                        next_episode += 1
                elif slot.steps >= max_steps:
                    raise RuntimeError(
                        f"episode exceeded {max_steps} steps — env not terminating?"
                    )
                else:
                    slot.state, slot.mask = result.state, result.mask
                    survivors.append(slot)
            slots = survivors
        return trajectories
