"""Proximal Policy Optimization with a clipped surrogate objective.

ReJOIN trained with PPO ([29] in the paper): the clipped ratio keeps
each policy update close to the behaviour policy — the "smooth change to
the policy parameterization" requirement §2 calls out. This
implementation runs several epochs of minibatch updates per batch of
episodes, with an analytic gradient of the clipped objective w.r.t. the
logits (derivation in the docstring of :func:`_ppo_loss`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.nn.losses import entropy, masked_softmax_and_log, mse_loss
from repro.nn.network import MLP
from repro.rl.env import Trajectory
from repro.rl.policy import CategoricalPolicy

__all__ = ["PPOConfig", "PPOAgent"]


@dataclass(frozen=True)
class PPOConfig:
    """PPO hyperparameters (clip ratio, epochs, minibatching, entropy)."""

    hidden: Tuple[int, ...] = (128, 128)
    lr: float = 3e-4
    value_lr: float = 1e-3
    gamma: float = 1.0
    clip_epsilon: float = 0.2
    epochs: int = 4
    minibatch_size: int = 64
    entropy_coef: float = 1e-2
    normalize_advantages: bool = True
    max_grad_norm: float = 5.0


def _ppo_loss(
    logits: np.ndarray,
    actions: np.ndarray,
    advantages: np.ndarray,
    old_log_probs: np.ndarray,
    masks: np.ndarray | None,
    clip_eps: float,
    entropy_coef: float,
) -> Tuple[float, np.ndarray]:
    """Clipped-surrogate loss and its gradient w.r.t. the logits.

    With ratio ``r = exp(log p_new(a) - log p_old(a))``, the objective is
    ``min(r A, clip(r, 1-e, 1+e) A)``. The gradient of ``r`` w.r.t. the
    logits is ``r * (onehot(a) - p_new)``; where the clipped branch is
    active *and* binding, the gradient is zero.
    """
    n, k = logits.shape
    probs, log_probs = masked_softmax_and_log(logits, masks)
    picked = log_probs[np.arange(n), actions]
    ratio = np.exp(picked - old_log_probs)
    clipped = np.clip(ratio, 1.0 - clip_eps, 1.0 + clip_eps)
    surrogate = np.minimum(ratio * advantages, clipped * advantages)
    loss = -float(np.mean(surrogate))

    # Gradient only flows through the unclipped branch when it is the min.
    active = ratio * advantages <= clipped * advantages + 1e-12
    coef = np.where(active, ratio * advantages, 0.0)
    onehot = np.zeros_like(probs)
    onehot[np.arange(n), actions] = 1.0
    grad = -(coef[:, None] * (onehot - probs)) / n

    ent = entropy(probs)
    loss -= entropy_coef * float(np.mean(ent))
    if entropy_coef != 0.0:
        with np.errstate(divide="ignore"):
            logp = np.where(probs > 0, np.log(probs), 0.0)
        grad += entropy_coef * probs * (logp + ent[:, None]) / n
    if masks is not None:
        grad = np.where(masks, grad, 0.0)
    return loss, grad


class PPOAgent:
    """PPO over masked discrete actions."""

    def __init__(
        self,
        state_dim: int,
        n_actions: int,
        rng: np.random.Generator,
        config: PPOConfig | None = None,
    ) -> None:
        self.config = config or PPOConfig()
        self.rng = rng
        self.policy_net = MLP(
            state_dim,
            self.config.hidden,
            n_actions,
            rng=rng,
            lr=self.config.lr,
            max_grad_norm=self.config.max_grad_norm,
        )
        self.value_net = MLP(
            state_dim,
            self.config.hidden,
            1,
            rng=rng,
            lr=self.config.value_lr,
            max_grad_norm=self.config.max_grad_norm,
        )
        self.policy = CategoricalPolicy(self.policy_net)

    # ------------------------------------------------------------------
    def act(
        self,
        state: np.ndarray,
        mask: np.ndarray | None,
        rng: np.random.Generator | None = None,
        greedy: bool = False,
    ) -> Tuple[int, float]:
        return self.policy.act(state, mask, rng or self.rng, greedy)

    def state_value(self, states: np.ndarray) -> np.ndarray:
        return self.value_net.forward(states)[:, 0]

    # ------------------------------------------------------------------
    def update(self, trajectories: Sequence[Trajectory]) -> dict:
        """Several epochs of clipped-surrogate minibatch updates."""
        if not trajectories:
            raise ValueError("need at least one trajectory")
        states, masks, actions, returns, old_log_probs = self._flatten(trajectories)
        advantages = returns - self.state_value(states)
        if self.config.normalize_advantages and len(advantages) > 1:
            std = advantages.std()
            if std > 1e-8:
                advantages = (advantages - advantages.mean()) / std

        n = len(actions)
        policy_losses: List[float] = []
        for _ in range(self.config.epochs):
            order = self.rng.permutation(n)
            for start in range(0, n, self.config.minibatch_size):
                batch = order[start : start + self.config.minibatch_size]
                loss = self.policy_net.train_step(
                    states[batch],
                    lambda logits, b=batch: _ppo_loss(
                        logits,
                        actions[b],
                        advantages[b],
                        old_log_probs[b],
                        masks[b],
                        self.config.clip_epsilon,
                        self.config.entropy_coef,
                    ),
                )
                policy_losses.append(loss)
        value_loss = self.value_net.train_step(
            states, lambda out: mse_loss(out, returns[:, None])
        )
        return {
            "policy_loss": float(np.mean(policy_losses)),
            "value_loss": value_loss,
            "mean_return": float(returns.mean()),
            "n_steps": n,
        }

    def _flatten(self, trajectories: Sequence[Trajectory]):
        states, masks, actions, returns, log_probs = [], [], [], [], []
        n_actions = self.policy.n_actions
        for trajectory in trajectories:
            rets = trajectory.returns(self.config.gamma)
            for transition, ret in zip(trajectory.transitions, rets):
                states.append(transition.state)
                mask = np.asarray(transition.mask, dtype=bool)
                if mask.shape[0] < n_actions:  # grown action layer
                    mask = np.concatenate(
                        [mask, np.zeros(n_actions - mask.shape[0], dtype=bool)]
                    )
                masks.append(mask)
                actions.append(transition.action)
                returns.append(float(ret))
                log_probs.append(transition.log_prob)
        return (
            np.asarray(states),
            np.asarray(masks),
            np.asarray(actions, dtype=np.int64),
            np.asarray(returns),
            np.asarray(log_probs),
        )
