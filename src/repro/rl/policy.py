"""A masked categorical policy over a fixed-size action layer.

Implements the paper's §2 description directly: "each neuron in the
action layer represents an action, and these outputs are normalized to
form a probability distribution. The policy selects actions by sampling
from this probability distribution" — with the mode available for pure
exploitation (evaluation) and masking for invalid actions.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.losses import masked_log_softmax, masked_softmax, masked_softmax_and_log
from repro.nn.network import MLP

__all__ = ["CategoricalPolicy"]


class CategoricalPolicy:
    """Wraps a policy network with masked sampling and log-probs."""

    def __init__(self, net: MLP) -> None:
        self.net = net

    @property
    def n_actions(self) -> int:
        return self.net.out_features

    def probabilities(self, states: np.ndarray, masks: np.ndarray | None) -> np.ndarray:
        logits = self.net.forward(states)
        return masked_softmax(logits, self._fit_mask(masks, logits.shape))

    def log_probabilities(
        self, states: np.ndarray, masks: np.ndarray | None
    ) -> np.ndarray:
        logits = self.net.forward(states)
        return masked_log_softmax(logits, self._fit_mask(masks, logits.shape))

    def distributions(
        self, states: np.ndarray, masks: np.ndarray | None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(probabilities, log_probabilities)`` from ONE forward pass.

        Callers that need both (sampling with log-prob bookkeeping,
        policy updates) should use this instead of calling
        :meth:`probabilities` and :meth:`log_probabilities` separately,
        which would run the network twice on the same states.
        """
        logits = self.net.forward(states)
        return masked_softmax_and_log(logits, self._fit_mask(masks, logits.shape))

    def act(
        self,
        state: np.ndarray,
        mask: np.ndarray | None,
        rng: np.random.Generator,
        greedy: bool = False,
    ) -> Tuple[int, float]:
        """Sample (or take the mode of) the action distribution.

        A 1-row :meth:`act_batch`, so the sampling logic (inverse-CDF,
        mask safety) lives in exactly one place.
        Returns ``(action, log_prob_of_action)``.
        """
        masks = None if mask is None else np.atleast_2d(mask)
        actions, log_probs = self.act_batch(
            np.atleast_2d(np.asarray(state, dtype=float)), masks, rng, greedy
        )
        return int(actions[0]), float(log_probs[0])

    def act_batch(
        self,
        states: np.ndarray,
        masks: np.ndarray | None,
        rng: np.random.Generator | None = None,
        greedy: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized action selection over a whole batch of states.

        One forward pass serves every row — this is the primitive both
        the serving layer's micro-batch engine and the trainer's vector
        rollout engine build on. Returns ``(actions, log_probs)``
        arrays of length ``len(states)``.
        """
        states = np.atleast_2d(np.asarray(states, dtype=float))
        probs, log_probs = self.distributions(states, masks)
        if greedy:
            actions = np.argmax(probs, axis=1)
        else:
            if rng is None:
                raise ValueError("sampling mode needs an rng")
            # Inverse-CDF sampling per row, vectorized. Scaling the draw
            # by the row total keeps it strictly below the last cumsum
            # entry, and counting entries <= draw skips zero-probability
            # (masked) prefixes — so a masked action is never selected.
            cumulative = np.cumsum(probs, axis=1)
            draws = rng.random(len(states)) * cumulative[:, -1]
            actions = (cumulative <= draws[:, None]).sum(axis=1)
        picked_log_probs = log_probs[np.arange(len(states)), actions]
        return actions.astype(np.int64), picked_log_probs

    @staticmethod
    def _fit_mask(masks: np.ndarray | None, shape) -> np.ndarray | None:
        """Pad/validate masks whose action dimension lags a grown layer.

        After :meth:`MLP.grow_outputs` (incremental learning), stored
        trajectories may carry masks sized for the old action layer; the
        new actions are simply invalid for those states.
        """
        if masks is None:
            return None
        masks = np.atleast_2d(np.asarray(masks, dtype=bool))
        if masks.shape[1] < shape[1]:
            pad = np.zeros((masks.shape[0], shape[1] - masks.shape[1]), dtype=bool)
            masks = np.concatenate([masks, pad], axis=1)
        elif masks.shape[1] > shape[1]:
            raise ValueError(
                f"mask has {masks.shape[1]} actions but the network only {shape[1]}"
            )
        return masks
