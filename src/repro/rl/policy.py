"""A masked categorical policy over a fixed-size action layer.

Implements the paper's §2 description directly: "each neuron in the
action layer represents an action, and these outputs are normalized to
form a probability distribution. The policy selects actions by sampling
from this probability distribution" — with the mode available for pure
exploitation (evaluation) and masking for invalid actions.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.losses import masked_log_softmax, masked_softmax
from repro.nn.network import MLP

__all__ = ["CategoricalPolicy"]


class CategoricalPolicy:
    """Wraps a policy network with masked sampling and log-probs."""

    def __init__(self, net: MLP) -> None:
        self.net = net

    @property
    def n_actions(self) -> int:
        return self.net.out_features

    def probabilities(self, states: np.ndarray, masks: np.ndarray | None) -> np.ndarray:
        logits = self.net.forward(states)
        return masked_softmax(logits, self._fit_mask(masks, logits.shape))

    def log_probabilities(
        self, states: np.ndarray, masks: np.ndarray | None
    ) -> np.ndarray:
        logits = self.net.forward(states)
        return masked_log_softmax(logits, self._fit_mask(masks, logits.shape))

    def act(
        self,
        state: np.ndarray,
        mask: np.ndarray | None,
        rng: np.random.Generator,
        greedy: bool = False,
    ) -> Tuple[int, float]:
        """Sample (or take the mode of) the action distribution.

        Returns ``(action, log_prob_of_action)``.
        """
        probs = self.probabilities(state, None if mask is None else np.atleast_2d(mask))[0]
        if greedy:
            action = int(np.argmax(probs))
        else:
            action = int(rng.choice(len(probs), p=probs))
        log_prob = float(np.log(max(probs[action], 1e-30)))
        return action, log_prob

    def act_batch(
        self,
        states: np.ndarray,
        masks: np.ndarray | None,
        rng: np.random.Generator | None = None,
        greedy: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`act` over a whole batch of states.

        One forward pass serves every row — this is the primitive the
        serving layer's micro-batch engine builds on. Returns
        ``(actions, log_probs)`` arrays of length ``len(states)``.
        """
        states = np.atleast_2d(np.asarray(states, dtype=float))
        probs = self.probabilities(states, masks)
        if greedy:
            actions = np.argmax(probs, axis=1)
        else:
            if rng is None:
                raise ValueError("sampling mode needs an rng")
            # Inverse-CDF sampling per row, vectorized. Scaling the draw
            # by the row total keeps it strictly below the last cumsum
            # entry, and counting entries <= draw skips zero-probability
            # (masked) prefixes — so a masked action is never selected.
            cumulative = np.cumsum(probs, axis=1)
            draws = rng.random(len(states)) * cumulative[:, -1]
            actions = (cumulative <= draws[:, None]).sum(axis=1)
        log_probs = np.log(
            np.maximum(probs[np.arange(len(states)), actions], 1e-30)
        )
        return actions.astype(np.int64), log_probs

    @staticmethod
    def _fit_mask(masks: np.ndarray | None, shape) -> np.ndarray | None:
        """Pad/validate masks whose action dimension lags a grown layer.

        After :meth:`MLP.grow_outputs` (incremental learning), stored
        trajectories may carry masks sized for the old action layer; the
        new actions are simply invalid for those states.
        """
        if masks is None:
            return None
        masks = np.atleast_2d(np.asarray(masks, dtype=bool))
        if masks.shape[1] < shape[1]:
            pad = np.zeros((masks.shape[0], shape[1] - masks.shape[1]), dtype=bool)
            masks = np.concatenate([masks, pad], axis=1)
        elif masks.shape[1] > shape[1]:
            raise ValueError(
                f"mask has {masks.shape[1]} actions but the network only {shape[1]}"
            )
        return masks
