"""Environment protocol and trajectory containers.

Mirrors the paper's §2 framing: the environment reports the current
state and the set of valid actions; the agent picks one; the
environment returns a reward and the next state until a terminal state
ends the episode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Protocol, Tuple

import numpy as np

__all__ = ["Environment", "StepResult", "Transition", "Trajectory", "rollout"]


@dataclass
class StepResult:
    """What the environment returns after one action."""

    state: np.ndarray
    mask: np.ndarray
    reward: float
    done: bool
    info: Dict[str, Any] = field(default_factory=dict)


class Environment(Protocol):
    """Episodic environment with a fixed-size masked discrete action space."""

    @property
    def state_dim(self) -> int: ...

    @property
    def n_actions(self) -> int: ...

    def reset(self) -> Tuple[np.ndarray, np.ndarray]:
        """Start an episode; returns (state, action mask)."""
        ...

    def step(self, action: int) -> StepResult: ...


@dataclass
class Transition:
    """One (s, mask, a, r) step, plus the behaviour policy's log-prob."""

    state: np.ndarray
    mask: np.ndarray
    action: int
    reward: float
    log_prob: float = 0.0


@dataclass
class Trajectory:
    """A full episode."""

    transitions: List[Transition] = field(default_factory=list)
    info: Dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.transitions)

    @property
    def total_reward(self) -> float:
        return sum(t.reward for t in self.transitions)

    def returns(self, gamma: float = 1.0) -> np.ndarray:
        """Discounted return from each step to the end of the episode."""
        out = np.zeros(len(self.transitions))
        acc = 0.0
        for i in range(len(self.transitions) - 1, -1, -1):
            acc = self.transitions[i].reward + gamma * acc
            out[i] = acc
        return out


def rollout(
    env: Environment,
    act,
    rng: np.random.Generator,
    greedy: bool = False,
    max_steps: int = 1000,
) -> Trajectory:
    """Run one episode with ``act(state, mask, rng, greedy) -> (a, logp)``."""
    state, mask = env.reset()
    trajectory = Trajectory()
    for _ in range(max_steps):
        action, log_prob = act(state, mask, rng, greedy)
        result = env.step(action)
        trajectory.transitions.append(
            Transition(state, mask, action, result.reward, log_prob)
        )
        trajectory.info.update(result.info)
        state, mask = result.state, result.mask
        if result.done:
            return trajectory
    raise RuntimeError(f"episode exceeded {max_steps} steps — env not terminating?")
