"""Scalar schedules for learning rates, entropy bonuses, exploration."""

from __future__ import annotations

__all__ = ["ConstantSchedule", "LinearSchedule", "ExponentialSchedule"]


class ConstantSchedule:
    """Always the same value."""

    def __init__(self, value: float) -> None:
        self.value = value

    def __call__(self, step: int) -> float:
        return self.value


class LinearSchedule:
    """Linear interpolation from ``start`` to ``end`` over ``horizon`` steps."""

    def __init__(self, start: float, end: float, horizon: int) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.start = start
        self.end = end
        self.horizon = horizon

    def __call__(self, step: int) -> float:
        frac = min(max(step, 0), self.horizon) / self.horizon
        return self.start + (self.end - self.start) * frac


class ExponentialSchedule:
    """``start * decay**step``, floored at ``end``."""

    def __init__(self, start: float, decay: float, end: float = 0.0) -> None:
        if not 0 < decay <= 1:
            raise ValueError("decay must be in (0, 1]")
        self.start = start
        self.decay = decay
        self.end = end

    def __call__(self, step: int) -> float:
        return max(self.end, self.start * self.decay ** max(step, 0))
