"""REINFORCE with a learned value baseline.

The simplest policy-gradient method ([37] in the paper): maximize
``E[G_t * log pi(a_t | s_t)]`` with a state-value baseline to cut
variance. With the paper's sparse terminal rewards and gamma=1, every
step of an episode shares the episode's terminal return.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.nn.losses import mse_loss, policy_gradient_loss
from repro.nn.network import MLP
from repro.rl.env import Trajectory
from repro.rl.policy import CategoricalPolicy

__all__ = ["ReinforceConfig", "ReinforceAgent"]


@dataclass(frozen=True)
class ReinforceConfig:
    """REINFORCE hyperparameters (networks, learning rates, entropy)."""

    hidden: Tuple[int, ...] = (128, 128)
    lr: float = 1e-3
    value_lr: float = 1e-3
    gamma: float = 1.0
    entropy_coef: float = 1e-2
    normalize_advantages: bool = True
    max_grad_norm: float = 5.0


class ReinforceAgent:
    """Policy-gradient agent with policy and value networks."""

    def __init__(
        self,
        state_dim: int,
        n_actions: int,
        rng: np.random.Generator,
        config: ReinforceConfig | None = None,
    ) -> None:
        self.config = config or ReinforceConfig()
        self.rng = rng
        self.policy_net = MLP(
            state_dim,
            self.config.hidden,
            n_actions,
            rng=rng,
            lr=self.config.lr,
            max_grad_norm=self.config.max_grad_norm,
        )
        self.value_net = MLP(
            state_dim,
            self.config.hidden,
            1,
            rng=rng,
            lr=self.config.value_lr,
            max_grad_norm=self.config.max_grad_norm,
        )
        self.policy = CategoricalPolicy(self.policy_net)

    # ------------------------------------------------------------------
    def act(
        self,
        state: np.ndarray,
        mask: np.ndarray | None,
        rng: np.random.Generator | None = None,
        greedy: bool = False,
    ) -> Tuple[int, float]:
        return self.policy.act(state, mask, rng or self.rng, greedy)

    def state_value(self, states: np.ndarray) -> np.ndarray:
        return self.value_net.forward(states)[:, 0]

    # ------------------------------------------------------------------
    def update(self, trajectories: Sequence[Trajectory]) -> dict:
        """One gradient step on a batch of complete episodes."""
        if not trajectories:
            raise ValueError("need at least one trajectory")
        states, masks, actions, returns = self._flatten(trajectories)
        baselines = self.state_value(states)
        advantages = returns - baselines
        if self.config.normalize_advantages and len(advantages) > 1:
            std = advantages.std()
            if std > 1e-8:
                advantages = (advantages - advantages.mean()) / std

        policy_loss = self.policy_net.train_step(
            states,
            lambda logits: policy_gradient_loss(
                logits, actions, advantages, masks, self.config.entropy_coef
            ),
        )
        value_loss = self.value_net.train_step(
            states, lambda out: mse_loss(out, returns[:, None])
        )
        return {
            "policy_loss": policy_loss,
            "value_loss": value_loss,
            "mean_return": float(returns.mean()),
            "n_steps": len(actions),
        }

    def _flatten(self, trajectories: Sequence[Trajectory]):
        states: List[np.ndarray] = []
        masks: List[np.ndarray] = []
        actions: List[int] = []
        returns: List[float] = []
        n_actions = self.policy.n_actions
        for trajectory in trajectories:
            rets = trajectory.returns(self.config.gamma)
            for transition, ret in zip(trajectory.transitions, rets):
                states.append(transition.state)
                mask = np.asarray(transition.mask, dtype=bool)
                if mask.shape[0] < n_actions:  # grown action layer
                    mask = np.concatenate(
                        [mask, np.zeros(n_actions - mask.shape[0], dtype=bool)]
                    )
                masks.append(mask)
                actions.append(transition.action)
                returns.append(float(ret))
        return (
            np.asarray(states),
            np.asarray(masks),
            np.asarray(actions, dtype=np.int64),
            np.asarray(returns),
        )
