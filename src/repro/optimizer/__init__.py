"""The traditional ("expert") query optimizer.

This package is the reproduction's PostgreSQL stand-in on the planning
side: Selinger dynamic-programming join search up to a GEQO-style
relation-count threshold, greedy bottom-up search beyond it, and
cost-based selection of access paths, join operators, and aggregate
operators. The paper uses this component three ways:

- as the baseline ReJOIN is compared against (Figure 3),
- as the completer that turns ReJOIN's join *order* into a full
  physical plan ("the final join ordering is sent to the optimizer to
  perform operator selection, index selection, etc." — §3),
- as the expert whose decisions are recorded for learning from
  demonstration (§5.1).
"""

from repro.optimizer.bitset_dp import (
    DPStats,
    FastJoinContext,
    PlanningTimeout,
    selinger_dp_bitset,
)
from repro.optimizer.join_search import (
    greedy_bottom_up,
    random_join_tree,
    selinger_dp,
)
from repro.optimizer.memo import SubPlanCostMemo, tree_keys
from repro.optimizer.physical import (
    build_physical_plan,
    choose_access_path,
    choose_aggregate_operator,
    choose_join_operator,
)
from repro.optimizer.planner import Planner, PlannerResult

__all__ = [
    "DPStats",
    "FastJoinContext",
    "Planner",
    "PlannerResult",
    "PlanningTimeout",
    "SubPlanCostMemo",
    "selinger_dp_bitset",
    "build_physical_plan",
    "tree_keys",
    "choose_access_path",
    "choose_aggregate_operator",
    "choose_join_operator",
    "greedy_bottom_up",
    "random_join_tree",
    "selinger_dp",
]
