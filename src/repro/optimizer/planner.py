"""The full traditional optimization pipeline.

``Planner.optimize`` runs join-order search (exhaustive DP below the
GEQO threshold, genetic search at or above it — like PostgreSQL), then
physical selection, and reports the wall-clock planning time — the
quantity on the y-axis of Figure 3c.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass

import numpy as np

from repro.db.cardinality import QueryCardinalities
from repro.db.costmodel import PlanCost
from repro.db.engine import Database
from repro.db.plans import JoinTree, PhysicalPlan
from repro.db.query import Query
from repro.optimizer.join_search import (
    geqo_join_search,
    greedy_bottom_up,
    selinger_dp,
)
from repro.optimizer.memo import SubPlanCostMemo, tree_keys
from repro.optimizer.physical import build_physical_plan

__all__ = ["Planner", "PlannerResult"]

#: PostgreSQL switches from exhaustive search to GEQO at 12 relations.
DEFAULT_GEQO_THRESHOLD = 12


@dataclass(frozen=True)
class PlannerResult:
    """Everything the experiments need to know about one optimization."""

    query_name: str
    join_tree: JoinTree
    plan: PhysicalPlan
    cost: PlanCost
    planning_time_ms: float
    used_exhaustive_search: bool


class Planner:
    """The traditional cost-based optimizer (the paper's "expert")."""

    def __init__(
        self,
        db: Database,
        geqo_threshold: int = DEFAULT_GEQO_THRESHOLD,
        bushy: bool = False,
        cost_memo: SubPlanCostMemo | None = None,
    ) -> None:
        """``bushy=False`` (default) restricts the expert to left-deep
        join trees — the classic System R heuristic. This is what gives
        a learned optimizer headroom to *beat* the expert on plan cost
        (Figure 3b): ReJOIN explores bushy shapes the expert never
        considers, just as the real ReJOIN out-planned PostgreSQL's
        heuristically restricted search.

        ``cost_memo`` (optional) memoizes completed-and-costed
        (sub)plans across :meth:`evaluate_tree`/:meth:`complete_plan`
        calls, keyed by structural join-tree fingerprints — repeated
        trees (a converged policy, a replayed cache entry) are costed
        once. Clear it whenever the database is re-ANALYZEd."""
        if geqo_threshold < 2:
            raise ValueError("geqo_threshold must be at least 2")
        self.db = db
        self.geqo_threshold = geqo_threshold
        self.bushy = bushy
        self.cost_memo = cost_memo

    def choose_join_order(self, query: Query) -> JoinTree:
        """Join-order search only (the first stage of Figure 8).

        Below the threshold: exhaustive DP. At or above it: GEQO-style
        genetic search, seeded deterministically per query name so
        planning is reproducible.
        """
        cards = self.db.cardinalities(query)
        if query.n_relations < self.geqo_threshold:
            return selinger_dp(query, cards, self.db.cost_params, bushy=self.bushy)
        seed = zlib.crc32(query.name.encode())
        return geqo_join_search(
            query, cards, self.db.cost_params, rng=np.random.default_rng(seed)
        )

    def complete_plan(
        self,
        tree: JoinTree,
        query: Query,
        include_aggregate: bool = True,
        cards: QueryCardinalities | None = None,
    ) -> PhysicalPlan:
        """Fill in access paths and operators for a given join order.

        This is the service ReJOIN calls after choosing a join order.
        """
        epoch = None
        if self.cost_memo is not None:
            epoch = self.db.stats_epoch
            self.cost_memo.sync_epoch(epoch, self.db.table_epochs)
        return build_physical_plan(
            tree,
            query,
            self.db,
            cards=cards,
            include_aggregate=include_aggregate,
            memo=self.cost_memo,
            memo_epoch=epoch,
        )

    def evaluate_tree(
        self, tree: JoinTree, query: Query, cards: QueryCardinalities | None = None
    ) -> PlannerResult:
        """Complete and cost a join order chosen elsewhere (e.g. by the
        learned policy). Same result shape as :meth:`optimize`, so the
        serving layer can compare learned and expert plans uniformly.

        With a ``cost_memo`` attached, a repeated tree is answered from
        the memo — bitwise-equal plan and cost, no rebuild, no
        re-costing — and on a miss every completed sub-tree is recorded
        for the next caller.
        """
        start = time.perf_counter()
        memo = self.cost_memo
        root_key = None
        node_keys = None
        epoch = None
        if memo is not None:
            epoch = self.db.stats_epoch
            memo.sync_epoch(epoch, self.db.table_epochs)
            node_keys, root_key = tree_keys(tree, query)
            entry = memo.get(root_key)
            if entry is not None:
                return PlannerResult(
                    query_name=query.name,
                    join_tree=tree,
                    plan=entry.plan,
                    cost=entry.cost,
                    planning_time_ms=(time.perf_counter() - start) * 1000.0,
                    used_exhaustive_search=False,
                )
        cards = cards or self.db.cardinalities(query)
        cost_model = self.db.cost_model()
        cost_cache: dict = {}
        plan = build_physical_plan(
            tree,
            query,
            self.db,
            cost_model=cost_model,
            cards=cards,
            memo=memo,
            cost_cache=cost_cache,
            memo_keys=node_keys,
            memo_epoch=epoch,
        )
        cost = cost_model.cost(plan, cards, cost_cache)
        if memo is not None:
            memo.put(
                root_key,
                plan,
                cost,
                tables=frozenset(query.table_of(a) for a in tree.aliases),
                epoch=epoch,
            )
        return PlannerResult(
            query_name=query.name,
            join_tree=tree,
            plan=plan,
            cost=cost,
            planning_time_ms=(time.perf_counter() - start) * 1000.0,
            used_exhaustive_search=False,
        )

    def optimize(self, query: Query) -> PlannerResult:
        """Run the whole pipeline and time it."""
        start = time.perf_counter()
        tree = self.choose_join_order(query)
        cards = self.db.cardinalities(query)
        plan = self.complete_plan(tree, query, cards=cards)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        cost = self.db.plan_cost(plan, query, cards=cards)
        return PlannerResult(
            query_name=query.name,
            join_tree=tree,
            plan=plan,
            cost=cost,
            planning_time_ms=elapsed_ms,
            used_exhaustive_search=query.n_relations < self.geqo_threshold,
        )
