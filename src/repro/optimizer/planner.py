"""The full traditional optimization pipeline.

``Planner.optimize`` runs join-order search (exhaustive DP below the
GEQO threshold, genetic search at or above it — like PostgreSQL), then
physical selection, and reports the wall-clock planning time — the
quantity on the y-axis of Figure 3c.

Join-order search runs on the **bitset fast lane** by default
(:mod:`repro.optimizer.bitset_dp`): integer-mask DP with memoized
subset cardinalities and branch-and-bound pruning seeded from a greedy
plan. In ``exact`` mode (default) it is plan-identical to the legacy
``selinger_dp``; construct with ``expert_lane="legacy"`` to get the
seed enumerator back. The planner also keeps expert-lane observability
counters (subsets enumerated, entries pruned, per-plan latency
percentiles) that the serving layer rolls up.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.db.cardinality import QueryCardinalities
from repro.db.costmodel import PlanCost
from repro.db.engine import Database
from repro.db.plans import JoinTree, PhysicalPlan
from repro.db.query import Query
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.optimizer.bitset_dp import (
    DPStats,
    PlanningTimeout,
    fast_greedy_bottom_up,
    selinger_dp_bitset,
)
from repro.optimizer.join_search import (
    geqo_join_search,
    selinger_dp,
)
from repro.optimizer.memo import SubPlanCostMemo, tree_keys
from repro.optimizer.physical import build_physical_plan

__all__ = ["Planner", "PlannerResult", "PlanningTimeout"]

#: PostgreSQL switches from exhaustive search to GEQO at 12 relations.
DEFAULT_GEQO_THRESHOLD = 12


@dataclass(frozen=True)
class PlannerResult:
    """Everything the experiments need to know about one optimization."""

    query_name: str
    join_tree: JoinTree
    plan: PhysicalPlan
    cost: PlanCost
    planning_time_ms: float
    used_exhaustive_search: bool


class Planner:
    """The traditional cost-based optimizer (the paper's "expert")."""

    def __init__(
        self,
        db: Database,
        geqo_threshold: int = DEFAULT_GEQO_THRESHOLD,
        bushy: bool = False,
        cost_memo: SubPlanCostMemo | None = None,
        expert_lane: str = "bitset",
        exact: bool = True,
        prune: bool = True,
        latency_window: int = 4096,
    ) -> None:
        """``bushy=False`` (default) restricts the expert to left-deep
        join trees — the classic System R heuristic. This is what gives
        a learned optimizer headroom to *beat* the expert on plan cost
        (Figure 3b): ReJOIN explores bushy shapes the expert never
        considers, just as the real ReJOIN out-planned PostgreSQL's
        heuristically restricted search.

        ``cost_memo`` (optional) memoizes completed-and-costed
        (sub)plans across :meth:`evaluate_tree`/:meth:`complete_plan`
        calls, keyed by structural join-tree fingerprints — repeated
        trees (a converged policy, a replayed cache entry) are costed
        once. Clear it whenever the database is re-ANALYZEd.

        ``expert_lane`` selects the DP implementation: ``"bitset"``
        (default) is the mask-native fast lane, ``"legacy"`` the seed
        enumerator. ``prune`` enables branch-and-bound on the fast
        lane; with ``exact=True`` (default) pruning removes only
        provably dominated entries, so the chosen plan is identical to
        the legacy lane's. ``exact=False`` trades the optimality
        guarantee for harder pruning (never worse than the greedy
        bound). ``latency_window`` bounds the per-plan latency samples
        kept for the ``expert_plan_ms`` percentile counters."""
        if geqo_threshold < 2:
            raise ValueError("geqo_threshold must be at least 2")
        if expert_lane not in ("bitset", "legacy"):
            raise ValueError(f"unknown expert_lane {expert_lane!r}")
        self.db = db
        self.geqo_threshold = geqo_threshold
        self.bushy = bushy
        self.cost_memo = cost_memo
        self.expert_lane = expert_lane
        self.exact = exact
        self.prune = prune
        #: Cumulative fast-lane counters (``repro info --probe``).
        self.dp_stats = DPStats()
        self.expert_plans = 0
        self._expert_ms: deque = deque(maxlen=latency_window)
        #: Guards the latency samples: a monitoring thread may snapshot
        #: them (front-end counter rollup) while a worker shard plans.
        self._expert_ms_lock = threading.Lock()
        #: The histogram behind the ``expert_plan_ms_*`` percentiles —
        #: the same log-bucket implementation the serving layer uses for
        #: request latencies, so every reported percentile in the stack
        #: shares one method and one error bound (see
        #: :mod:`repro.obs.metrics`). The raw-sample deque stays only as
        #: a bounded forensic window (``expert_latency_samples``).
        self.expert_ms_hist = Histogram(
            "repro_expert_plan_ms", "expert join-order search latency"
        )

    def __getstate__(self) -> dict:
        """The lock is process-local; the latency window travels (plain
        deque of floats). Lets a planner ride inside a picklable object
        graph (reward baselines in a process-mode ``WorkerSpec``)."""
        state = dict(self.__dict__)
        state["_expert_ms_lock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._expert_ms_lock = threading.Lock()

    @staticmethod
    def _deadline_hook(budget_ms: float | None):
        """A ``check_deadline`` callable raising :class:`PlanningTimeout`
        once ``budget_ms`` of wall clock has elapsed (``None`` budget →
        no hook, zero DP overhead)."""
        if budget_ms is None:
            return None
        deadline = time.perf_counter() + budget_ms / 1000.0

        def check() -> None:
            if time.perf_counter() >= deadline:
                raise PlanningTimeout(
                    f"join search exceeded its {budget_ms:.1f}ms budget"
                )

        return check

    def choose_join_order(
        self, query: Query, budget_ms: float | None = None
    ) -> JoinTree:
        """Join-order search only (the first stage of Figure 8).

        Below the threshold: exhaustive DP (bitset fast lane unless
        ``expert_lane="legacy"``). At or above it: GEQO-style genetic
        search, seeded deterministically per query name so planning is
        reproducible.

        ``budget_ms`` bounds the bitset DP's wall clock via its
        check-deadline hook; past the budget the search raises
        :class:`PlanningTimeout` (bitset lane only — the legacy
        enumerator and GEQO are not interruptible, and callers that set
        budgets run the bitset lane). A timed-out search records neither
        a plan nor a latency sample.
        """
        start = time.perf_counter()
        cards = self.db.cardinalities(query)
        if query.n_relations < self.geqo_threshold:
            if self.expert_lane == "bitset":
                tree = selinger_dp_bitset(
                    query,
                    cards,
                    self.db.cost_params,
                    bushy=self.bushy,
                    prune=self.prune,
                    exact=self.exact,
                    stats=self.dp_stats,
                    check_deadline=self._deadline_hook(budget_ms),
                )
            else:
                tree = selinger_dp(
                    query, cards, self.db.cost_params, bushy=self.bushy
                )
        else:
            seed = zlib.crc32(query.name.encode())
            tree = geqo_join_search(
                query, cards, self.db.cost_params, rng=np.random.default_rng(seed)
            )
        self.expert_plans += 1
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        self.expert_ms_hist.observe(elapsed_ms)
        with self._expert_ms_lock:
            self._expert_ms.append(elapsed_ms)
        return tree

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def expert_latency_samples(self) -> List[float]:
        """Recent per-plan join-search latencies (ms), newest last."""
        with self._expert_ms_lock:
            return list(self._expert_ms)

    def counters(self) -> Dict[str, float]:
        """Expert-lane counters for the serving rollup.

        Percentiles come from the shared log-bucket histogram (see
        ``expert_ms_hist``), the same implementation and error bound as
        the request-latency percentiles.
        """
        out = self.dp_stats.as_dict()
        out["expert_plans"] = float(self.expert_plans)
        out["expert_plan_ms_p50"] = round(self.expert_ms_hist.quantile(0.50), 4)
        out["expert_plan_ms_p95"] = round(self.expert_ms_hist.quantile(0.95), 4)
        return out

    def register_metrics(self, registry: MetricsRegistry) -> None:
        """Expose the expert lane in a shard's metrics registry:
        pull-style counters over the exact DP stats plus the owned
        latency histogram (so registry merges pool shards exactly)."""
        registry.counter_fn(
            "repro_expert_dp_subsets_total",
            lambda: self.dp_stats.subsets_enumerated,
            "connected subsets enumerated by the bitset DP",
        )
        registry.counter_fn(
            "repro_expert_dp_pruned_total",
            lambda: self.dp_stats.entries_pruned,
            "DP entries removed by branch-and-bound",
        )
        registry.counter_fn(
            "repro_expert_dp_bound_fallbacks_total",
            lambda: self.dp_stats.bound_fallbacks,
            "inexact-mode searches answered by the greedy bound",
        )
        registry.counter_fn(
            "repro_expert_plans_total",
            lambda: self.expert_plans,
            "expert join-order searches run",
        )
        registry.register(self.expert_ms_hist)

    # ------------------------------------------------------------------
    def complete_plan(
        self,
        tree: JoinTree,
        query: Query,
        include_aggregate: bool = True,
        cards: QueryCardinalities | None = None,
    ) -> PhysicalPlan:
        """Fill in access paths and operators for a given join order.

        This is the service ReJOIN calls after choosing a join order.
        """
        epoch = None
        if self.cost_memo is not None:
            epoch = self.db.stats_epoch
            self.cost_memo.sync_epoch(epoch, self.db.table_epochs)
        return build_physical_plan(
            tree,
            query,
            self.db,
            cards=cards,
            include_aggregate=include_aggregate,
            memo=self.cost_memo,
            memo_epoch=epoch,
        )

    def evaluate_tree(
        self, tree: JoinTree, query: Query, cards: QueryCardinalities | None = None
    ) -> PlannerResult:
        """Complete and cost a join order chosen elsewhere (e.g. by the
        learned policy). Same result shape as :meth:`optimize`, so the
        serving layer can compare learned and expert plans uniformly.

        With a ``cost_memo`` attached, a repeated tree is answered from
        the memo — bitwise-equal plan and cost, no rebuild, no
        re-costing — and on a miss every completed sub-tree is recorded
        for the next caller.
        """
        start = time.perf_counter()
        plan, cost = self._complete_and_cost(tree, query, cards)
        return PlannerResult(
            query_name=query.name,
            join_tree=tree,
            plan=plan,
            cost=cost,
            planning_time_ms=(time.perf_counter() - start) * 1000.0,
            used_exhaustive_search=False,
        )

    def _complete_and_cost(
        self, tree: JoinTree, query: Query, cards: QueryCardinalities | None = None
    ) -> tuple:
        """Memo-bridged physical completion + costing of a join tree.

        The single home of the structural-fingerprint bridging: the
        tree's memo keys are derived once, the whole-plan key is
        answered straight from the memo when possible, and on a miss
        the per-node keys are threaded through ``build_physical_plan``
        so every completed fragment lands in the memo. Join trees from
        the bitset DP are plain :class:`JoinTree` objects, so their
        fragments hit the same keys the policy-chosen trees populate.
        """
        memo = self.cost_memo
        root_key = None
        node_keys = None
        epoch = None
        if memo is not None:
            epoch = self.db.stats_epoch
            memo.sync_epoch(epoch, self.db.table_epochs)
            node_keys, root_key = tree_keys(tree, query)
            entry = memo.get(root_key)
            if entry is not None:
                return entry.plan, entry.cost
        cards = cards or self.db.cardinalities(query)
        cost_model = self.db.cost_model()
        cost_cache: dict = {}
        plan = build_physical_plan(
            tree,
            query,
            self.db,
            cost_model=cost_model,
            cards=cards,
            memo=memo,
            cost_cache=cost_cache,
            memo_keys=node_keys,
            memo_epoch=epoch,
        )
        cost = cost_model.cost(plan, cards, cost_cache)
        if memo is not None:
            memo.put(
                root_key,
                plan,
                cost,
                tables=frozenset(query.table_of(a) for a in tree.aliases),
                epoch=epoch,
            )
        return plan, cost

    def degraded_plan(
        self, query: Query, budget_ms: float | None = None
    ) -> tuple:
        """The degradation ladder's planner rungs: a budgeted, non-exact
        pruned DP first, greedy bottom-up as the floor.

        Returns ``(PlannerResult, lane)`` where ``lane`` is ``"dp"``
        (the budgeted search finished) or ``"greedy"`` (it timed out,
        the query is GEQO-sized, or no budget remained). The DP runs
        ``exact=False`` with a hard ``prune_margin`` — under a deadline,
        "never worse than greedy, usually much better" beats optimality
        — and is interrupted mid-wave by the check-deadline hook the
        moment the budget expires, so the rung's cost is bounded by the
        budget, not the query size.
        """
        cards = self.db.cardinalities(query)
        tree = None
        lane = "greedy"
        if (
            budget_ms is not None
            and budget_ms > 0.0
            and query.n_relations < self.geqo_threshold
        ):
            try:
                tree = selinger_dp_bitset(
                    query,
                    cards,
                    self.db.cost_params,
                    bushy=self.bushy,
                    prune=True,
                    exact=False,
                    prune_margin=0.9,
                    stats=self.dp_stats,
                    check_deadline=self._deadline_hook(budget_ms),
                )
                lane = "dp"
            except PlanningTimeout:
                tree = None
        if tree is None:
            tree = fast_greedy_bottom_up(query, cards, self.db.cost_params)
        return self.evaluate_tree(tree, query, cards), lane

    def optimize(
        self, query: Query, budget_ms: float | None = None
    ) -> PlannerResult:
        """Run the whole pipeline and time it.

        With a ``cost_memo`` attached, the expert path shares the same
        structural-fingerprint bridge as :meth:`evaluate_tree`: a
        repeated expert tree (guardrail fallbacks, parity evals) is
        answered from the memo bitwise-identically. ``budget_ms``
        bounds the join search (see :meth:`choose_join_order`);
        :class:`PlanningTimeout` propagates to the caller.
        """
        start = time.perf_counter()
        tree = self.choose_join_order(query, budget_ms=budget_ms)
        cards = self.db.cardinalities(query)
        plan, cost = self._complete_and_cost(tree, query, cards)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        return PlannerResult(
            query_name=query.name,
            join_tree=tree,
            plan=plan,
            cost=cost,
            planning_time_ms=elapsed_ms,
            used_exhaustive_search=query.n_relations < self.geqo_threshold,
        )
