"""Join-order search: Selinger DP, greedy bottom-up, and random.

The DP enumerator is exhaustive over connected subgraphs (bushy trees
allowed), which is exponential in the number of relations — hence, like
PostgreSQL's ``geqo_threshold``, the planner switches to the greedy
O(n²) bottom-up algorithm for large queries. The paper leans on exactly
this structure for Figure 3c: the expert's planning time grows steeply
with relation count while ReJOIN's inference is one cheap forward pass
per join.

Join orders are scored with a lightweight operator-aware cost: for each
candidate join the cheapest of the hash/merge/nested-loop formulas on
*estimated* input and output rows. Physical operator selection proper
happens afterwards in :mod:`repro.optimizer.physical`.

:func:`selinger_dp` here is the *legacy reference lane*, kept verbatim
as the parity oracle; production planning goes through the bitset fast
lane in :mod:`repro.optimizer.bitset_dp` (``selinger_dp_bitset``),
which the greedy and GEQO searches below also ride.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.db.cardinality import QueryCardinalities
from repro.db.costmodel import CostParams
from repro.db.plans import JoinTree
from repro.db.query import Query

__all__ = [
    "estimate_join_cost",
    "selinger_dp",
    "greedy_bottom_up",
    "geqo_join_search",
    "random_join_tree",
]


def estimate_join_cost(
    left_rows: float,
    right_rows: float,
    out_rows: float,
    has_equi_predicate: bool,
    params: CostParams,
) -> float:
    """Cheapest join-operator cost estimate for one candidate join.

    Bitwise-pinned to the seed formula (a regression test asserts it):
    the parameter attributes are hoisted into locals once instead of
    being re-read per term, and the merge-sort term clamps *both*
    inputs to two rows before ``log2`` — sub-2-row (or degenerate
    zero-row) inputs are guarded consistently, never producing negative
    sort costs.
    """
    cpu_op = params.cpu_operator_cost
    nl = left_rows * right_rows * cpu_op
    if not has_equi_predicate:
        best = nl  # cross products can only run as nested loops
    else:
        hash_cost = (
            min(left_rows, right_rows) * params.hash_build_cost
            + max(left_rows, right_rows) * params.hash_probe_cost
        )
        n1 = left_rows if left_rows > 2.0 else 2.0
        n2 = right_rows if right_rows > 2.0 else 2.0
        sort = 2.0 * n1 * math.log2(n1) * cpu_op + 2.0 * n2 * math.log2(n2) * cpu_op
        merge = sort + (left_rows + right_rows) * cpu_op
        best = min(nl, hash_cost, merge)
    return best + out_rows * params.cpu_tuple_cost


class _SearchContext:
    """Shared scaffolding for the search algorithms."""

    def __init__(
        self,
        query: Query,
        cards: QueryCardinalities,
        params: CostParams | None = None,
    ) -> None:
        self.query = query
        self.cards = cards
        self.params = params or CostParams()
        self.aliases: List[str] = sorted(query.relations)
        self.index: Dict[str, int] = {a: i for i, a in enumerate(self.aliases)}
        # Adjacency bitmask per alias from the join graph.
        self.adjacency = [0] * len(self.aliases)
        for pred in query.joins:
            i = self.index[pred.left.alias]
            j = self.index[pred.right.alias]
            self.adjacency[i] |= 1 << j
            self.adjacency[j] |= 1 << i

    def mask_of(self, tree: JoinTree) -> int:
        mask = 0
        for alias in tree.aliases:
            mask |= 1 << self.index[alias]
        return mask

    def aliases_of(self, mask: int) -> List[str]:
        return [a for i, a in enumerate(self.aliases) if mask & (1 << i)]

    def connected(self, mask_a: int, mask_b: int) -> bool:
        """True if some join predicate links the two alias sets."""
        reach = 0
        m = mask_a
        while m:
            low = m & -m
            reach |= self.adjacency[low.bit_length() - 1]
            m ^= low
        return bool(reach & mask_b)

    def rows(self, mask: int) -> float:
        return self.cards.rows_for_aliases(frozenset(self.aliases_of(mask)))

    def join_cost(self, mask_a: int, mask_b: int) -> float:
        left = self.rows(mask_a)
        right = self.rows(mask_b)
        out = self.rows(mask_a | mask_b)
        return estimate_join_cost(
            left, right, out, self.connected(mask_a, mask_b), self.params
        )

    def scan_cost(self, alias: str) -> float:
        rows = self.cards.base_rows(alias)
        return rows * self.params.cpu_tuple_cost


def selinger_dp(
    query: Query,
    cards: QueryCardinalities,
    params: CostParams | None = None,
    bushy: bool = True,
) -> JoinTree:
    """Exhaustive dynamic-programming join search (System R style).

    Considers only connected sub-plans, so cross products appear only
    when the query graph itself is disconnected — in that case each
    connected component is optimized separately and the components are
    cross-joined smallest-first, like PostgreSQL.
    """
    ctx = _SearchContext(query, cards, params)
    components = _graph_components(ctx)
    trees = [_dp_component(ctx, comp, bushy) for comp in components]
    return _combine_components(ctx, trees)


def _graph_components(ctx: _SearchContext) -> List[int]:
    """Connected components of the join graph, as bitmasks."""
    n = len(ctx.aliases)
    seen = 0
    components = []
    for start in range(n):
        bit = 1 << start
        if seen & bit:
            continue
        frontier = bit
        comp = 0
        while frontier:
            comp |= frontier
            new = 0
            m = frontier
            while m:
                low = m & -m
                new |= ctx.adjacency[low.bit_length() - 1]
                m ^= low
            frontier = new & ~comp
        components.append(comp)
        seen |= comp
    return components


def _dp_component(ctx: _SearchContext, comp_mask: int, bushy: bool) -> JoinTree:
    """DP over the connected subsets of one component."""
    members = [i for i in range(len(ctx.aliases)) if comp_mask & (1 << i)]
    best: Dict[int, Tuple[float, JoinTree]] = {}
    for i in members:
        alias = ctx.aliases[i]
        best[1 << i] = (ctx.scan_cost(alias), JoinTree.leaf(alias))
    if len(members) == 1:
        return best[1 << members[0]][1]

    subsets = _connected_subsets(ctx, comp_mask)
    for mask in sorted(subsets, key=lambda m: bin(m).count("1")):
        if bin(mask).count("1") < 2:
            continue
        best_cost = math.inf
        best_tree: JoinTree | None = None
        sub = (mask - 1) & mask
        while sub:
            rest = mask ^ sub
            if rest and sub in best and rest in best:
                # Left-deep mode: the right child must be a single relation.
                if not bushy and bin(rest).count("1") > 1:
                    sub = (sub - 1) & mask
                    continue
                if ctx.connected(sub, rest):
                    cost = (
                        best[sub][0]
                        + best[rest][0]
                        + ctx.join_cost(sub, rest)
                    )
                    if cost < best_cost:
                        best_cost = cost
                        best_tree = JoinTree.join(best[sub][1], best[rest][1])
            sub = (sub - 1) & mask
        if best_tree is not None:
            best[mask] = (best_cost, best_tree)
    return best[comp_mask][1]


def _connected_subsets(ctx: _SearchContext, comp_mask: int) -> List[int]:
    """All connected subsets of the component (grown breadth-first)."""
    found = set()
    members = [i for i in range(len(ctx.aliases)) if comp_mask & (1 << i)]
    frontier = [1 << i for i in members]
    found.update(frontier)
    while frontier:
        next_frontier = []
        for mask in frontier:
            neighbors = 0
            m = mask
            while m:
                low = m & -m
                neighbors |= ctx.adjacency[low.bit_length() - 1]
                m ^= low
            neighbors &= comp_mask & ~mask
            while neighbors:
                low = neighbors & -neighbors
                grown = mask | low
                if grown not in found:
                    found.add(grown)
                    next_frontier.append(grown)
                neighbors ^= low
        frontier = next_frontier
    return list(found)


def _combine_components(ctx: _SearchContext, trees: List[JoinTree]) -> JoinTree:
    """Cross-join component plans, smallest estimated rows first."""
    if not trees:
        raise ValueError("no relations to join")
    ordered = sorted(trees, key=lambda t: ctx.rows(ctx.mask_of(t)))
    result = ordered[0]
    for tree in ordered[1:]:
        result = JoinTree.join(result, tree)
    return result


def greedy_bottom_up(
    query: Query,
    cards: QueryCardinalities,
    params: CostParams | None = None,
) -> JoinTree:
    """Greedy O(n²)-style bottom-up join ordering.

    Repeatedly merges the pair of components with the cheapest estimated
    join (connected pairs strictly preferred over cross products) — the
    algorithm the paper attributes to PostgreSQL's bottom-up enumerator
    when contrasting its complexity with ReJOIN's O(n).

    Runs on the bitset fast lane: the join graph comes from the query's
    cached :meth:`~repro.db.query.Query.join_graph_index`, component
    masks and neighbor unions are maintained incrementally across merge
    rounds, and subset row estimates are memoized by mask — same merge
    decisions, no per-pair re-derivation.
    """
    from repro.optimizer.bitset_dp import fast_greedy_bottom_up

    return fast_greedy_bottom_up(query, cards, params)


def geqo_join_search(
    query: Query,
    cards: QueryCardinalities,
    params: CostParams | None = None,
    rng: np.random.Generator | None = None,
    pool_size: int | None = None,
    generations: int | None = None,
) -> JoinTree:
    """Genetic join-order search, modeled on PostgreSQL's GEQO.

    Individuals are relation permutations decoded into left-deep trees;
    fitness is the same operator-aware cost the DP uses. A steady-state
    loop breeds one child per generation via order crossover (OX) with
    rank-biased parent selection, replacing the worst individual.

    Like the real GEQO this is randomized and *suboptimal* — it trades
    plan quality for tractable planning time on large queries. Both
    properties matter to the paper: the optimality gap is the headroom
    a learned optimizer exploits on big queries (Figure 3b), and the
    pool×generations work is why expert planning time keeps growing
    with the relation count (Figure 3c).
    """
    from repro.optimizer.bitset_dp import FastJoinContext

    # The fast lane memoizes subset rows by mask, so the pool x
    # generations fitness evaluations stop re-deriving cardinalities for
    # prefixes every permutation shares.
    ctx = FastJoinContext(query, cards, params)
    rng = rng or np.random.default_rng(0)
    n = len(ctx.aliases)
    if n == 1:
        return JoinTree.leaf(ctx.aliases[0])
    pool_size = pool_size or max(16, 4 * n)
    generations = generations or max(40, 8 * n)
    adjacency = ctx.adjacency

    def fitness(perm: np.ndarray) -> float:
        first = int(perm[0])
        total = ctx.scan_cost(first)
        mask = 1 << first
        for raw in perm[1:]:
            idx = int(raw)
            bit = 1 << idx
            total += ctx.scan_cost(idx)
            total += ctx.join_cost(mask, bit, bool(adjacency[idx] & mask))
            mask |= bit
        return total

    pool = [rng.permutation(n) for _ in range(pool_size)]
    scores = np.array([fitness(p) for p in pool])

    def ox_crossover(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        lo, hi = sorted(rng.choice(n, size=2, replace=False))
        child = np.full(n, -1)
        child[lo : hi + 1] = a[lo : hi + 1]
        fill = [g for g in b if g not in set(child[lo : hi + 1].tolist())]
        pos = 0
        for i in range(n):
            if child[i] == -1:
                child[i] = fill[pos]
                pos += 1
        return child

    ranks = np.arange(pool_size, dtype=np.float64)
    for _ in range(generations):
        order = np.argsort(scores)
        # rank-biased parent choice (fitter ranks more likely)
        weights = (pool_size - ranks) ** 2
        weights /= weights.sum()
        pa = pool[order[rng.choice(pool_size, p=weights)]]
        pb = pool[order[rng.choice(pool_size, p=weights)]]
        child = ox_crossover(pa, pb)
        if rng.uniform() < 0.1:  # swap mutation
            i, j = rng.choice(n, size=2, replace=False)
            child[i], child[j] = child[j], child[i]
        child_score = fitness(child)
        worst = int(np.argmax(scores))
        if child_score < scores[worst]:
            pool[worst] = child
            scores[worst] = child_score

    best = pool[int(np.argmin(scores))]
    return JoinTree.left_deep([ctx.aliases[i] for i in best])


def random_join_tree(
    query: Query,
    rng: np.random.Generator,
    avoid_cross_products: bool = True,
) -> JoinTree:
    """A random valid join tree (the §4 random-choice baseline).

    With ``avoid_cross_products`` (default), only pairs linked by a join
    predicate are merged when any such pair exists, matching how the
    random baseline in the paper still produces *executable* plans.
    """
    components: List[JoinTree] = [JoinTree.leaf(a) for a in sorted(query.relations)]
    while len(components) > 1:
        pairs = [
            (i, j)
            for i in range(len(components))
            for j in range(len(components))
            if i != j
        ]
        if avoid_cross_products:
            connected = [
                (i, j)
                for i, j in pairs
                if query.joins_between(
                    tuple(components[i].aliases), tuple(components[j].aliases)
                )
            ]
            if connected:
                pairs = connected
        i, j = pairs[rng.integers(len(pairs))]
        merged = JoinTree.join(components[i], components[j])
        components = [c for k, c in enumerate(components) if k not in (i, j)] + [merged]
    return components[0]
