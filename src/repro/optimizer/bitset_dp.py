"""Bitset-native expert join search: fast Selinger DP with pruning.

The seed :func:`~repro.optimizer.join_search.selinger_dp` already keys
its DP table by bitmask, but everything around the table pays a Python
object tax: every cardinality lookup round-trips through a ``frozenset``
of alias strings, every candidate split re-derives join-graph reach from
the adjacency table, and every DP entry materializes a
:class:`~repro.db.plans.JoinTree` (allocating alias frozensets) even for
subsets the final plan never uses.

This module is the integer fast lane:

- the join graph is derived once per query and cached on the query
  object (:meth:`repro.db.query.Query.join_graph_index`);
- per-subset cardinalities are memoized in flat dicts keyed by mask,
  with the scan-row product built incrementally from sub-masks and the
  selectivity product applied from a precomputed ``(bit, bit, sel)``
  edge list — float-for-float the same arithmetic as
  :meth:`~repro.db.cardinality.QueryCardinalities.rows_for_aliases`, so
  the fast lane's costs are bitwise-identical to the seed's;
- connected-subgraph enumeration grows neighborhoods level by level,
  carrying each subset's neighbor union instead of re-deriving it;
- DP entries store ``(cost, split)`` pairs; join trees are materialized
  only for the winning root, bridging back to the structural
  sub-plan-memo fingerprints (the materialized tree is a plain
  :class:`JoinTree`, so ``tree_keys`` / :class:`SubPlanCostMemo` hits
  survive unchanged).

On top of the mechanical speedup sits **branch-and-bound pruning**: a
greedy bottom-up plan seeds an upper bound, and any DP entry whose
admissible lower bound (entry cost + scan cost of the relations it
still has to pick up + the final join's output tax) exceeds the bound
is dropped. In ``exact`` mode (the default) the bound carries a ulp
cushion and only provably dominated entries are removed, so the DP
remains plan-identical to the seed enumeration; with ``exact=False``
the bound is tightened by ``prune_margin`` and the search may return
the greedy bound plan itself when everything better was pruned — never
worse than greedy, no optimality guarantee.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.db.cardinality import QueryCardinalities
from repro.db.costmodel import CostParams
from repro.db.plans import JoinTree
from repro.db.query import Query
from repro.optimizer.join_search import estimate_join_cost

__all__ = [
    "DPStats",
    "FastJoinContext",
    "PlanningTimeout",
    "selinger_dp_bitset",
    "fast_greedy_bottom_up",
]


class PlanningTimeout(RuntimeError):
    """The DP's ``check_deadline`` hook signalled that the caller's time
    budget ran out mid-search. The search aborts immediately; callers on
    the degradation ladder catch this and fall to the next rung. Raised
    by the *hook*, re-raised unchanged by the DP — no partial plan is
    returned, because an interrupted wave's table entries are not a
    valid plan space."""


@dataclass
class DPStats:
    """Cumulative expert-lane counters (one instance per planner)."""

    #: Connected subsets enumerated across all DP runs (singletons included).
    subsets_enumerated: int = 0
    #: DP entries discarded by branch-and-bound pruning.
    entries_pruned: int = 0
    #: Components answered by the greedy bound plan because aggressive
    #: (non-exact) pruning removed every complete DP entry.
    bound_fallbacks: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "dp_subsets_enumerated": float(self.subsets_enumerated),
            "dp_pruned": float(self.entries_pruned),
            "dp_bound_fallbacks": float(self.bound_fallbacks),
        }


class FastJoinContext:
    """Mask-keyed costing scaffolding shared by the fast search lanes.

    Wraps one query's cached :class:`~repro.db.query.QueryJoinGraph`
    plus its :class:`~repro.db.cardinality.QueryCardinalities`, resolving
    scan rows, scan costs, and per-edge selectivities into flat arrays
    once so the search loops touch only ints and floats.
    """

    __slots__ = (
        "query",
        "cards",
        "params",
        "jg",
        "n",
        "aliases",
        "adjacency",
        "scan_rows",
        "edge_sels",
        "_scan_costs",
        "_scan_prod",
        "_rows",
        "_nbr",
        "_product_form",
    )

    def __init__(
        self,
        query: Query,
        cards: QueryCardinalities,
        params: CostParams | None = None,
    ) -> None:
        jg = query.join_graph_index()
        self.query = query
        self.cards = cards
        self.params = params or CostParams()
        self.jg = jg
        self.n = jg.n
        self.aliases = jg.aliases
        self.adjacency = jg.adjacency
        self.scan_rows: List[float] = [cards.scan_rows(a) for a in jg.aliases]
        cpu_tuple = self.params.cpu_tuple_cost
        self._scan_costs: List[float] = [
            cards.base_rows(a) * cpu_tuple for a in jg.aliases
        ]
        self.edge_sels: List[Tuple[int, int, float]] = [
            (abit, bbit, cards.join_selectivity(pred))
            for abit, bbit, pred in jg.edges
        ]
        self._scan_prod: Dict[int, float] = {0: 1.0}
        self._rows: Dict[int, float] = {0: 1.0}
        self._nbr: Dict[int, int] = {}
        #: Product-form lanes (histogram, pessimistic) license the
        #: incremental mask products below; non-product lanes (learned)
        #: route every subset estimate through the interface's
        #: ``rows_for_aliases`` so the DP searches under the lane's own
        #: numbers.
        self._product_form: bool = getattr(cards, "product_form", True)

    # ------------------------------------------------------------------
    def scan_cost(self, i: int) -> float:
        """Scan cost of relation ``i`` (same formula as the legacy lane)."""
        return self._scan_costs[i]

    def mask_of(self, aliases) -> int:
        return self.jg.mask_of(aliases)

    def neighbors(self, mask: int) -> int:
        """Memoized adjacency union over the members of ``mask``."""
        reach = self._nbr.get(mask)
        if reach is None:
            reach = self.jg.neighbors(mask)
            self._nbr[mask] = reach
        return reach

    def connected(self, mask_a: int, mask_b: int) -> bool:
        return bool(self.neighbors(mask_a) & mask_b)

    # ------------------------------------------------------------------
    def _scan_product(self, mask: int) -> float:
        """Product of scan rows over ``mask``, in ascending alias order.

        Built incrementally: each mask's product extends the product of
        the mask without its highest bit, which reproduces the sorted
        left-fold of ``rows_for_aliases`` bit for bit.
        """
        cache = self._scan_prod
        prod = cache.get(mask)
        if prod is not None:
            return prod
        pending: List[int] = []
        m = mask
        while (prod := cache.get(m)) is None:
            pending.append(m)
            m &= ~(1 << (m.bit_length() - 1))
        scan = self.scan_rows
        while pending:
            m = pending.pop()
            prod = prod * scan[m.bit_length() - 1]
            cache[m] = prod
        return prod

    def rows(self, mask: int) -> float:
        """Estimated rows of any join over exactly the aliases in ``mask``.

        Bitwise-identical to
        ``cards.rows_for_aliases(frozenset(aliases_of(mask)))``: scan
        rows multiplied in sorted alias order, then join selectivities
        in predicate declaration order, clamped to one row at the end —
        but memoized flat by mask, with no set or string objects.
        """
        cached = self._rows.get(mask)
        if cached is not None:
            return cached
        if self._product_form:
            rows = self._scan_product(mask)
            for abit, bbit, sel in self.edge_sels:
                if abit & mask and bbit & mask:
                    rows *= sel
            if rows < 1.0:
                rows = 1.0
        else:
            # Non-product lane: ask the interface, memoize by mask.
            aliases = self.aliases
            members = []
            m = mask
            while m:
                bit = m & -m
                members.append(aliases[bit.bit_length() - 1])
                m ^= bit
            rows = self.cards.rows_for_aliases(frozenset(members))
        self._rows[mask] = rows
        return rows

    # ------------------------------------------------------------------
    def join_cost(
        self, mask_a: int, mask_b: int, connected: bool | None = None
    ) -> float:
        """Cheapest-operator join cost estimate for one candidate join:
        :func:`~repro.optimizer.join_search.estimate_join_cost` over the
        mask-memoized row estimates."""
        if connected is None:
            connected = bool(self.neighbors(mask_a) & mask_b)
        return estimate_join_cost(
            self.rows(mask_a),
            self.rows(mask_b),
            self.rows(mask_a | mask_b),
            connected,
            self.params,
        )

    def tree_cost(self, tree: JoinTree) -> float:
        """DP-measure cost of an arbitrary join tree (bound seeding,
        parity checks): scan costs of every leaf plus the join-cost
        estimate of every internal node."""

        def walk(node: JoinTree) -> Tuple[int, float]:
            if node.is_leaf:
                i = self.jg.index[node.alias]
                return 1 << i, self.scan_cost(i)
            left_mask, left_cost = walk(node.left)
            right_mask, right_cost = walk(node.right)
            cost = left_cost + right_cost + self.join_cost(left_mask, right_mask)
            return left_mask | right_mask, cost

        return walk(tree)[1]


# ----------------------------------------------------------------------
# The DP
# ----------------------------------------------------------------------


def selinger_dp_bitset(
    query: Query,
    cards: QueryCardinalities,
    params: CostParams | None = None,
    bushy: bool = True,
    prune: bool = True,
    exact: bool = True,
    prune_margin: float = 0.98,
    stats: DPStats | None = None,
    check_deadline=None,
) -> JoinTree:
    """Exhaustive DP join search over integer bitsets, with optional
    branch-and-bound pruning.

    Drop-in equivalent of :func:`~repro.optimizer.join_search.selinger_dp`:
    identical cost arithmetic, identical split enumeration order, so in
    ``exact`` mode (default) the returned plan is identical to the seed
    DP's. ``prune`` seeds an upper bound from a greedy bottom-up plan
    and discards DP entries whose admissible lower bound exceeds it —
    in exact mode only provably dominated entries go; with
    ``exact=False`` the bound is scaled by ``prune_margin`` (< 1 prunes
    harder) and the search falls back to the greedy bound plan if it
    pruned away every complete plan.

    ``stats`` (a :class:`DPStats`) accumulates enumeration and pruning
    counters across calls — the planner threads one through so
    ``repro info --probe`` / ``serve-bench`` can report the expert lane.

    ``check_deadline``, when given, is a zero-argument callable invoked
    at the top of every frontier wave and every 64 masks inside the
    split loop; it raises :class:`PlanningTimeout` to abort the search
    (the degradation ladder's interruptible-DP rung). The hook costs
    nothing when ``None`` — the deadline branch is taken only when a
    budget is actually in force.
    """
    ctx = FastJoinContext(query, cards, params)
    if stats is None:
        stats = DPStats()
    components = _graph_components(ctx)
    trees = [
        _dp_component(
            ctx, comp, bushy, prune, exact, prune_margin, stats, check_deadline
        )
        for comp in components
    ]
    if len(trees) == 1:
        return trees[0]
    # Cross-join disconnected components smallest-estimated-rows first,
    # exactly like the legacy lane (sorted is stable, components are
    # discovered in ascending lowest-member order both ways).
    ordered = sorted(trees, key=lambda t: ctx.rows(ctx.mask_of(t.aliases)))
    result = ordered[0]
    for tree in ordered[1:]:
        result = JoinTree.join(result, tree)
    return result


def _graph_components(ctx: FastJoinContext) -> List[int]:
    """Connected components of the join graph, as bitmasks."""
    adjacency = ctx.adjacency
    seen = 0
    components = []
    for start in range(ctx.n):
        bit = 1 << start
        if seen & bit:
            continue
        frontier = bit
        comp = 0
        while frontier:
            comp |= frontier
            new = 0
            m = frontier
            while m:
                low = m & -m
                new |= adjacency[low.bit_length() - 1]
                m ^= low
            frontier = new & ~comp
        components.append(comp)
        seen |= comp
    return components


def _dp_component(
    ctx: FastJoinContext,
    comp: int,
    bushy: bool,
    prune: bool,
    exact: bool,
    prune_margin: float,
    stats: DPStats,
    check_deadline=None,
) -> JoinTree:
    """DP over the connected subsets of one component.

    The tables are flat lists indexed by mask (the DP only ever runs
    below the GEQO threshold, so ``2**bits`` stays small). ``INF`` in
    ``best_cost`` doubles as the "no entry" sentinel and ``0`` in
    ``nbr`` as "not yet enumerated" — every member of a multi-relation
    connected component has at least one incident edge, so a genuine
    neighbor union is never zero.

    In left-deep mode the split loop visits only the ``popcount(mask)``
    singleton rests instead of scanning all ``2**popcount`` submasks —
    the seed enumerator's scan discards every non-singleton rest anyway,
    and the visit order (rest bit ascending) matches the seed's
    descending-submask order restricted to singleton rests, so
    tie-breaking is unchanged.
    """
    if comp & (comp - 1) == 0:
        return JoinTree.leaf(ctx.aliases[comp.bit_length() - 1])

    adjacency = ctx.adjacency
    rows = ctx.rows
    params = ctx.params
    cpu_op = params.cpu_operator_cost
    cpu_tuple = params.cpu_tuple_cost
    hash_build = params.hash_build_cost
    hash_probe = params.hash_probe_cost
    log2 = math.log2
    INF = math.inf

    size = 1 << comp.bit_length()
    best_cost: List[float] = [INF] * size
    best_split: List[Tuple[int, int] | None] = [None] * size
    nbr: List[int] = [0] * size
    scan_sum: List[float] = [0.0] * size

    frontier: List[int] = []
    scan_total = 0.0
    m = comp
    while m:
        low = m & -m
        i = low.bit_length() - 1
        cost = ctx.scan_cost(i)
        best_cost[low] = cost
        nbr[low] = adjacency[i]
        scan_sum[low] = cost
        scan_total += cost
        frontier.append(low)
        m ^= low
    stats.subsets_enumerated += len(frontier)

    bound_tree: JoinTree | None = None
    bound_cost = INF
    limit = INF
    out_floor = 0.0
    if prune:
        bound_tree = _bound_plan(ctx, comp, bushy)
        bound_cost = ctx.tree_cost(bound_tree)
        # Exact mode discards only provably dominated entries: the
        # admissible lower bound must clear the incumbent with a ulp
        # cushion so float noise in the bound sums can never prune the
        # true optimum.
        limit = bound_cost * (1.0 + 1e-9) if exact else bound_cost * prune_margin
        # Every complete plan still owes the final join's output tax.
        out_floor = rows(comp) * cpu_tuple

    while frontier:
        if check_deadline is not None:
            check_deadline()
        next_frontier: List[int] = []
        for mask in frontier:
            neighbors = nbr[mask] & comp & ~mask
            mask_nbr = nbr[mask]
            mask_scan = scan_sum[mask]
            while neighbors:
                nlow = neighbors & -neighbors
                grown = mask | nlow
                if not nbr[grown]:
                    i = nlow.bit_length() - 1
                    nbr[grown] = mask_nbr | adjacency[i]
                    scan_sum[grown] = mask_scan + ctx.scan_cost(i)
                    next_frontier.append(grown)
                neighbors ^= nlow
        stats.subsets_enumerated += len(next_frontier)

        for visited, mask in enumerate(next_frontier):
            if check_deadline is not None and visited & 63 == 63:
                check_deadline()
            bc = INF
            bs: Tuple[int, int] | None = None
            if bushy:
                sub = (mask - 1) & mask
            else:
                remaining = mask
            while True:
                if bushy:
                    if not sub:
                        break
                    rest = mask ^ sub
                else:
                    if not remaining:
                        break
                    rest = remaining & -remaining
                    remaining ^= rest
                    sub = mask ^ rest
                c_sub = best_cost[sub]
                if c_sub is not INF:
                    c_rest = best_cost[rest]
                    if c_rest is not INF:
                        base = c_sub + c_rest
                        # base is a lower bound on the split's cost;
                        # skipping non-improving splits early cannot
                        # change the argmin.
                        if base < bc and nbr[sub] & rest:
                            left = rows(sub)
                            right = rows(rest)
                            out = rows(mask)
                            nl = left * right * cpu_op
                            if left < right:
                                lo, hi = left, right
                            else:
                                lo, hi = right, left
                            hash_cost = lo * hash_build + hi * hash_probe
                            n1 = left if left > 2.0 else 2.0
                            n2 = right if right > 2.0 else 2.0
                            sort = (
                                2.0 * n1 * log2(n1) * cpu_op
                                + 2.0 * n2 * log2(n2) * cpu_op
                            )
                            merge = sort + (left + right) * cpu_op
                            jc = nl if nl < hash_cost else hash_cost
                            if merge < jc:
                                jc = merge
                            cost = base + (jc + out * cpu_tuple)
                            if cost < bc:
                                bc = cost
                                bs = (sub, rest)
                if bushy:
                    sub = (sub - 1) & mask
            if bs is None:
                continue
            if prune and mask != comp:
                lower = bc + (scan_total - scan_sum[mask]) + out_floor
                if lower > limit:
                    stats.entries_pruned += 1
                    continue
            best_cost[mask] = bc
            best_split[mask] = bs
        frontier = next_frontier

    if best_split[comp] is not None:
        if not exact and bound_tree is not None and best_cost[comp] > bound_cost:
            # Aggressive pruning may have removed the pieces of every
            # plan cheaper than the greedy bound; honor the "never worse
            # than greedy" guarantee by serving the bound plan instead.
            stats.bound_fallbacks += 1
            return bound_tree
        return _materialize(ctx, best_split, comp)
    if bound_tree is not None:
        # Aggressive (non-exact) pruning removed every complete entry;
        # the greedy bound plan is still a valid answer.
        stats.bound_fallbacks += 1
        return bound_tree
    raise RuntimeError("bitset DP failed to cover a connected component")


def _materialize(
    ctx: FastJoinContext,
    best_split: List[Tuple[int, int] | None],
    mask: int,
) -> JoinTree:
    """Bitmask -> JoinTree bridge: rebuild only the winning plan's nodes."""
    split = best_split[mask]
    if split is None:
        return JoinTree.leaf(ctx.aliases[mask.bit_length() - 1])
    sub, rest = split
    return JoinTree.join(
        _materialize(ctx, best_split, sub), _materialize(ctx, best_split, rest)
    )


# ----------------------------------------------------------------------
# Greedy (shared by the public API and the DP's bound seeding)
# ----------------------------------------------------------------------


def _greedy_merge(
    ctx: FastJoinContext, trees: List[JoinTree], masks: List[int]
) -> JoinTree:
    """Greedy cheapest-pair merging over pre-seeded components.

    Connected pairs are strictly preferred over cross products; ties and
    orderings match the legacy ``greedy_bottom_up`` exactly (same
    iteration order, same strict-improvement rule, merged component
    appended at the end), so given bitwise-equal row estimates the
    result tree is identical.
    """
    trees = list(trees)
    masks = list(masks)
    nbrs = [ctx.neighbors(mask) for mask in masks]
    while len(trees) > 1:
        best_pair: Tuple[int, int] | None = None
        best_cost = math.inf
        best_connected = False
        for i in range(len(trees)):
            for j in range(i + 1, len(trees)):
                connected = bool(nbrs[i] & masks[j])
                if best_connected and not connected:
                    continue
                cost = ctx.join_cost(masks[i], masks[j], connected)
                better = (connected and not best_connected) or (
                    connected == best_connected and cost < best_cost
                )
                if better:
                    best_pair = (i, j)
                    best_cost = cost
                    best_connected = connected
        i, j = best_pair  # type: ignore[misc] - len>=2 guarantees a pair
        merged = JoinTree.join(trees[i], trees[j])
        merged_mask = masks[i] | masks[j]
        merged_nbr = nbrs[i] | nbrs[j]
        for seq in (trees, masks, nbrs):
            del seq[j], seq[i]
        trees.append(merged)
        masks.append(merged_mask)
        nbrs.append(merged_nbr)
    return trees[0]


def fast_greedy_bottom_up(
    query: Query,
    cards: QueryCardinalities,
    params: CostParams | None = None,
) -> JoinTree:
    """Greedy O(n²)-style bottom-up ordering on the bitset fast lane."""
    ctx = FastJoinContext(query, cards, params)
    trees = [JoinTree.leaf(a) for a in ctx.aliases]
    masks = [1 << i for i in range(ctx.n)]
    return _greedy_merge(ctx, trees, masks)


def _bound_plan(ctx: FastJoinContext, comp: int, bushy: bool) -> JoinTree:
    """A valid plan for one component, to seed the DP's upper bound.

    Bushy mode: greedy cheapest-pair merging restricted to the
    component's members. Left-deep mode: a greedy chain — start from
    the cheapest scan and repeatedly append the relation with the
    cheapest join against the accumulated prefix (connected strictly
    preferred) — which is O(n²), lives in exactly the plan space the
    left-deep DP searches, and therefore bounds it tightly.
    """
    if bushy:
        trees: List[JoinTree] = []
        masks: List[int] = []
        m = comp
        while m:
            low = m & -m
            masks.append(low)
            trees.append(JoinTree.leaf(ctx.aliases[low.bit_length() - 1]))
            m ^= low
        return _greedy_merge(ctx, trees, masks)

    members: List[int] = []
    m = comp
    while m:
        low = m & -m
        members.append(low.bit_length() - 1)
        m ^= low
    start = min(members, key=ctx.scan_cost)
    order = [start]
    mask = 1 << start
    remaining = set(members)
    remaining.discard(start)
    adjacency = ctx.adjacency
    while remaining:
        best_i = None
        best_cost = math.inf
        best_connected = False
        for i in remaining:
            bit = 1 << i
            connected = bool(adjacency[i] & mask)
            if best_connected and not connected:
                continue
            cost = ctx.join_cost(mask, bit, connected)
            if (connected and not best_connected) or (
                connected == best_connected and cost < best_cost
            ):
                best_i = i
                best_cost = cost
                best_connected = connected
        order.append(best_i)
        mask |= 1 << best_i
        remaining.discard(best_i)
    return JoinTree.left_deep([ctx.aliases[i] for i in order])
