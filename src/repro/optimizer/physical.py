"""Physical plan construction: access paths, join operators, aggregates.

These are the later stages of the simplified optimization pipeline in
the paper's Figure 8 (join ordering -> index selection -> join operator
selection -> aggregate operator selection). Each chooser is cost-based:
it builds the candidate operators and keeps the one the cost model
prefers. ``build_physical_plan`` runs all stages below join ordering,
which is exactly the "send the join ordering to the optimizer for
operator selection, index selection, etc." step ReJOIN relies on.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.db.cardinality import QueryCardinalities
from repro.db.costmodel import CostModel
from repro.db.engine import Database
from repro.db.plans import (
    AGGREGATE_OPERATORS,
    HashAggregate,
    HashJoin,
    IndexScan,
    JoinTree,
    MergeJoin,
    NestedLoopJoin,
    PhysicalPlan,
    SeqScan,
    SortAggregate,
)
from repro.db.predicates import (
    BetweenPredicate,
    Comparison,
    CompareOp,
    InPredicate,
    JoinPredicate,
    Predicate,
)
from repro.db.query import Query

__all__ = [
    "choose_access_path",
    "choose_join_operator",
    "choose_aggregate_operator",
    "build_physical_plan",
    "access_path_candidates",
    "join_operator_candidates",
]

_RANGE_OPS = (CompareOp.LT, CompareOp.LE, CompareOp.GT, CompareOp.GE)


def _btree_compatible(pred: Predicate) -> bool:
    if isinstance(pred, Comparison):
        return pred.op is CompareOp.EQ or pred.op in _RANGE_OPS
    return isinstance(pred, (BetweenPredicate, InPredicate))


def _hash_compatible(pred: Predicate) -> bool:
    if isinstance(pred, Comparison):
        return pred.op is CompareOp.EQ
    return isinstance(pred, InPredicate)


def access_path_candidates(
    alias: str, query: Query, db: Database
) -> Tuple[PhysicalPlan, ...]:
    """All executable access paths for one relation of the query.

    Always includes the sequential scan; adds one IndexScan per
    (indexed column, compatible predicate, index kind) combination.
    """
    table = query.table_of(alias)
    preds = tuple(query.selections_for(alias))
    candidates: list[PhysicalPlan] = [SeqScan(alias, table, preds)]
    for column in db.indexed_columns(table):
        for pred in preds:
            if pred.column.column != column:
                continue
            residual = tuple(p for p in preds if p is not pred)
            if db.index_on(table, column, "btree") and _btree_compatible(pred):
                candidates.append(
                    IndexScan(alias, table, column, pred, residual, kind="btree")
                )
            if db.index_on(table, column, "hash") and _hash_compatible(pred):
                candidates.append(
                    IndexScan(alias, table, column, pred, residual, kind="hash")
                )
    return tuple(candidates)


def choose_access_path(
    alias: str,
    query: Query,
    db: Database,
    cost_model: CostModel,
    cards: QueryCardinalities,
    cost_cache: dict | None = None,
) -> PhysicalPlan:
    """The cheapest access path for one relation."""
    candidates = access_path_candidates(alias, query, db)
    return min(candidates, key=lambda p: cost_model.cost(p, cards, cost_cache).total)


def join_operator_candidates(
    left: PhysicalPlan,
    right: PhysicalPlan,
    predicates: Tuple[JoinPredicate, ...],
) -> Tuple[PhysicalPlan, ...]:
    """All executable join operators for a (left, right, preds) triple.

    Cross products admit only nested loops. Hash joins are considered in
    both build orders.
    """
    if not predicates:
        return (NestedLoopJoin(left, right, ()),)
    return (
        HashJoin(left, right, predicates),
        HashJoin(right, left, predicates),
        MergeJoin(left, right, predicates),
        NestedLoopJoin(left, right, predicates),
    )


def choose_join_operator(
    left: PhysicalPlan,
    right: PhysicalPlan,
    predicates: Tuple[JoinPredicate, ...],
    cost_model: CostModel,
    cards: QueryCardinalities,
    cost_cache: dict | None = None,
) -> PhysicalPlan:
    """The cheapest join operator (including hash-join build order).

    Candidates are scored from the children's costs alone
    (:meth:`CostModel.join_candidate_costs`) and only the winner is
    constructed — same costs, same tie-breaking as costing every
    candidate node, minus three node allocations per join.
    """
    left_cost = cost_model.cost(left, cards, cost_cache)
    right_cost = cost_model.cost(right, cards, cost_cache)
    scored = cost_model.join_candidate_costs(predicates, left_cost, right_cost, cards)
    cost, operator_cls, left_first = min(scored, key=lambda entry: entry[0].total)
    node = (
        operator_cls(left, right, predicates)
        if left_first
        else operator_cls(right, left, predicates)
    )
    if cost_cache is not None:
        cost_cache[id(node)] = (node, cost)
    return node


def choose_aggregate_operator(
    child: PhysicalPlan,
    query: Query,
    cost_model: CostModel,
    cards: QueryCardinalities,
    cost_cache: dict | None = None,
) -> PhysicalPlan:
    """Wrap ``child`` in the cheaper aggregate operator, if the query
    aggregates; otherwise return ``child`` unchanged."""
    if not query.aggregates and not query.group_by:
        return child
    group = tuple(query.group_by)
    aggs = tuple(query.aggregates)
    candidates = [cls(child, group, aggs) for cls in AGGREGATE_OPERATORS]
    return min(candidates, key=lambda p: cost_model.cost(p, cards, cost_cache).total)


def build_physical_plan(
    tree: JoinTree,
    query: Query,
    db: Database,
    cost_model: CostModel | None = None,
    cards: QueryCardinalities | None = None,
    access_paths: Dict[str, PhysicalPlan] | None = None,
    join_operators: Dict[frozenset, type] | None = None,
    aggregate_operator: type | None = None,
    include_aggregate: bool = True,
    memo=None,
    cost_cache: dict | None = None,
    memo_keys: Dict[int, str] | None = None,
    memo_epoch: int | None = None,
) -> PhysicalPlan:
    """Turn a logical join tree into a full physical plan.

    By default every choice is cost-based. Callers may pin decisions —
    ``access_paths`` maps aliases to pre-chosen scans, ``join_operators``
    maps a join node's alias set to an operator class,
    ``aggregate_operator`` pins the aggregate class — which is how the
    staged RL environments inject *learned* choices for some stages
    while the traditional optimizer fills in the rest (paper §5.3.1).

    ``memo`` is an optional :class:`~repro.optimizer.memo.SubPlanCostMemo`
    shared across calls: sub-trees already completed and costed for an
    earlier tree (or an earlier episode) are reused instead of rebuilt.
    It only applies on the fully cost-based path — pinned choices are
    the environment's to make, not the memo's. ``cost_cache`` is the
    per-call :meth:`CostModel.cost` cache; pass your own dict to also
    reuse the node costs when costing the finished plan.
    """
    cost_model = cost_model or db.cost_model()
    cards = cards or db.cardinalities(query)
    use_memo = memo is not None and not access_paths and not join_operators
    access_paths = access_paths or {}
    join_operators = join_operators or {}
    if cost_cache is None:
        cost_cache = {}
    node_keys: Dict[int, str] = memo_keys or {}
    if use_memo and not node_keys:
        from repro.optimizer.memo import tree_keys

        node_keys, _root = tree_keys(tree, query, include_aggregate=False)

    def build(node: JoinTree) -> PhysicalPlan:
        if use_memo:
            entry = memo.get(node_keys[id(node)])
            if entry is not None:
                # Seed the cost cache so candidate parents do not
                # re-descend into an already-costed subtree.
                cost_cache[id(entry.plan)] = (entry.plan, entry.cost)
                return entry.plan
        if node.is_leaf:
            pinned = access_paths.get(node.alias)
            if pinned is not None:
                return pinned
            built = choose_access_path(
                node.alias, query, db, cost_model, cards, cost_cache
            )
        else:
            left = build(node.left)
            right = build(node.right)
            preds = tuple(query.joins_between(left.aliases, right.aliases))
            pinned_cls = join_operators.get(node.aliases)
            if pinned_cls is not None:
                if pinned_cls is not NestedLoopJoin and not preds:
                    # A learned choice may be infeasible (hash/merge require
                    # an equi-join predicate); degrade rather than crash.
                    return NestedLoopJoin(left, right, preds)
                return pinned_cls(left, right, preds)
            else:
                built = choose_join_operator(
                    left, right, preds, cost_model, cards, cost_cache
                )
        if use_memo:
            memo.put(
                node_keys[id(node)],
                built,
                cost_model.cost(built, cards, cost_cache),
                tables=frozenset(query.table_of(a) for a in node.aliases),
                epoch=memo_epoch,
            )
        return built

    plan = build(tree)
    if include_aggregate:
        if aggregate_operator is not None and (query.aggregates or query.group_by):
            plan = aggregate_operator(
                plan, tuple(query.group_by), tuple(query.aggregates)
            )
        else:
            plan = choose_aggregate_operator(plan, query, cost_model, cards, cost_cache)
    return plan
