"""Cross-episode sub-plan cost memoization (ROADMAP: "cross-query
sub-plan memoization").

Training converges onto a small set of join trees per query, and the
serving layer replays cached trees for fingerprint-equivalent queries —
in both cases the expensive part of scoring a finished join order
(physical completion plus cost-model evaluation) was recomputed from
scratch every time. This module memoizes those results, keyed by a
*structural* fingerprint of the logical join (sub)tree:

- a **leaf** is labelled by its table plus the name-free signatures of
  its selection predicates (full-precision constants, so predicates
  differing in any digit never collide);
- a **join** is labelled by its children's digests plus the join
  predicates that connect them, with predicate endpoints rendered as
  *leaf positions* inside the subtree (position, not alias, so the
  label is well-defined even for self-joins);
- the **memo key** additionally pins the in-order alias tuple, so a
  cached physical plan — which embeds alias names — is only ever served
  to a requester whose aliases match.

Everything the cost model consumes (table statistics, selections, join
predicates, tree shape, aggregate spec) is part of the key, so a memo
hit returns costs bitwise-equal to uncached evaluation. Keys say
nothing about statistics *freshness*: clear the memo whenever the
database is re-ANALYZEd (the serving layer does this on
``refresh_statistics``).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.db.costmodel import PlanCost
from repro.db.plans import JoinTree, PhysicalPlan
from repro.db.predicates import predicate_signature
from repro.db.query import Query

__all__ = ["MemoEntry", "SubPlanCostMemo", "tree_keys"]


def _digest(text: str) -> str:
    return hashlib.blake2b(text.encode(), digest_size=16).hexdigest()


def tree_keys(
    tree: JoinTree, query: Query, include_aggregate: bool = True
) -> Tuple[Dict[int, str], str]:
    """Memo keys for every node of ``tree`` plus the full-plan root key.

    Returns ``(node_keys, root_key)`` where ``node_keys`` maps
    ``id(node)`` to the node's key (valid while ``tree`` is alive) and
    ``root_key`` extends the root node's key with the query's aggregate
    block, which only the complete plan carries.
    """
    node_keys: Dict[int, str] = {}

    def walk(node: JoinTree) -> Tuple[str, Tuple[str, ...]]:
        if node.is_leaf:
            sels = ";".join(
                sorted(predicate_signature(p) for p in query.selections_for(node.alias))
            )
            digest = _digest(f"L|{query.table_of(node.alias)}|{sels}")
            leaves: Tuple[str, ...] = (node.alias,)
        else:
            left_digest, left_leaves = walk(node.left)
            right_digest, right_leaves = walk(node.right)
            leaves = left_leaves + right_leaves
            position = {alias: k for k, alias in enumerate(leaves)}
            left_aliases, right_aliases = node.left.aliases, node.right.aliases
            edges = []
            for pred in query.joins:
                a, b = pred.left, pred.right
                if a.alias in left_aliases and b.alias in right_aliases:
                    pass
                elif b.alias in left_aliases and a.alias in right_aliases:
                    a, b = b, a
                else:
                    continue
                edges.append(
                    f"{position[a.alias]}.{a.column}~{position[b.alias]}.{b.column}"
                )
            digest = _digest(f"J|{left_digest}|{right_digest}|{','.join(sorted(edges))}")
        node_keys[id(node)] = _digest(digest + "|" + ",".join(leaves))
        return digest, leaves

    root_digest, leaves = walk(tree)
    agg = ""
    if include_aggregate:
        group = ",".join(sorted(f"{r.alias}.{r.column}" for r in query.group_by))
        aggs = ",".join(sorted(a.render() for a in query.aggregates))
        agg = f"|G:{group}|A:{aggs}"
    root_key = _digest(root_digest + "|" + ",".join(leaves) + agg)
    return node_keys, root_key


@dataclass(frozen=True)
class MemoEntry:
    """A completed physical (sub)plan and its cost-model verdict."""

    plan: PhysicalPlan
    cost: PlanCost


class SubPlanCostMemo:
    """LRU memo from sub-tree keys to completed, costed sub-plans.

    Shared across episodes (training) and requests (serving): attach one
    instance to a :class:`~repro.optimizer.planner.Planner` and every
    ``evaluate_tree``/``complete_plan`` call reuses whatever join
    fragments earlier calls already costed. Counters are operator-facing
    (``repro info`` prints them through the service).
    """

    def __init__(self, capacity: int = 8192) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: The ``Database.stats_epoch`` the entries were computed under;
        #: :meth:`sync_epoch` drops them when the statistics move on.
        self.epoch = 0
        self._entries: "OrderedDict[str, MemoEntry]" = OrderedDict()

    def sync_epoch(self, epoch: int) -> None:
        """Drop every entry if the database statistics epoch changed.

        Called by the planner on each use, so a ``Database.analyze()``
        invalidates every attached memo without each holder (envs, CLI,
        benches, the serving layer) having to remember to."""
        if epoch != self.epoch:
            self.clear()
            self.epoch = epoch

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> MemoEntry | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, plan: PhysicalPlan, cost: PlanCost) -> MemoEntry:
        entry = MemoEntry(plan=plan, cost=cost)
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return entry

    def clear(self) -> int:
        """Drop every entry (statistics refresh); returns entries dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        return dropped

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "costmemo_hits": self.hits,
            "costmemo_misses": self.misses,
            "costmemo_evictions": self.evictions,
            "costmemo_size": len(self._entries),
            "costmemo_hit_rate": round(self.hit_rate, 4),
        }
