"""Cross-episode sub-plan cost memoization (ROADMAP: "cross-query
sub-plan memoization").

Training converges onto a small set of join trees per query, and the
serving layer replays cached trees for fingerprint-equivalent queries —
in both cases the expensive part of scoring a finished join order
(physical completion plus cost-model evaluation) was recomputed from
scratch every time. This module memoizes those results, keyed by a
*structural* fingerprint of the logical join (sub)tree:

- a **leaf** is labelled by its table plus the name-free signatures of
  its selection predicates (full-precision constants, so predicates
  differing in any digit never collide);
- a **join** is labelled by its children's digests plus the join
  predicates that connect them, with predicate endpoints rendered as
  *leaf positions* inside the subtree (position, not alias, so the
  label is well-defined even for self-joins);
- the **memo key** additionally pins the in-order alias tuple, so a
  cached physical plan — which embeds alias names — is only ever served
  to a requester whose aliases match.

Everything the cost model consumes (table statistics, selections, join
predicates, tree shape, aggregate spec) is part of the key, so a memo
hit returns costs bitwise-equal to uncached evaluation. Keys say
nothing about statistics *freshness*: clear the memo whenever the
database is re-ANALYZEd (the serving layer does this on
``refresh_statistics``).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

from repro.db.costmodel import PlanCost
from repro.db.plans import JoinTree, PhysicalPlan
from repro.db.predicates import predicate_signature
from repro.db.query import Query

__all__ = ["MemoEntry", "SubPlanCostMemo", "tree_keys"]


def _digest(text: str) -> str:
    return hashlib.blake2b(text.encode(), digest_size=16).hexdigest()


def tree_keys(
    tree: JoinTree, query: Query, include_aggregate: bool = True
) -> Tuple[Dict[int, str], str]:
    """Memo keys for every node of ``tree`` plus the full-plan root key.

    Returns ``(node_keys, root_key)`` where ``node_keys`` maps
    ``id(node)`` to the node's key (valid while ``tree`` is alive) and
    ``root_key`` extends the root node's key with the query's aggregate
    block, which only the complete plan carries.
    """
    node_keys: Dict[int, str] = {}

    def walk(node: JoinTree) -> Tuple[str, Tuple[str, ...]]:
        if node.is_leaf:
            sels = ";".join(
                sorted(predicate_signature(p) for p in query.selections_for(node.alias))
            )
            digest = _digest(f"L|{query.table_of(node.alias)}|{sels}")
            leaves: Tuple[str, ...] = (node.alias,)
        else:
            left_digest, left_leaves = walk(node.left)
            right_digest, right_leaves = walk(node.right)
            leaves = left_leaves + right_leaves
            position = {alias: k for k, alias in enumerate(leaves)}
            left_aliases, right_aliases = node.left.aliases, node.right.aliases
            edges = []
            for pred in query.joins:
                a, b = pred.left, pred.right
                if a.alias in left_aliases and b.alias in right_aliases:
                    pass
                elif b.alias in left_aliases and a.alias in right_aliases:
                    a, b = b, a
                else:
                    continue
                edges.append(
                    f"{position[a.alias]}.{a.column}~{position[b.alias]}.{b.column}"
                )
            digest = _digest(f"J|{left_digest}|{right_digest}|{','.join(sorted(edges))}")
        node_keys[id(node)] = _digest(digest + "|" + ",".join(leaves))
        return digest, leaves

    root_digest, leaves = walk(tree)
    agg = ""
    if include_aggregate:
        group = ",".join(sorted(f"{r.alias}.{r.column}" for r in query.group_by))
        aggs = ",".join(sorted(a.render() for a in query.aggregates))
        agg = f"|G:{group}|A:{aggs}"
    root_key = _digest(root_digest + "|" + ",".join(leaves) + agg)
    return node_keys, root_key


@dataclass(frozen=True)
class MemoEntry:
    """A completed physical (sub)plan and its cost-model verdict.

    ``tables`` records which base tables the fragment reads, so a
    table-scoped statistics refresh can evict exactly the fragments it
    staled (None = unknown, evicted on any partial invalidation).
    """

    plan: PhysicalPlan
    cost: PlanCost
    tables: FrozenSet[str] | None = None


class SubPlanCostMemo:
    """LRU memo from sub-tree keys to completed, costed sub-plans.

    Shared across episodes (training) and requests (serving): attach one
    instance to a :class:`~repro.optimizer.planner.Planner` and every
    ``evaluate_tree``/``complete_plan`` call reuses whatever join
    fragments earlier calls already costed. Counters are operator-facing
    (``repro info`` prints them through the service).

    Every operation takes one re-entrant lock, so a memo may be shared
    by concurrent worker shards (or hammered by tests) and its counters
    stay exact: ``hits + misses`` always equals lookups performed.
    """

    def __init__(self, capacity: int = 8192) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Fragments evicted by table-scoped (partial) invalidation.
        self.invalidations_partial = 0
        #: The ``Database.stats_epoch`` the entries were computed under;
        #: :meth:`sync_epoch` drops stale entries when it moves on.
        self.epoch = 0
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, MemoEntry]" = OrderedDict()
        #: Per-table epochs at the last sync; lets a table-scoped
        #: ``ANALYZE`` evict only the fragments reading those tables.
        self._table_epochs: Dict[str, int] = {}

    def __getstate__(self) -> dict:
        """Ship configuration, not contents: the lock is process-local
        and memo entries are only valid against the statistics object
        they were computed from, so a memo crossing a spawn boundary
        (inside a process-mode ``WorkerSpec``) restarts cold."""
        state = dict(self.__dict__)
        state["_lock"] = None
        state["_entries"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()
        self._entries = OrderedDict()

    def sync_epoch(
        self, epoch: int, table_epochs: Mapping[str, int] | None = None
    ) -> None:
        """Reconcile with the database statistics epoch.

        Called by the planner on each use, so a ``Database.analyze()``
        invalidates every attached memo without each holder (envs, CLI,
        benches, the serving layer) having to remember to. With
        ``table_epochs`` (``Database.table_epochs``) the reconciliation
        is surgical: only fragments touching a table whose epoch moved
        are dropped. Without it, everything goes."""
        with self._lock:
            if epoch == self.epoch:
                return
            if table_epochs is None:
                self._entries.clear()
            else:
                # Snapshot once: the caller may hand us the database's
                # live dict, which a concurrent ANALYZE mutates.
                snapshot = dict(table_epochs)
                changed = frozenset(
                    table
                    for table, table_epoch in snapshot.items()
                    if self._table_epochs.get(table) != table_epoch
                )
                self._drop_tables(changed)
                self._table_epochs = snapshot
            self.epoch = epoch

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> MemoEntry | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(
        self,
        key: str,
        plan: PhysicalPlan,
        cost: PlanCost,
        tables: Iterable[str] | None = None,
        epoch: int | None = None,
    ) -> MemoEntry:
        """Insert a costed fragment.

        ``epoch`` (when given) is the statistics epoch the fragment was
        computed under: if the memo has since synced past it — an
        ANALYZE landed mid-computation — the entry is returned but NOT
        cached, so stale fragments cannot outlive the invalidation that
        just ran.
        """
        entry = MemoEntry(
            plan=plan,
            cost=cost,
            tables=None if tables is None else frozenset(tables),
        )
        with self._lock:
            if epoch is not None and epoch != self.epoch:
                return entry
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            return entry

    def _drop_tables(self, changed: FrozenSet[str]) -> int:
        """Drop fragments reading any changed table (lock held)."""
        if not changed:
            return 0
        doomed = [
            key
            for key, entry in self._entries.items()
            if entry.tables is None or entry.tables & changed
        ]
        for key in doomed:
            del self._entries[key]
        self.invalidations_partial += len(doomed)
        return len(doomed)

    def invalidate_tables(self, tables: Iterable[str]) -> int:
        """Drop only fragments touching ``tables``; returns the count.

        Untagged fragments are dropped too — no provenance means their
        staleness cannot be ruled out.
        """
        with self._lock:
            return self._drop_tables(frozenset(tables))

    def clear(self) -> int:
        """Drop every entry (statistics refresh); returns entries dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped

    @property
    def hit_rate(self) -> float:
        with self._lock:
            lookups = self.hits + self.misses
            return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        with self._lock:
            return {
                "costmemo_hits": self.hits,
                "costmemo_misses": self.misses,
                "costmemo_evictions": self.evictions,
                "costmemo_invalidations_partial": self.invalidations_partial,
                "costmemo_size": len(self._entries),
                "costmemo_hit_rate": round(self.hit_rate, 4),
            }
